//! Offline shim for `criterion`.
//!
//! Implements the benchmark-harness subset this workspace's `harness = false`
//! bench targets use: [`black_box`], [`criterion_group!`]/[`criterion_main!`],
//! [`Criterion::benchmark_group`], `bench_function`/`bench_with_input`,
//! `sample_size`, and [`Bencher::iter`]. Instead of criterion's statistical
//! engine it times a fixed number of samples with `std::time::Instant` and
//! prints median/min/max per-iteration wall time — enough to compare
//! configurations, not to detect small regressions.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the benchmarked parameter value.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new<P: std::fmt::Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One calibration pass to pick an iteration count that makes a
        // sample span at least ~1ms, bounding timer-resolution error.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        self.iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_count,
        };
        body(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{}/{id}: no samples recorded", self.name);
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        println!(
            "{}/{id}: median {median:?}/iter (min {:?}, max {:?}, {} samples x {} iters)",
            self.name,
            samples[0],
            samples[samples.len() - 1],
            samples.len(),
            bencher.iters_per_sample,
        );
    }

    /// Benchmarks `body` under `id`.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        body: F,
    ) -> &mut Self {
        self.run(&id.to_string(), body);
        self
    }

    /// Benchmarks `body` with an explicit input value.
    pub fn bench_with_input<I: std::fmt::Display, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut body: F,
    ) -> &mut Self {
        self.run(&id.to_string(), |b| body(b, input));
        self
    }

    /// Ends the group (printing happens eagerly; this is a no-op kept for
    /// API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_count: 20,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, body: F) -> &mut Self {
        self.benchmark_group(id.to_string())
            .bench_function("-", body);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
