//! Offline shim for `crossbeam`.
//!
//! Provides the `channel` module subset this workspace uses: cloneable MPMC
//! [`channel::Sender`]/[`channel::Receiver`] pairs from
//! [`channel::unbounded`]/[`channel::bounded`], with blocking `recv`,
//! non-blocking `try_recv`, and draining iteration. Built on
//! `Mutex`+`Condvar` rather than crossbeam's lock-free internals — the
//! engine moves batches, not individual ops, so channel overhead is not on
//! the hot path.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        capacity: Option<usize>,
        space: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty but senders remain.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half; cloneable for multi-producer use.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable for multi-consumer use.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a channel with unbounded buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages; `send`
    /// blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            capacity,
            space: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message, blocking while a bounded channel is full.
        /// Fails only when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let inner = &self.inner;
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if inner.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                match inner.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = inner.space.wait(queue).unwrap();
                    }
                    _ => break,
                }
            }
            queue.push_back(msg);
            drop(queue);
            inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake all blocked receivers so they observe
                // the disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, blocking until one arrives. Fails once the
        /// channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let inner = &self.inner;
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    inner.space.notify_one();
                    return Ok(msg);
                }
                if inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = inner.ready.wait(queue).unwrap();
            }
        }

        /// Dequeues a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let inner = &self.inner;
            let mut queue = inner.queue.lock().unwrap();
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                inner.space.notify_one();
                return Ok(msg);
            }
            if inner.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver: wake all blocked senders so they error out.
                self.inner.space.notify_all();
            }
        }
    }

    /// Iterator over received messages; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    /// Owning iterator over received messages.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn fifo_within_single_producer() {
        let (tx, rx) = channel::unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn multi_producer_multi_consumer() {
        let (tx, rx) = channel::unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn send_errors_without_receivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(channel::SendError(9)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a slot frees up
            42
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(t.join().unwrap(), 42);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }
}
