//! Offline shim for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), `prop_assert*`
//! / [`prop_assume!`], [`Strategy`] with `prop_map` and `boxed`,
//! [`prop_oneof!`], [`any`], [`Just`], numeric range strategies, tuple
//! strategies, and `prop::collection::{vec, btree_set, hash_set}`.
//!
//! Differences from real proptest: cases are drawn from an RNG seeded by the
//! test's module path + name (fully deterministic across runs, no persisted
//! regression files) and failures are reported without input shrinking — the
//! failing case's values are printed as-is via the assertion message.

use std::marker::PhantomData;

pub use rand::Rng as _;

/// Deterministic RNG handed to strategies by the [`proptest!`] runner.
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// Seeds from a test identifier (stable across runs and platforms).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: cheap, stable, well-mixed enough to
        // decorrelate per-test streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        use rand::SeedableRng;
        TestRng(rand::rngs::StdRng::seed_from_u64(h))
    }

    /// The underlying PRNG.
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        &mut self.0
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-block runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Executes one property test: draws cases until `config.cases` pass,
/// honoring rejects, panicking on the first failure (no shrinking).
pub fn run_proptest(
    name: &str,
    config: ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= 4 * cases + 256,
                    "{name}: too many rejected cases ({rejected}) — \
                     prop_assume! condition is almost never satisfiable"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {} failed: {msg}", passed + 1)
            }
        }
    }
}

// ---------------------------------------------------------------- strategies

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Type-erases this strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::from_strategy(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> BoxedStrategy<T> {
    fn from_strategy<S: Strategy<Value = T> + 'static>(s: S) -> Self {
        BoxedStrategy(Box::new(move |rng| s.gen_value(rng)))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.gen_value(rng))
    }
}

/// Strategy that always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a whole-domain default strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.gen()
            }
        }
    )*};
}
impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Whole-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl<T: Copy> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(self.clone())
    }
}

impl<T: Copy> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(self.clone())
    }
}

/// String literals act as regex-shaped generators, like real proptest's
/// `s in "[a-z]{1,3}"`. Supported syntax: literal characters, `[a-z0-9_]`
/// character classes with ranges, and the quantifiers `{n}`, `{m,n}`, `?`,
/// `*`, `+` (the open-ended ones capped at 8 repeats).
impl Strategy for str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        enum Elem {
            Lit(char),
            Class(Vec<char>),
        }
        let chars: Vec<char> = self.chars().collect();
        let mut elems: Vec<(Elem, usize, usize)> = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let elem = if chars[i] == '[' {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad range in pattern `{self}`");
                        set.extend(lo..=hi);
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unclosed `[` in pattern `{self}`");
                i += 1;
                assert!(!set.is_empty(), "empty class in pattern `{self}`");
                Elem::Class(set)
            } else {
                let c = if chars[i] == '\\' && i + 1 < chars.len() {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                i += 1;
                Elem::Lit(c)
            };
            let (lo, hi) = match chars.get(i) {
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{self}`"));
                    let body: String = chars[i + 1..i + close].iter().collect();
                    i += close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad quantifier"),
                            n.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            };
            elems.push((elem, lo, hi));
        }
        let mut out = String::new();
        for (elem, lo, hi) in &elems {
            let n = rng.0.gen_range(*lo..=*hi);
            for _ in 0..n {
                match elem {
                    Elem::Lit(c) => out.push(*c),
                    Elem::Class(set) => {
                        let k = rng.0.gen_range(0..set.len());
                        out.push(set[k]);
                    }
                }
            }
        }
        out
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.gen_value(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Equal-weight union of type-erased strategies ([`prop_oneof!`]).
#[doc(hidden)]
pub fn union<T>(options: Vec<BoxedStrategy<T>>) -> Union<T> {
    let options = options.into_iter().map(|s| (1u32, s)).collect();
    Union { options }
}

/// Weighted union of type-erased strategies.
#[doc(hidden)]
pub fn union_weighted<T>(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
    Union { options }
}

/// See [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let total: u32 = self.options.iter().map(|(w, _)| w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted option");
        let mut pick = rng.0.gen_range(0..total);
        for (w, s) in &self.options {
            if pick < *w {
                return s.gen_value(rng);
            }
            pick -= w;
        }
        unreachable!()
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Inclusive element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.lo..=self.hi)
        }
    }

    /// `Vec` of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }

    /// `BTreeSet` of `size` distinct elements drawn from `elem`. Duplicates
    /// are re-drawn a bounded number of times, so a small element domain may
    /// yield fewer than `size` elements.
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < 16 * n + 64 {
                out.insert(self.elem.gen_value(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `HashSet` analogue of [`btree_set`].
    pub fn hash_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            let mut out = std::collections::HashSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < 16 * n + 64 {
                out.insert(self.elem.gen_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

// -------------------------------------------------------------------- macros

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` drawing deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest!(@impl ($config); $(
            $(#[$meta])* fn $name($($pat in $strat),*) $body
        )*);
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $(
            $(#[$meta])* fn $name($($pat in $strat),*) $body
        )*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest(
                concat!(module_path!(), "::", stringify!($name)),
                $config,
                |__proptest_rng: &mut $crate::TestRng| {
                    $(let $pat = $crate::Strategy::gen_value(&($strat), __proptest_rng);)*
                    $body
                    Ok(())
                },
            );
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), l
            )));
        }
    }};
}

/// Rejects (retries) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly (or by `weight => strategy` pairs) among strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::union_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// One-glob import surface matching `proptest::prelude::*`.
pub mod prelude {
    /// Lets `prop::collection::vec(...)` resolve after a prelude glob import.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0u64..100, (a, b) in (0.0f64..1.0, -5i64..=5)) {
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((-5..=5).contains(&b));
        }

        #[test]
        fn collections_obey_size(
            v in prop::collection::vec(any::<u8>(), 3..10),
            s in prop::collection::btree_set(0u64..1_000_000, 5..20),
            h in prop::collection::hash_set(any::<u32>(), 4),
        ) {
            prop_assert!((3..10).contains(&v.len()));
            prop_assert!((5..20).contains(&s.len()));
            prop_assert_eq!(h.len(), 4);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            Just(0u64),
            (1u64..10).prop_map(|x| x * 100),
        ]) {
            prop_assert!(v == 0 || (100..1000).contains(&v));
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = TestRng::from_name("abc");
        let mut r2 = TestRng::from_name("abc");
        let s = 0u64..1_000_000;
        for _ in 0..100 {
            assert_eq!(s.gen_value(&mut r1), s.gen_value(&mut r2));
        }
    }

    use super::TestRng;
}
