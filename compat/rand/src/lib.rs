//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand` it actually uses: a seedable
//! deterministic PRNG ([`rngs::StdRng`], here xoshiro256++ seeded via
//! SplitMix64), the [`Rng`] extension methods `gen`, `gen_range` and
//! `gen_bool`, and [`distributions::Uniform`]. Streams are deterministic
//! per seed (the reproducibility property the benchmark needs) but are
//! *not* bit-compatible with upstream `rand`.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable RNG constructors.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic PRNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

mod sample {
    use super::RngCore;

    /// Types producible uniformly by `Rng::gen`.
    pub trait Standard: Sized {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Standard for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// Ranges samplable by `Rng::gen_range`.
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Unbiased-enough u64 in [0, span) via 128-bit multiply-shift.
    #[inline]
    pub(crate) fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + below(rng, span) as i128) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + below(rng, span as u64) as i128) as $t
                }
            }
        )*};
    }
    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_float {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let u = <f64 as Standard>::sample_standard(rng) as $t;
                    self.start + u * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let u = <f64 as Standard>::sample_standard(rng) as $t;
                    lo + u * (hi - lo)
                }
            }
        )*};
    }
    impl_range_float!(f32, f64);
}

pub use sample::{SampleRange, Standard};

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T` (ints over the full domain, floats in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random distributions (the `Uniform` subset the workspace uses).
pub mod distributions {
    use super::{RngCore, SampleRange};

    /// A distribution of values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<X> {
        lo: X,
        hi: X,
    }

    impl<X: Copy> Uniform<X> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: X, hi: X) -> Self {
            Uniform { lo, hi }
        }
    }

    impl<X> Distribution<X> for Uniform<X>
    where
        X: Copy,
        core::ops::Range<X>: SampleRange<X>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> X {
            (self.lo..self.hi).sample_single(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02, "hits = {hits}");
    }

    #[test]
    fn uniform_distribution_sample() {
        use super::distributions::{Distribution, Uniform};
        let d = Uniform::new(1.0f64, 2.0);
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = d.sample(&mut r);
            assert!((1.0..2.0).contains(&v));
        }
    }
}
