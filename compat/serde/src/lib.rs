//! Offline shim for `serde`.
//!
//! The workspace only ever serializes through `serde_json`, so this shim
//! collapses serde's zero-copy serializer architecture into a simple value
//! tree: [`Serialize`] renders into a [`Value`], [`Deserialize`] reads back
//! out of one. `#[derive(Serialize, Deserialize)]` comes from the sibling
//! `serde_derive` shim and supports braced structs (with `#[serde(skip)]`)
//! and enums with unit, newtype, tuple, and struct variants using serde's
//! externally-tagged JSON encoding.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer (always < 0; non-negatives parse as [`Value::UInt`]).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up a key in an object ([`Value::Null`] when absent, which lets
    /// `Option` fields default to `None`).
    pub fn get<'a>(entries: &'a [(String, Value)], key: &str) -> &'a Value {
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or(&Value::Null)
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-macro helper: deserializes field `key` of an object.
pub fn field<T: Deserialize>(entries: &[(String, Value)], key: &str) -> Result<T, DeError> {
    let v = Value::get(entries, key);
    if matches!(v, Value::Null) && !entries.iter().any(|(k, _)| k == key) {
        // Missing field: only types that accept Null (e.g. Option) succeed.
        return T::from_value(&Value::Null).map_err(|_| DeError(format!("missing field `{key}`")));
    }
    T::from_value(v).map_err(|e| DeError(format!("field `{key}`: {e}")))
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::UInt(u) if u <= <$t>::MAX as u64 => Ok(u as $t),
                    Value::Int(i) if i >= 0 => Ok(i as $t),
                    _ => Err(DeError(format!(
                        "expected {}, got {v:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::UInt(u) if u <= <$t>::MAX as u64 => Ok(u as $t),
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| DeError(format!("{i} out of range"))),
                    _ => Err(DeError(format!(
                        "expected {}, got {v:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(u) => Ok(u as $t),
                    Value::Int(i) => Ok(i as $t),
                    _ => Err(DeError(format!("expected float, got {v:?}"))),
                }
            }
        }
    )*};
}
impl_ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError(format!("expected array, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            _ => Err(DeError(format!("expected object, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$(stringify!($n)),+].len();
                        if items.len() != expected {
                            return Err(DeError(format!(
                                "expected {expected}-tuple, got {} items", items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(DeError(format!("expected array, got {v:?}"))),
                }
            }
        }
    )*};
}
impl_ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn float_accepts_integral_encoding() {
        // "20" parses as UInt; an f64 field must accept it.
        assert_eq!(f64::from_value(&Value::UInt(20)), Ok(20.0));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        assert_eq!(Vec::<(usize, f64)>::from_value(&v.to_value()), Ok(v));
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()), Ok(None));
        assert_eq!(
            Option::<u64>::from_value(&Some(9u64).to_value()),
            Ok(Some(9))
        );
    }

    #[test]
    fn missing_field_is_null() {
        let entries = vec![("a".to_string(), Value::UInt(1))];
        assert_eq!(field::<Option<u64>>(&entries, "b"), Ok(None));
        assert!(field::<u64>(&entries, "b").is_err());
        assert_eq!(field::<u64>(&entries, "a"), Ok(1));
    }
}
