//! Offline shim for `serde_derive`.
//!
//! Derives the value-tree `Serialize`/`Deserialize` traits of the sibling
//! `serde` shim. Instead of `syn`/`quote` (unavailable offline) it walks the
//! raw token stream — enough for the shapes this workspace derives on:
//! non-generic braced/tuple/unit structs and enums with unit, newtype, tuple,
//! and struct variants (externally-tagged encoding, matching real serde's
//! JSON output). The only recognized field attribute is `#[serde(skip)]`,
//! which omits the field on serialize and fills it with `Default::default()`
//! on deserialize.

use proc_macro::{Delimiter, Group, Spacing, TokenStream, TokenTree};

enum Fields {
    Unit,
    /// Tuple struct/variant with this many fields.
    Tuple(usize),
    /// Braced fields as `(name, skip)` pairs.
    Named(Vec<(String, bool)>),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// True for `#[serde(skip)]` (the bracket group's content is `serde(skip)`).
fn attr_is_serde_skip(attr: &Group) -> bool {
    let mut it = attr.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match it.next() {
        Some(TokenTree::Group(args)) => args
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(ref id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Parses `{ a: T, #[serde(skip)] b: U, .. }` into `(name, skip)` pairs.
/// Field types are skipped token-by-token with angle-bracket depth tracking
/// (`<`/`>` are plain puncts, not groups, so `Vec<(A, B)>`-style commas would
/// otherwise split a field).
fn parse_named(g: &Group) -> Vec<(String, bool)> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut skip = false;
        while matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(attr)) = toks.get(i + 1) {
                skip |= attr_is_serde_skip(attr);
            }
            i += 2;
        }
        if matches!(toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(toks.get(i), Some(TokenTree::Group(pg)) if pg.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected field name, found {other:?}"),
        };
        i += 2; // field name and ':'
        let mut angle = 0i32;
        let mut arrow_pending = false;
        while let Some(t) = toks.get(i) {
            let mut next_arrow = false;
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    ',' if angle == 0 => break,
                    '<' => angle += 1,
                    '>' if !arrow_pending => angle -= 1,
                    _ => {}
                }
                next_arrow = p.as_char() == '-' && p.spacing() == Spacing::Joint;
            }
            arrow_pending = next_arrow;
            i += 1;
        }
        i += 1; // consume ','
        out.push((name, skip));
    }
    out
}

/// Counts tuple-struct/variant fields: top-level commas at angle depth 0.
fn count_tuple(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle = 0i32;
    let mut arrow_pending = false;
    for (idx, t) in toks.iter().enumerate() {
        let mut next_arrow = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                ',' if angle == 0 && idx + 1 < toks.len() => fields += 1,
                '<' => angle += 1,
                '>' if !arrow_pending => angle -= 1,
                _ => {}
            }
            next_arrow = p.as_char() == '-' && p.spacing() == Spacing::Joint;
        }
        arrow_pending = next_arrow;
    }
    fields
}

fn parse_variants(g: &Group) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named(vg))
            }
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple(vg))
            }
            _ => Fields::Unit,
        };
        // Skip any `= discriminant` up to the separating comma.
        while i < toks.len() && !matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        out.push((name, fields));
    }
    out
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple(g))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g),
            },
            other => panic!("serde shim derive: expected enum body, found {other:?}"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

// ------------------------------------------------------------------- codegen

const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(unused_mut, unused_variables, clippy::all)]\n";

fn named_to_entries(fields: &[(String, bool)], accessor: &dyn Fn(&str) -> String) -> String {
    let mut s = String::from(
        "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
    );
    for (f, skip) in fields {
        if *skip {
            continue;
        }
        s.push_str(&format!(
            "entries.push((\"{f}\".to_string(), ::serde::Serialize::to_value({})));\n",
            accessor(f)
        ));
    }
    s
}

fn tuple_values(n: usize, prefix: &str) -> String {
    (0..n)
        .map(|k| format!("::serde::Serialize::to_value({prefix}{k})"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => format!(
                    "::serde::Value::Array(vec![{}])",
                    (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                Fields::Named(fs) => format!(
                    "{}::serde::Value::Object(entries)",
                    named_to_entries(fs, &|f| format!("&self.{f}"))
                ),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, fields) in variants {
                let arm = match fields {
                    Fields::Unit => {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n")
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(f0))]),\n"
                    ),
                    Fields::Tuple(n) => {
                        let binds = (0..*n)
                            .map(|k| format!("f{k}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            tuple_values(*n, "f")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs
                            .iter()
                            .filter(|(_, skip)| !skip)
                            .map(|(f, _)| f.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let binds = if binds.is_empty() {
                            "..".to_string()
                        } else {
                            format!("{binds}, ..")
                        };
                        format!(
                            "{name}::{v} {{ {binds} }} => {{\n{}\
                             ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Object(entries))])\n}}\n",
                            named_to_entries(fs, &|f| f.to_string())
                        )
                    }
                };
                arms.push_str(&arm);
            }
            (name, format!("match self {{\n{arms}}}"))
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn named_from_entries(name_path: &str, fields: &[(String, bool)], entries: &str) -> String {
    let inits = fields
        .iter()
        .map(|(f, skip)| {
            if *skip {
                format!("{f}: ::std::default::Default::default()")
            } else {
                format!("{f}: ::serde::field({entries}, \"{f}\")?")
            }
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("Ok({name_path} {{ {inits} }})")
}

fn tuple_from_items(name_path: &str, n: usize, src: &str, ctx: &str) -> String {
    let inits = (0..n)
        .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "match {src} {{\n\
         ::serde::Value::Array(items) if items.len() == {n} => Ok({name_path}({inits})),\n\
         _ => Err(::serde::DeError::custom(\"expected {n}-element array for {ctx}\")),\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => tuple_from_items(name, *n, "v", name),
                Fields::Named(fs) => format!(
                    "let entries = v.as_object().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected object for {name}\"))?;\n{}",
                    named_from_entries(name, fs, "entries")
                ),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n")),
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => tagged_arms.push_str(&format!(
                        "\"{v}\" => {},\n",
                        tuple_from_items(
                            &format!("{name}::{v}"),
                            *n,
                            "inner",
                            &format!("variant {v}")
                        )
                    )),
                    Fields::Named(fs) => tagged_arms.push_str(&format!(
                        "\"{v}\" => {{\nlet fe = inner.as_object().ok_or_else(|| \
                         ::serde::DeError::custom(\"expected object for variant {v}\"))?;\n{}\n}}\n",
                        named_from_entries(&format!("{name}::{v}"), fs, "fe")
                    )),
                }
            }
            let body = format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::DeError::custom(::std::format!(\
                 \"unknown unit variant `{{other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => Err(::serde::DeError::custom(::std::format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n}}\n}}\n\
                 _ => Err(::serde::DeError::custom(\
                 \"expected string or single-key object for {name}\")),\n}}"
            );
            (name, body)
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = gen_serialize(&parse_item(input));
    code.parse()
        .unwrap_or_else(|e| panic!("serde shim derive: generated invalid code: {e:?}\n{code}"))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = gen_deserialize(&parse_item(input));
    code.parse()
        .unwrap_or_else(|e| panic!("serde shim derive: generated invalid code: {e:?}\n{code}"))
}
