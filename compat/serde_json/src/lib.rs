//! Offline shim for `serde_json`.
//!
//! Serializes the `serde` shim's [`Value`] tree to JSON text and parses it
//! back. Covers the workspace's usage: [`to_string`], [`to_string_pretty`],
//! and [`from_str`]. Floats are written via Rust's shortest-roundtrip
//! `Display` (the `float_roundtrip` feature is therefore a no-op), with a
//! trailing `.0` added to integral floats so they re-parse as floats.

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ------------------------------------------------------------------- writing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        let integral = !s.contains(['.', 'e', 'E']);
        out.push_str(&s);
        if integral {
            out.push_str(".0");
        }
    } else {
        // serde_json writes non-finite floats as null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Compact JSON for any [`Serialize`] value.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Two-space-indented JSON for any [`Serialize`] value.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

// ------------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are unsupported (never produced
                            // by this shim's writer).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a run of plain characters in one chunk. UTF-8
                    // continuation bytes are >= 0x80, so scanning for the
                    // next quote or backslash byte never splits a character.
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float"))
        } else if let Some(digits) = text.strip_prefix('-') {
            let u: u64 = digits.parse().map_err(|_| self.err("invalid integer"))?;
            Ok(Value::Int(-(u as i64)))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("invalid integer"))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.0, 1.0, -2.5, 1.0 / 3.0, 1e-12, 6.02e23, f64::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "via {s}");
        }
        // Integral floats keep a decimal point so they stay floats.
        assert_eq!(to_string(&20.0f64).unwrap(), "20.0");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, 0.5f64), (2, 1.5)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,0.5],[2,1.5]]");
        assert_eq!(from_str::<Vec<(u64, f64)>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u64, 2], vec![3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u64>>>(&s).unwrap(), v);
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(from_str::<Vec<u64>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("\"no\"").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
    }
}
