//! **A2 — ablation**: hold-out (out-of-sample) evaluation.
//!
//! §V-A: "we propose to include hold-out workload and data distributions
//! that the system is only allowed to execute once. In doing so, the
//! benchmark could measure out-of-sample performance."
//!
//! The learned system runs a four-distribution main scenario (retraining on
//! each phase change), then a single pass over two unseen distributions.
//! Expected shape: the specializing learned system shows a generalization
//! ratio below the traditional B+-tree's (which is ~1.0 by construction).

use lsbench_bench::{emit, KEY_RANGE};
use lsbench_core::driver::{run_kv_scenario, DriverConfig};
use lsbench_core::holdout::{run_holdout, HoldoutReport};
use lsbench_core::scenario::Scenario;
use lsbench_sut::kv::{BTreeSut, RetrainPolicy, RmiSut};
use lsbench_workload::keygen::KeyDistribution;
use lsbench_workload::ops::OperationMix;
use lsbench_workload::phases::{PhasedWorkload, TransitionKind, WorkloadPhase};

const DATASET_SIZE: usize = 150_000;
const PHASE_OPS: u64 = 15_000;

fn scenario() -> Scenario {
    // Main phases mix reads and inserts so the learned system keeps
    // adapting to what it sees (in-sample specialization).
    let mix = OperationMix {
        read: 0.8,
        insert: 0.2,
        update: 0.0,
        scan: 0.0,
        delete: 0.0,
        max_scan_len: 0,
    };
    let in_sample = [
        KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        KeyDistribution::Zipf { theta: 1.0 },
        KeyDistribution::Normal {
            center: 0.2,
            std_frac: 0.05,
        },
        KeyDistribution::Hotspot {
            hot_span: 0.1,
            hot_fraction: 0.9,
        },
    ];
    let phases: Vec<WorkloadPhase> = in_sample
        .iter()
        .map(|d| WorkloadPhase::new(d.name(), d.clone(), KEY_RANGE, mix.clone(), PHASE_OPS))
        .collect();
    let transitions = vec![TransitionKind::Abrupt; phases.len() - 1];
    let workload = PhasedWorkload::new(phases, transitions, 51).expect("static workload is valid");

    // Hold-out: unseen distributions, single pass, read-only.
    let holdout = PhasedWorkload::new(
        vec![
            WorkloadPhase::new(
                "holdout-clustered",
                KeyDistribution::Clustered {
                    clusters: 7,
                    cluster_std_frac: 0.005,
                },
                KEY_RANGE,
                OperationMix::ycsb_c(),
                PHASE_OPS / 2,
            ),
            WorkloadPhase::new(
                "holdout-tail-normal",
                KeyDistribution::Normal {
                    center: 0.95,
                    std_frac: 0.01,
                },
                KEY_RANGE,
                OperationMix::ycsb_c(),
                PHASE_OPS / 2,
            ),
        ],
        vec![TransitionKind::Abrupt],
        53,
    )
    .expect("static workload is valid");

    Scenario::builder("ablation-holdout")
        .dataset(
            KeyDistribution::LogNormal {
                mu: 0.0,
                sigma: 1.2,
            },
            KEY_RANGE,
            DATASET_SIZE,
            54,
        )
        .workload(workload)
        .sla(lsbench_core::metrics::sla::SlaPolicy::Fixed { threshold: 1.0 })
        .maintenance_every(256)
        .holdout(holdout)
        .build()
        .expect("static scenario is valid")
}

fn main() {
    println!("=== A2: hold-out / out-of-sample ablation ===\n");
    let s = scenario();
    let data = s.dataset.build().expect("dataset builds");

    let mut fig =
        String::from("SUT               in-sample t/s  out-of-sample t/s  generalization\n");
    // The learned system retrains on every phase change — maximal
    // in-sample specialization.
    let mut rmi =
        RmiSut::build("rmi+specialize", &data, RetrainPolicy::OnPhaseChange).expect("rmi");
    let main_rmi = run_kv_scenario(&mut rmi, &s, DriverConfig::default()).expect("run");
    let hold_rmi = run_holdout(&mut rmi, &s).expect("holdout run");
    let rep_rmi = HoldoutReport::new(&main_rmi, &hold_rmi).expect("report");
    fig.push_str(&format!(
        "{:<17} {:>12.0}  {:>17.0}  {:>13.3}\n",
        rep_rmi.sut_name,
        rep_rmi.in_sample_throughput,
        rep_rmi.out_of_sample_throughput,
        rep_rmi.generalization_ratio
    ));

    let mut btree = BTreeSut::build(&data).expect("btree");
    let main_bt = run_kv_scenario(&mut btree, &s, DriverConfig::default()).expect("run");
    let hold_bt = run_holdout(&mut btree, &s).expect("holdout run");
    let rep_bt = HoldoutReport::new(&main_bt, &hold_bt).expect("report");
    fig.push_str(&format!(
        "{:<17} {:>12.0}  {:>17.0}  {:>13.3}\n",
        rep_bt.sut_name,
        rep_bt.in_sample_throughput,
        rep_bt.out_of_sample_throughput,
        rep_bt.generalization_ratio
    ));
    fig.push_str(
        "\n(generalization = out-of-sample / in-sample throughput; 1.0 = no overfitting)\n",
    );
    emit("ablation_holdout.txt", &fig);
}
