//! **A3 — ablation**: online-training resource fraction (§V-B).
//!
//! "Users should be allowed to configure whether to use specialized
//! hardware or the fraction of system resources to dedicate for online
//! training." The same retrain-at-shift scenario runs with foreground
//! retraining (the burst stalls one query) and background retraining at
//! three resource fractions (processor sharing).
//!
//! Expected shape: foreground → one enormous latency spike, short recovery;
//! background → bounded worst-case latency but a longer shallow slowdown,
//! with the dip length shrinking as the training fraction grows.

use lsbench_bench::{emit, KEY_RANGE};
use lsbench_core::driver::{run_kv_scenario, DriverConfig};
use lsbench_core::metrics::sla::SlaReport;
use lsbench_core::scenario::{OnlineTrainMode, Scenario};
use lsbench_sut::kv::{RetrainPolicy, RmiSut};
use lsbench_workload::keygen::KeyDistribution;
use lsbench_workload::ops::OperationMix;
use lsbench_workload::phases::{PhasedWorkload, TransitionKind, WorkloadPhase};

const DATASET_SIZE: usize = 150_000;

fn scenario(mode: OnlineTrainMode) -> Scenario {
    let write_mix = OperationMix {
        read: 0.3,
        insert: 0.7,
        update: 0.0,
        scan: 0.0,
        delete: 0.0,
        max_scan_len: 0,
    };
    let workload = PhasedWorkload::new(
        vec![
            WorkloadPhase::new(
                "reads",
                KeyDistribution::LogNormal {
                    mu: 0.0,
                    sigma: 1.2,
                },
                KEY_RANGE,
                OperationMix::ycsb_c(),
                20_000,
            ),
            WorkloadPhase::new(
                "tail-writes",
                KeyDistribution::Normal {
                    center: 0.9,
                    std_frac: 0.02,
                },
                KEY_RANGE,
                write_mix,
                10_000,
            ),
            WorkloadPhase::new(
                "drain-reads",
                KeyDistribution::Normal {
                    center: 0.9,
                    std_frac: 0.02,
                },
                KEY_RANGE,
                OperationMix::ycsb_c(),
                60_000,
            ),
        ],
        vec![TransitionKind::Abrupt, TransitionKind::Abrupt],
        91,
    )
    .expect("static workload is valid");
    Scenario::builder("ablation-resource-fraction")
        .dataset(
            KeyDistribution::LogNormal {
                mu: 0.0,
                sigma: 1.2,
            },
            KEY_RANGE,
            DATASET_SIZE,
            92,
        )
        .workload(workload)
        .sla(lsbench_core::metrics::sla::SlaPolicy::Fixed { threshold: 1.0 })
        .maintenance_every(256)
        .online_train(mode)
        .build()
        .expect("static scenario is valid")
}

fn main() {
    println!("=== A3: online-training resource fraction (§V-B) ===\n");
    let modes = [
        ("foreground", OnlineTrainMode::Foreground),
        (
            "background-10%",
            OnlineTrainMode::Background { fraction: 0.1 },
        ),
        (
            "background-30%",
            OnlineTrainMode::Background { fraction: 0.3 },
        ),
        (
            "background-70%",
            OnlineTrainMode::Background { fraction: 0.7 },
        ),
    ];
    let mut fig = String::from(
        "mode             max-lat-ms  p99-lat-ms  viol%>1ms  mean-ops/s  duration-s\n",
    );
    for (name, mode) in modes {
        let s = scenario(mode);
        let data = s.dataset.build().expect("dataset builds");
        // Retrain only at phase boundaries so every mode pays the same
        // adaptation work, scheduled differently.
        let mut sut =
            RmiSut::build("rmi", &data, RetrainPolicy::OnPhaseChange).expect("rmi builds");
        let record = run_kv_scenario(&mut sut, &s, DriverConfig::default()).expect("run");
        let lats = record.all_latencies();
        let max_lat = lats.iter().cloned().fold(0.0f64, f64::max);
        let p99 = lsbench_stats::descriptive::quantile(&lats, 0.99).expect("non-empty");
        let sla = SlaReport::from_record(
            &record,
            0.001, // 1 ms fixed threshold highlights the spikes
            record.exec_duration() / 50.0,
            5_000,
        )
        .expect("report builds");
        fig.push_str(&format!(
            "{:<16} {:>10.3} {:>11.4} {:>9.3} {:>11.0} {:>11.4}\n",
            name,
            max_lat * 1e3,
            p99 * 1e3,
            sla.violation_fraction * 100.0,
            record.mean_throughput(),
            record.exec_duration(),
        ));
    }
    fig.push_str(
        "\n(foreground concentrates the retrain into one spike; background\n caps worst-case latency at the cost of a longer shallow slowdown)\n",
    );
    emit("ablation_resource_fraction.txt", &fig);
}
