//! **A1 — ablation**: transition type × adaptability.
//!
//! §V-B: "a workload can slowly transition to another or transition
//! abruptly. The type of transition can impact performance and adaptability
//! in non-obvious ways." The same two-distribution shift runs with an
//! abrupt switch, a short gradual window, and a long gradual window; the
//! adaptability metrics quantify the difference for the retraining learned
//! system.
//!
//! Expected shape: gradual transitions smear the write burst, giving the
//! learned system smaller SLA-adjustment costs than the abrupt switch.

use lsbench_bench::{emit, KEY_RANGE};
use lsbench_core::driver::{run_kv_scenario, DriverConfig};
use lsbench_core::metrics::adaptability::AdaptabilityReport;
use lsbench_core::metrics::sla::SlaReport;
use lsbench_core::scenario::Scenario;
use lsbench_sut::kv::{RetrainPolicy, RmiSut};
use lsbench_workload::keygen::KeyDistribution;
use lsbench_workload::ops::OperationMix;
use lsbench_workload::phases::{PhasedWorkload, TransitionKind, WorkloadPhase};

const DATASET_SIZE: usize = 150_000;
const PHASE_OPS: u64 = 20_000;

fn scenario(kind: TransitionKind) -> Scenario {
    let write_mix = OperationMix {
        read: 0.5,
        insert: 0.5,
        update: 0.0,
        scan: 0.0,
        delete: 0.0,
        max_scan_len: 0,
    };
    let workload = PhasedWorkload::new(
        vec![
            WorkloadPhase::new(
                "head-reads",
                KeyDistribution::LogNormal {
                    mu: 0.0,
                    sigma: 1.2,
                },
                KEY_RANGE,
                OperationMix::ycsb_c(),
                PHASE_OPS,
            ),
            WorkloadPhase::new(
                "tail-writes",
                KeyDistribution::Normal {
                    center: 0.9,
                    std_frac: 0.02,
                },
                KEY_RANGE,
                write_mix,
                PHASE_OPS,
            ),
        ],
        vec![kind],
        41,
    )
    .expect("static workload is valid");
    Scenario::builder(format!("ablation-transition-{kind:?}"))
        .dataset(
            KeyDistribution::LogNormal {
                mu: 0.0,
                sigma: 1.2,
            },
            KEY_RANGE,
            DATASET_SIZE,
            42,
        )
        .workload(workload)
        .sla(lsbench_core::metrics::sla::SlaPolicy::Fixed { threshold: 1.0 })
        .maintenance_every(256)
        .build()
        .expect("static scenario is valid")
}

fn main() {
    println!("=== A1: transition-type ablation (abrupt vs. gradual) ===\n");
    let kinds = [
        ("abrupt", TransitionKind::Abrupt),
        ("gradual-20%", TransitionKind::Gradual { window: 0.2 }),
        ("gradual-60%", TransitionKind::Gradual { window: 0.6 }),
    ];
    let mut fig =
        String::from("transition     norm-area   recovery-s   retrains   adjust-speed-s\n");
    for (name, kind) in kinds {
        let s = scenario(kind);
        let data = s.dataset.build().expect("dataset builds");
        let mut sut = RmiSut::build("rmi+retrain", &data, RetrainPolicy::DeltaFraction(0.02))
            .expect("rmi builds");
        let record = run_kv_scenario(&mut sut, &s, DriverConfig::default()).expect("run");
        let adapt = AdaptabilityReport::from_record(&record).expect("report");
        // Fixed threshold derived from typical steady latency (~2x typical).
        let lats = record.all_latencies();
        let threshold = lsbench_stats::descriptive::quantile(&lats, 0.5).expect("non-empty") * 4.0;
        let interval = record.exec_duration() / 50.0;
        let sla = SlaReport::from_record(&record, threshold, interval, 12_000).expect("sla report");
        let recovery = adapt
            .recovery_times
            .first()
            .map(|&(_, r)| r)
            .unwrap_or(f64::NAN);
        let adjust = sla
            .adjustment_speed
            .first()
            .map(|&(_, a)| a)
            .unwrap_or(f64::NAN);
        fig.push_str(&format!(
            "{:<14} {:>9.4}   {:>9.3}   {:>8}   {:>12.4}\n",
            name, adapt.normalized_area, recovery, record.final_metrics.adaptations, adjust
        ));
    }
    emit("ablation_transitions.txt", &fig);
}
