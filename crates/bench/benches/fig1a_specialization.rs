//! **F1a — Fig. 1a**: throughput per workload/data distribution, reported
//! as box plots over an X-axis sorted by the Φ similarity value.
//!
//! Six access distributions (uniform baseline → increasingly different) hit
//! the same log-normal dataset; Φ is the Kolmogorov–Smirnov distance of the
//! access-key distribution from the baseline. SUTs: RMI (learned) vs.
//! B+-tree (traditional) vs. ALEX (adaptive learned).
//!
//! Expected shape (paper, Fig. 1a): the learned index shows *wider spread*
//! across distributions (it specializes — strong where models fit, weaker
//! where they don't), while the traditional B+-tree is nearly flat.

use lsbench_bench::{distribution_ladder, emit, KEY_RANGE};
use lsbench_core::driver::{run_kv_scenario, DriverConfig};
use lsbench_core::metrics::phi::{distribution_phis, DataPhiMethod};
use lsbench_core::metrics::specialization::SpecializationReport;
use lsbench_core::report::{render_specialization, series_csv, to_json, write_artifact};
use lsbench_core::scenario::Scenario;
use lsbench_core::sut_registry::SutRegistry;
use lsbench_sut::kv::{RetrainPolicy, RmiSut};
use lsbench_sut::sut::SystemUnderTest;
use lsbench_workload::ops::{Operation, OperationMix};

const DATASET_SIZE: usize = 200_000;
const OPS_PER_PHASE: u64 = 20_000;
const OPS_PER_WINDOW: usize = 500;

fn scenario() -> Scenario {
    let mut s = Scenario::specialization_sweep(
        "fig1a",
        distribution_ladder(),
        DATASET_SIZE,
        OPS_PER_PHASE,
        OperationMix::ycsb_c(),
        7,
    )
    .expect("static scenario is valid");
    // The dataset itself is the shared log-normal database.
    s.dataset.distribution = lsbench_workload::keygen::KeyDistribution::LogNormal {
        mu: 0.0,
        sigma: 1.2,
    };
    s
}

fn run_one<S: SystemUnderTest<Operation> + ?Sized>(
    sut: &mut S,
    s: &Scenario,
    phis: &[f64],
) -> String {
    let record = run_kv_scenario(sut, s, DriverConfig::default()).expect("run succeeds");
    let report = SpecializationReport::from_record(&record, phis, OPS_PER_WINDOW, &[])
        .expect("report builds");
    let fig = render_specialization(&report);
    let _ = write_artifact(
        &format!("fig1a_{}.json", record.sut_name),
        &to_json(&report).expect("serializable"),
    );
    let series: Vec<(f64, f64)> = report
        .entries
        .iter()
        .map(|e| (e.phi, e.throughput.five.median))
        .collect();
    let _ = write_artifact(
        &format!("fig1a_{}.csv", record.sut_name),
        &series_csv(("phi", "median_throughput"), &series),
    );
    fig
}

fn main() {
    let s = scenario();
    let data = s.dataset.build().expect("dataset builds");
    let phis = distribution_phis(
        &distribution_ladder(),
        KEY_RANGE,
        DataPhiMethod::KolmogorovSmirnov,
        11,
    )
    .expect("phi computation succeeds");

    println!("=== F1a: specialization (throughput box plots per distribution, Φ-sorted) ===\n");
    // The RMI is frozen (RetrainPolicy::Never) so the figure shows pure
    // specialization, not adaptation — the registry's default retrains, so
    // this SUT stays hand-built.
    let mut rmi = RmiSut::build("rmi", &data, RetrainPolicy::Never).expect("rmi builds");
    emit("fig1a_rmi.txt", &run_one(&mut rmi, &s, &phis));

    let registry = SutRegistry::default();
    let mut btree = registry.build("btree", &data).expect("btree builds");
    emit("fig1a_btree.txt", &run_one(&mut *btree, &s, &phis));

    let mut alex = registry.build("alex", &data).expect("alex builds");
    emit("fig1a_alex.txt", &run_one(&mut *alex, &s, &phis));
}
