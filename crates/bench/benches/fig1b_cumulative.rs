//! **F1b — Fig. 1b**: cumulative queries completed over time, with the
//! area-difference single-value metrics.
//!
//! Scenario: a read phase on the trained distribution, then an abrupt shift
//! to an insert-heavy phase over a new key region, then reads again. The
//! learned system (RMI + delta + retraining) pays training up front and
//! retrains mid-run — "the SUT starts slow and later catches up" — while
//! the B+-tree neither trains nor stalls.
//!
//! Expected shape (paper, Fig. 1b): the learned curve starts flat (training)
//! with a *negative* area vs. the ideal constant-throughput system early,
//! then a steeper slope; the two-system area difference tells who wins
//! overall.

use lsbench_bench::{emit, KEY_RANGE};
use lsbench_core::driver::{run_kv_scenario, DriverConfig};
use lsbench_core::metrics::adaptability::AdaptabilityReport;
use lsbench_core::report::{render_adaptability, series_csv, to_json, write_artifact};
use lsbench_core::scenario::Scenario;
use lsbench_sut::kv::{BTreeSut, RetrainPolicy, RmiSut};
use lsbench_workload::keygen::KeyDistribution;
use lsbench_workload::ops::OperationMix;
use lsbench_workload::phases::{PhasedWorkload, TransitionKind, WorkloadPhase};

const DATASET_SIZE: usize = 200_000;
const PHASE_OPS: u64 = 80_000;

fn scenario() -> Scenario {
    let read_mix = OperationMix::ycsb_c();
    let write_mix = OperationMix {
        read: 0.3,
        insert: 0.7,
        update: 0.0,
        scan: 0.0,
        delete: 0.0,
        max_scan_len: 0,
    };
    let workload = PhasedWorkload::new(
        vec![
            WorkloadPhase::new(
                "reads-lognormal",
                KeyDistribution::LogNormal {
                    mu: 0.0,
                    sigma: 1.2,
                },
                KEY_RANGE,
                read_mix.clone(),
                PHASE_OPS,
            ),
            WorkloadPhase::new(
                "insert-burst-new-region",
                KeyDistribution::Normal {
                    center: 0.9,
                    std_frac: 0.02,
                },
                KEY_RANGE,
                write_mix,
                PHASE_OPS,
            ),
            WorkloadPhase::new(
                "reads-shifted",
                KeyDistribution::Normal {
                    center: 0.9,
                    std_frac: 0.02,
                },
                KEY_RANGE,
                read_mix,
                PHASE_OPS,
            ),
        ],
        vec![TransitionKind::Abrupt, TransitionKind::Abrupt],
        13,
    )
    .expect("static workload is valid");
    Scenario::builder("fig1b")
        .dataset(
            KeyDistribution::LogNormal {
                mu: 0.0,
                sigma: 1.2,
            },
            KEY_RANGE,
            DATASET_SIZE,
            14,
        )
        .workload(workload)
        .maintenance_every(256)
        .build()
        .expect("static scenario is valid")
}

fn main() {
    let s = scenario();
    let data = s.dataset.build().expect("dataset builds");

    println!("=== F1b: cumulative queries over time (adaptability) ===\n");
    let mut rmi =
        RmiSut::build("rmi+retrain", &data, RetrainPolicy::DeltaFraction(0.05)).expect("rmi");
    let rmi_record = run_kv_scenario(&mut rmi, &s, DriverConfig::default()).expect("run");
    let mut rmi_never = RmiSut::build("rmi-no-retrain", &data, RetrainPolicy::Never).expect("rmi");
    let never_record = run_kv_scenario(&mut rmi_never, &s, DriverConfig::default()).expect("run");
    let mut btree = BTreeSut::build(&data).expect("btree");
    let btree_record = run_kv_scenario(&mut btree, &s, DriverConfig::default()).expect("run");

    let rmi_rep = AdaptabilityReport::from_record(&rmi_record).expect("report");
    let never_rep = AdaptabilityReport::from_record(&never_record).expect("report");
    let btree_rep = AdaptabilityReport::from_record(&btree_record).expect("report");

    let mut fig = render_adaptability(&[&rmi_rep, &never_rep, &btree_rep]);
    let rmi_vs_btree = rmi_rep.area_vs(&btree_rep).expect("comparable spans");
    fig.push_str(&format!(
        "  two-system area difference (rmi+retrain − btree): {rmi_vs_btree:+.1} op·s\n"
    ));
    let never_vs_btree = never_rep.area_vs(&btree_rep).expect("comparable spans");
    fig.push_str(&format!(
        "  two-system area difference (rmi-no-retrain − btree): {never_vs_btree:+.1} op·s\n"
    ));
    fig.push_str(&format!(
        "  training time: rmi {:.3}s (work {}), btree {:.3}s\n",
        rmi_record.train.seconds, rmi_record.train.work, btree_record.train.seconds
    ));
    fig.push_str(&format!(
        "  retrains during run: {}\n",
        rmi_record.final_metrics.adaptations
    ));
    emit("fig1b.txt", &fig);

    for (name, rep) in [
        ("rmi", &rmi_rep),
        ("rmi_never", &never_rep),
        ("btree", &btree_rep),
    ] {
        let _ = write_artifact(
            &format!("fig1b_{name}.csv"),
            &series_csv(("t", "completed"), &rep.curve),
        );
        let _ = write_artifact(
            &format!("fig1b_{name}.json"),
            &to_json(rep).expect("serializable"),
        );
    }
}
