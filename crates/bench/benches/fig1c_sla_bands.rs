//! **F1c — Fig. 1c**: per-interval latency bands split by SLA compliance,
//! plus the adjustment-speed single value.
//!
//! Same shift scenario as F1b. The SLA threshold is calibrated from the
//! *baseline* (B+-tree) run's p99 latency, per the paper's recommendation.
//!
//! Expected shape (paper, Fig. 1c): "a low number of completed queries or a
//! high number of queries with an SLA violation (red) following a
//! distribution change indicates slow adjustment speed" — the learned
//! system shows violation bands right after the shift (delta growth +
//! retraining bursts), the B+-tree shows none.

use lsbench_bench::{emit, KEY_RANGE};
use lsbench_core::driver::{run_kv_scenario, DriverConfig};
use lsbench_core::metrics::sla::{SlaPolicy, SlaReport};
use lsbench_core::report::{render_sla, to_json, write_artifact};
use lsbench_core::scenario::Scenario;
use lsbench_sut::kv::{BTreeSut, RetrainPolicy, RmiSut};
use lsbench_workload::keygen::KeyDistribution;
use lsbench_workload::ops::OperationMix;
use lsbench_workload::phases::{PhasedWorkload, TransitionKind, WorkloadPhase};

const DATASET_SIZE: usize = 200_000;
const PHASE_OPS: u64 = 25_000;
const ADJUSTMENT_N: usize = 5_000;

fn scenario() -> Scenario {
    let write_mix = OperationMix {
        read: 0.4,
        insert: 0.6,
        update: 0.0,
        scan: 0.0,
        delete: 0.0,
        max_scan_len: 0,
    };
    let workload = PhasedWorkload::new(
        vec![
            WorkloadPhase::new(
                "steady-reads",
                KeyDistribution::LogNormal {
                    mu: 0.0,
                    sigma: 1.2,
                },
                KEY_RANGE,
                OperationMix::ycsb_c(),
                PHASE_OPS,
            ),
            WorkloadPhase::new(
                "shifted-writes",
                KeyDistribution::Normal {
                    center: 0.85,
                    std_frac: 0.03,
                },
                KEY_RANGE,
                write_mix,
                PHASE_OPS,
            ),
        ],
        vec![TransitionKind::Abrupt],
        17,
    )
    .expect("static workload is valid");
    Scenario::builder("fig1c")
        .dataset(
            KeyDistribution::LogNormal {
                mu: 0.0,
                sigma: 1.2,
            },
            KEY_RANGE,
            DATASET_SIZE,
            18,
        )
        .workload(workload)
        .sla(SlaPolicy::FromBaselineP99 { multiplier: 2.0 })
        .maintenance_every(256)
        .build()
        .expect("static scenario is valid")
}

fn main() {
    let s = scenario();
    let data = s.dataset.build().expect("dataset builds");

    println!("=== F1c: SLA violation bands ===\n");
    // Baseline run calibrates the SLA threshold (paper §V-D.2).
    let mut btree = BTreeSut::build(&data).expect("btree");
    let btree_record = run_kv_scenario(&mut btree, &s, DriverConfig::default()).expect("run");
    let threshold = s.sla.resolve(Some(&btree_record)).expect("resolvable");
    println!("SLA threshold (2 × baseline p99): {threshold:.6} virtual seconds\n");

    let mut rmi =
        RmiSut::build("rmi+retrain", &data, RetrainPolicy::DeltaFraction(0.005)).expect("rmi");
    let rmi_record = run_kv_scenario(&mut rmi, &s, DriverConfig::default()).expect("run");

    // Interval: 1/50 of the execution so both figures have ~50 bands.
    for record in [&btree_record, &rmi_record] {
        let interval = (record.exec_duration() / 50.0).max(1e-6);
        let report = SlaReport::from_record(record, threshold, interval, ADJUSTMENT_N)
            .expect("report builds");
        emit(
            &format!("fig1c_{}.txt", record.sut_name),
            &render_sla(&report),
        );
        let _ = write_artifact(
            &format!("fig1c_{}.json", record.sut_name),
            &to_json(&report).expect("serializable"),
        );
    }
}
