//! **F1d — Fig. 1d**: throughput per training cost, against the DBA
//! step-function cost of manually tuning a traditional system.
//!
//! The learned system (RMI) is trained at five budgets — fewer/more leaf
//! models, coarser/finer training samples — each yielding a (training $,
//! throughput) point. The traditional system is the B+-tree whose
//! "manual tuning" steps are modeled by the DBA step function. Training
//! cost is evaluated on CPU, GPU, and TPU hardware profiles (§V-D.3).
//!
//! Expected shape (paper, Fig. 1d): learned throughput grows with training
//! spend and crosses the tuned-traditional level at some budget — the
//! "training cost to outperform a traditional system" metric.

use lsbench_bench::{emit, standard_dataset, KEY_RANGE};
use lsbench_core::driver::{run_kv_scenario, DriverConfig};
use lsbench_core::metrics::cost::{CostReport, TrainingTradeoff};
use lsbench_core::record::RunRecord;
use lsbench_core::report::{render_cost, render_tradeoff, to_json, write_artifact};
use lsbench_core::scenario::Scenario;
use lsbench_index::rmi::{Rmi, RmiConfig};
use lsbench_sut::cost::{DbaCostModel, HardwareProfile};
use lsbench_sut::kv::{BTreeSut, LearnedKvSut, RetrainPolicy};
use lsbench_workload::keygen::KeyDistribution;
use lsbench_workload::ops::OperationMix;
use lsbench_workload::phases::{PhasedWorkload, WorkloadPhase};

const DATASET_SIZE: usize = 200_000;
const OPS: u64 = 30_000;

/// The benchmark run simulates a production deployment 10⁶× larger than the
/// laptop-scale dataset (200k keys → 200G keys): training work is scaled
/// accordingly before conversion to dollars so the Fig. 1d axes carry
/// production-scale meaning. Execution throughput is scale-invariant
/// (per-op cost does not change), so only training cost is scaled.
const PRODUCTION_SCALE: u64 = 1_000_000;

/// Training-budget ladder: (leaf_count, sample_every), cheapest first.
const BUDGETS: [(usize, usize); 5] = [(16, 64), (128, 16), (1024, 4), (8192, 1), (32768, 1)];

fn scenario() -> Scenario {
    let workload = PhasedWorkload::single(
        WorkloadPhase::new(
            "reads",
            KeyDistribution::LogNormal {
                mu: 0.0,
                sigma: 1.2,
            },
            KEY_RANGE,
            OperationMix::ycsb_c(),
            OPS,
        ),
        21,
    )
    .expect("static workload is valid");
    Scenario::builder("fig1d")
        .dataset(
            KeyDistribution::LogNormal {
                mu: 0.0,
                sigma: 1.2,
            },
            KEY_RANGE,
            DATASET_SIZE,
            22,
        )
        .workload(workload)
        .sla(lsbench_core::metrics::sla::SlaPolicy::Fixed { threshold: 1.0 })
        .maintenance_every(u64::MAX)
        .build()
        .expect("static scenario is valid")
}

fn main() {
    let s = scenario();
    let data = standard_dataset(DATASET_SIZE, 22);
    let pairs: Vec<(u64, u64)> = data.pairs().collect();

    println!("=== F1d: throughput per training cost vs. DBA step function ===\n");

    // Traditional baseline throughput anchors the DBA step function.
    let mut btree = BTreeSut::build(&data).expect("btree");
    let btree_record = run_kv_scenario(&mut btree, &s, DriverConfig::default()).expect("run");
    let dba = DbaCostModel::default_model(btree_record.mean_throughput());
    println!(
        "baseline (untuned btree) throughput: {:.0} ops/s\n",
        btree_record.mean_throughput()
    );

    // Learned system at increasing training budgets.
    let mut runs: Vec<RunRecord> = Vec::new();
    for (leaf_count, sample_every) in BUDGETS {
        let rmi = Rmi::build(
            &pairs,
            RmiConfig {
                leaf_count,
                sample_every,
            },
        )
        .expect("rmi builds");
        let mut sut = LearnedKvSut::with_trained_base(
            format!("rmi-l{leaf_count}-s{sample_every}"),
            rmi,
            RetrainPolicy::Never,
        );
        let mut record = run_kv_scenario(&mut sut, &s, DriverConfig::default()).expect("run");
        println!(
            "  {}: train work {:>12}, throughput {:>8.0} ops/s",
            record.sut_name,
            record.final_metrics.training_work,
            record.mean_throughput()
        );
        // Project training work to production scale (see PRODUCTION_SCALE).
        record.final_metrics.training_work = record
            .final_metrics
            .training_work
            .saturating_mul(PRODUCTION_SCALE);
        runs.push(record);
    }
    println!();

    let profiles = [
        HardwareProfile::cpu(),
        HardwareProfile::gpu(),
        HardwareProfile::tpu(),
    ];
    // Cost breakdown for the largest-budget run on all hardware.
    let biggest = runs.last().expect("non-empty budget ladder");
    let cost_report = CostReport::from_record(biggest, &profiles).expect("report builds");
    emit("fig1d_cost_breakdown.txt", &render_cost(&cost_report));
    let _ = write_artifact(
        "fig1d_cost_breakdown.json",
        &to_json(&cost_report).expect("serializable"),
    );

    // Trade-off curve per hardware profile.
    for hw in &profiles {
        let tradeoff = TrainingTradeoff::new(&runs, hw, &dba).expect("tradeoff builds");
        let mut fig = format!("--- hardware: {} ---\n", hw.name);
        fig.push_str(&render_tradeoff(&tradeoff));
        emit(&format!("fig1d_tradeoff_{}.txt", hw.name), &fig);
        let _ = write_artifact(
            &format!("fig1d_tradeoff_{}.json", hw.name),
            &to_json(&tradeoff).expect("serializable"),
        );
    }
}
