//! **Concurrency scaling**: the concurrent engine's throughput as lanes
//! and worker threads grow.
//!
//! Two readings per point:
//!
//! * criterion's wall-clock time for the whole sharded run (does the
//!   physical fan-out pay for itself?), and
//! * the merged *virtual* mean throughput, emitted as a small table (does
//!   the modeled parallelism scale as N lanes should?).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsbench_bench::emit;
use lsbench_core::engine::{run_sharded_kv_scenario, shard_dataset, EngineConfig};
use lsbench_core::runner::BoxedKvSut;
use lsbench_core::scenario::Scenario;
use lsbench_core::sut_registry::SutRegistry;
use lsbench_workload::dataset::Dataset;
use lsbench_workload::keygen::KeyDistribution;

const CONCURRENCY: [usize; 4] = [1, 2, 4, 8];

fn scenario() -> Scenario {
    Scenario::two_phase_shift(
        "concurrency-scaling",
        KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        KeyDistribution::Zipf { theta: 1.1 },
        50_000,
        5_000,
        21,
    )
    .expect("valid scenario")
}

fn shard_suts(registry: &SutRegistry, shards: &[Dataset]) -> Vec<BoxedKvSut> {
    shards
        .iter()
        .map(|d| registry.build("btree", d).expect("shard builds"))
        .collect()
}

fn bench_scaling(c: &mut Criterion) {
    let registry = SutRegistry::default();
    let s = scenario();
    let data = s.dataset.build().expect("dataset builds");
    let mut group = c.benchmark_group("sharded_btree_scaling");
    group.sample_size(10);
    let mut table = String::from("threads  virtual-ops/s  speedup\n");
    let mut base = 0.0f64;
    for n in CONCURRENCY {
        let (router, shards) = shard_dataset(&data, n).expect("shards");
        let config = EngineConfig::with_concurrency(n);
        let report = {
            let mut suts = shard_suts(&registry, &shards);
            run_sharded_kv_scenario(&mut suts, &router, &s, &config).expect("run")
        };
        let tput = report.record.mean_throughput();
        if n == 1 {
            base = tput;
        }
        table.push_str(&format!("{n:>7}  {tput:>13.0}  {:>7.2}\n", tput / base));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut suts = shard_suts(&registry, &shards);
                let _ = n;
                run_sharded_kv_scenario(&mut suts, &router, &s, &config).expect("run")
            })
        });
    }
    group.finish();
    emit("fig_concurrency_scaling.txt", &table);
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
