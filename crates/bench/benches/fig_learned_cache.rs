//! **LC — §II "learning-based caches"**: LRU vs. a learned
//! frequency-predicting cache in front of the same B+-tree, under a hot-set
//! shift.
//!
//! Phase 1 concentrates reads on hot region A (with background scans that
//! pollute recency-based caches); phase 2 abruptly moves the hot set to
//! region B. Expected shape: the learned cache wins phase 1 (frequency
//! beats recency under scan pollution) but — being specialized to A —
//! adapts *more slowly* after the shift than LRU. Its decay half-life is
//! the specialize-vs-adapt knob, exactly the trade-off the paper's
//! adaptability metrics exist to quantify.

use lsbench_bench::{emit, KEY_RANGE};
use lsbench_core::driver::{run_kv_scenario, DriverConfig};
use lsbench_core::metrics::adaptability::AdaptabilityReport;
use lsbench_core::scenario::Scenario;
use lsbench_index::cache::{KeyCache, LearnedCache, LruCache};
use lsbench_sut::kv::{BTreeSut, CachedSut};
use lsbench_workload::keygen::KeyDistribution;
use lsbench_workload::ops::OperationMix;
use lsbench_workload::phases::{PhasedWorkload, TransitionKind, WorkloadPhase};

const DATASET_SIZE: usize = 200_000;
const PHASE_OPS: u64 = 60_000;
const CACHE_CAPACITY: usize = 4_096;

fn scenario() -> Scenario {
    // Narrow hot regions; a small scan share pollutes recency caches.
    let mix = OperationMix {
        read: 0.9,
        insert: 0.0,
        update: 0.0,
        scan: 0.1,
        delete: 0.0,
        max_scan_len: 32,
    };
    // Zipf access over disjoint half-ranges: a heavy-hitter hot set in the
    // lower half, then an abrupt move to the upper half.
    let zipf = KeyDistribution::Zipf { theta: 1.2 };
    let lower = (KEY_RANGE.0, KEY_RANGE.1 / 2);
    let upper = (KEY_RANGE.1 / 2, KEY_RANGE.1);
    let workload = PhasedWorkload::new(
        vec![
            WorkloadPhase::new("hot-A", zipf.clone(), lower, mix.clone(), PHASE_OPS),
            WorkloadPhase::new("hot-B", zipf, upper, mix, PHASE_OPS),
        ],
        vec![TransitionKind::Abrupt],
        101,
    )
    .expect("static workload is valid");
    Scenario::builder("learned-cache")
        .dataset(KeyDistribution::Uniform, KEY_RANGE, DATASET_SIZE, 102)
        .workload(workload)
        .sla(lsbench_core::metrics::sla::SlaPolicy::Fixed { threshold: 1.0 })
        .maintenance_every(u64::MAX)
        .build()
        .expect("static scenario is valid")
}

fn run_cached<C: KeyCache + 'static>(
    label: &str,
    cache: C,
    s: &Scenario,
    fig: &mut String,
) -> AdaptabilityReport {
    let data = s.dataset.build().expect("dataset builds");
    let mut sut = CachedSut::new(BTreeSut::build(&data).expect("btree"), cache);
    let record = run_kv_scenario(&mut sut, s, DriverConfig::default()).expect("run");
    let stats = sut.cache_stats();
    let rep = AdaptabilityReport::from_record(&record).expect("report");
    fig.push_str(&format!(
        "{:<22} hit-rate {:.3}  phase tput {:?}  recovery {:?}\n",
        label,
        stats.hit_rate(),
        rep.phase_throughput
            .iter()
            .map(|t| t.round())
            .collect::<Vec<_>>(),
        rep.recovery_times
            .iter()
            .map(|&(p, r)| (p, (r * 1000.0).round() / 1000.0))
            .collect::<Vec<_>>(),
    ));
    rep
}

fn main() {
    println!("=== LC: learned cache vs LRU under a hot-set shift ===\n");
    let s = scenario();
    let mut fig = String::new();

    // Uncached baseline for context.
    {
        let data = s.dataset.build().expect("dataset builds");
        let mut plain = BTreeSut::build(&data).expect("btree");
        let record = run_kv_scenario(&mut plain, &s, DriverConfig::default()).expect("run");
        fig.push_str(&format!(
            "{:<22} hit-rate   -    mean tput {:.0}\n",
            "btree (no cache)",
            record.mean_throughput()
        ));
    }
    let lru = run_cached("btree+lru", LruCache::new(CACHE_CAPACITY), &s, &mut fig);
    let learned_balanced = run_cached(
        "btree+learned(16x)",
        LearnedCache::new(CACHE_CAPACITY),
        &s,
        &mut fig,
    );
    let learned_sticky = run_cached(
        "btree+learned(256x)",
        LearnedCache::with_half_life(CACHE_CAPACITY, CACHE_CAPACITY as f64 * 256.0),
        &s,
        &mut fig,
    );
    fig.push_str(&format!(
        "\narea difference (learned-16x − lru): {:+.1} op·s\n",
        learned_balanced.area_vs(&lru).expect("comparable")
    ));
    fig.push_str(&format!(
        "area difference (learned-256x − lru): {:+.1} op·s\n",
        learned_sticky.area_vs(&lru).expect("comparable")
    ));
    fig.push_str(
        "\n(under pure zipf access, frequency ~ recency, so all caches serve ~80%;\n the sticky 256x half-life lags after the hot-set move — negative area vs\n LRU — the specialize/adapt trade-off of §IV. The scan-pollution case\n where learned frequency decisively beats LRU is exercised in\n crates/index/src/cache.rs::learned_keeps_hot_keys_under_scan_pollution.)\n",
    );
    emit("fig_learned_cache.txt", &fig);
}
