//! **QS — query-optimizer adaptability** (§II's learned-optimizer side).
//!
//! Three query SUTs run the same two-phase join workload (a star-schema
//! profile that shifts its filter placement mid-run):
//!
//! * `traditional-optimizer` — DP over histogram estimates, never adapts;
//! * `learned-cardinality` — same optimizer with a feedback-trained
//!   estimator (collects true cardinalities, §IV);
//! * `bandit-steered` — Bao-style ε-greedy choice among plan arms.
//!
//! Expected shape: learned systems lag on the first queries of each phase
//! (exploration / cold estimator), then meet or beat the traditional
//! optimizer; Jaccard-based workload Φ separates the two phases.

use lsbench_bench::emit;
use lsbench_core::driver::run_query_workload;
use lsbench_core::metrics::adaptability::AdaptabilityReport;
use lsbench_core::metrics::phi::workload_phi;
use lsbench_core::record::RunRecord;
use lsbench_core::report::render_adaptability;
use lsbench_query::generator::JoinQueryGenerator;
use lsbench_query::table::{Catalog, Table};
use lsbench_sut::query_sut::{BanditQuerySut, LearnedCardinalitySut, QueryOp, TraditionalQuerySut};
use lsbench_sut::sut::SystemUnderTest;

const QUERIES_PER_PHASE: usize = 250;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add(Table::generate("fact", 30_000, 4, 61));
    cat.add(Table::generate("dim_small", 100, 2, 62));
    cat.add(Table::generate("dim_mid", 1_500, 2, 63));
    cat.add(Table::generate("dim_big", 8_000, 2, 64));
    cat
}

fn phases(cat: &Catalog) -> Vec<(String, Vec<QueryOp>)> {
    // Phase 1: narrow filters (small intermediates).
    let mut g1 = JoinQueryGenerator::new(
        cat,
        "fact",
        vec!["dim_small".into(), "dim_mid".into(), "dim_big".into()],
        (0, 120),
        71,
    )
    .expect("valid generator");
    // Phase 2: wide filters (big intermediates) — different shapes.
    let mut g2 = JoinQueryGenerator::new(
        cat,
        "fact",
        vec!["dim_big".into(), "dim_mid".into()],
        (600, 1000),
        72,
    )
    .expect("valid generator");
    let narrow: Vec<QueryOp> = g1
        .take(QUERIES_PER_PHASE)
        .into_iter()
        .map(|query| QueryOp { query })
        .collect();
    let wide: Vec<QueryOp> = g2
        .take(QUERIES_PER_PHASE)
        .into_iter()
        .map(|query| QueryOp { query })
        .collect();
    // The third phase repeats the first: a bandit that remembers per-shape
    // arms should show no exploration penalty the second time around.
    vec![
        ("narrow-star".to_string(), narrow.clone()),
        ("wide-star".to_string(), wide),
        ("narrow-star-again".to_string(), narrow),
    ]
}

fn run<S: SystemUnderTest<QueryOp>>(sut: &mut S, phases: &[(String, Vec<QueryOp>)]) -> RunRecord {
    run_query_workload(sut, phases, 1_000_000.0, u64::MAX).expect("run succeeds")
}

fn main() {
    println!("=== QS: query-optimizer steering under workload shift ===\n");
    let cat = catalog();
    let phases = phases(&cat);

    // Workload Φ between the two phases (Jaccard over query subtrees).
    let trees_a: Vec<_> = phases[0]
        .1
        .iter()
        .flat_map(|op| op.query.relations.clone())
        .collect();
    let trees_b: Vec<_> = phases[1]
        .1
        .iter()
        .flat_map(|op| op.query.relations.clone())
        .collect();
    println!(
        "workload Φ (1 − Jaccard over subtrees) between phases: {:.3}\n",
        workload_phi(&trees_a, &trees_b)
    );

    let mut traditional = TraditionalQuerySut::build(cat.clone()).expect("builds");
    let rec_t = run(&mut traditional, &phases);
    let mut learned = LearnedCardinalitySut::build(cat.clone()).expect("builds");
    let rec_l = run(&mut learned, &phases);
    let mut bandit = BanditQuerySut::build(cat.clone(), 0.1, 73).expect("builds");
    let rec_b = run(&mut bandit, &phases);

    let rep_t = AdaptabilityReport::from_record(&rec_t).expect("report");
    let rep_l = AdaptabilityReport::from_record(&rec_l).expect("report");
    let rep_b = AdaptabilityReport::from_record(&rec_b).expect("report");
    let mut fig = render_adaptability(&[&rep_t, &rep_l, &rep_b]);

    fig.push_str("\nper-phase mean latency (virtual ms/query, lower is better):\n");
    for (rec, _rep) in [(&rec_t, &rep_t), (&rec_l, &rep_l), (&rec_b, &rep_b)] {
        let mut row = format!("  {:<22}", rec.sut_name);
        for p in 0..rec.phase_names.len() {
            let lats = rec.phase_latencies(p);
            let mean = lats.iter().sum::<f64>() / lats.len().max(1) as f64;
            row.push_str(&format!(" {:>9.3}", mean * 1e3));
        }
        row.push_str(&format!(
            "   label-work: {}\n",
            rec.final_metrics.label_collection_work
        ));
        fig.push_str(&row);
    }
    fig.push_str(&format!(
        "\n  two-system area (learned − traditional): {:+.1}\n",
        rep_l.area_vs(&rep_t).expect("comparable")
    ));
    fig.push_str(&format!(
        "  two-system area (bandit − traditional):  {:+.1}\n",
        rep_b.area_vs(&rep_t).expect("comparable")
    ));
    emit("fig_query_steering.txt", &fig);
}
