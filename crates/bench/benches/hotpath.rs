//! **Hot-path micro/macro suite** for the `--clock wall` work (ISSUE 9).
//!
//! Three layers, finest first:
//!
//! * `last_mile` — the branchless `lower_bound` against
//!   `slice::partition_point` on window sizes typical of a learned
//!   index's final scan (the optimization's smallest observable unit);
//! * `point_probe` / `batched_probe` / `execute_many` — full index
//!   probes (single and `get_many`-batched) and batched SUT dispatch,
//!   the paths the group-prefetch probes and `execute_many` fast paths
//!   actually serve;
//! * `macro_wall` — a whole `Runner` run under `clock = wall`, the user
//!   visible end of the same hot path.
//!
//! Besides the criterion groups, a compact machine-readable summary is
//! written to `target/lsbench-results/BENCH_hotpath.json` so CI can
//! archive one artifact per run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lsbench_bench::emit;
use lsbench_core::runner::{RunOptions, Runner};
use lsbench_core::scenario::ClockMode;
use lsbench_core::suite::{s2_abrupt_shift, SuiteConfig};
use lsbench_core::sut_registry::SutRegistry;
use lsbench_index::search::lower_bound;
use lsbench_index::{btree::BPlusTree, pgm::PgmIndex, rmi::Rmi, spline::RadixSpline};
use lsbench_index::{BulkLoad, Index};
use lsbench_workload::dataset::Dataset;
use lsbench_workload::keygen::{KeyDistribution, KeyGenerator};
use lsbench_workload::ops::Operation;
use std::time::Instant;

const N: usize = 200_000;
const PROBES: usize = 1024;
const WINDOWS: [usize; 3] = [64, 512, 4096];

fn dataset() -> Dataset {
    Dataset::generate(
        KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        0,
        100_000_000,
        N,
        99,
    )
    .expect("dataset builds")
}

fn probe_keys(data: &Dataset) -> Vec<u64> {
    let mut g = KeyGenerator::new(KeyDistribution::Uniform, 0, data.len() as u64, 7)
        .expect("valid generator");
    (0..PROBES)
        .map(|_| data.keys()[g.next_key() as usize])
        .collect()
}

/// Best-of-3 nanoseconds per call for `f` driven over the probe set.
fn best_ns_per_op(mut f: impl FnMut(usize) -> u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut acc = 0u64;
        for i in 0..PROBES * 16 {
            acc = acc.wrapping_add(f(i));
        }
        black_box(acc);
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / (PROBES * 16) as f64);
    }
    best
}

fn bench_last_mile(c: &mut Criterion, json: &mut Vec<String>) {
    let data = dataset();
    let probes = probe_keys(&data);
    let mut group = c.benchmark_group("last_mile_search");
    for window in WINDOWS {
        let keys = &data.keys()[..window];
        let hi = keys[window - 1];
        for (name, branchless) in [("std_partition_point", false), ("branchless", true)] {
            let label = format!("{name}/{window}");
            group.bench_with_input(BenchmarkId::new(name, window), &branchless, |b, &bl| {
                let mut i = 0;
                b.iter(|| {
                    let key = probes[i % PROBES].min(hi);
                    i += 1;
                    if bl {
                        black_box(lower_bound(keys, black_box(key)))
                    } else {
                        black_box(keys.partition_point(|&k| k < black_box(key)))
                    }
                })
            });
            let ns = best_ns_per_op(|i| {
                let key = probes[i % PROBES].min(hi);
                if branchless {
                    lower_bound(keys, key) as u64
                } else {
                    keys.partition_point(|&k| k < key) as u64
                }
            });
            json.push(format!(
                "    {{\"bench\": \"last_mile\", \"variant\": \"{label}\", \"ns_per_op\": {ns:.2}}}"
            ));
        }
    }
    group.finish();
}

fn bench_point_probe(c: &mut Criterion, json: &mut Vec<String>) {
    let data = dataset();
    let pairs: Vec<(u64, u64)> = data.pairs().collect();
    let probes = probe_keys(&data);
    let mut group = c.benchmark_group("point_probe_200k_lognormal");

    let btree = BPlusTree::bulk_load(&pairs).expect("builds");
    let rmi = Rmi::bulk_load(&pairs).expect("builds");
    let pgm = PgmIndex::bulk_load(&pairs).expect("builds");
    let spline = RadixSpline::bulk_load(&pairs).expect("builds");

    macro_rules! probe {
        ($idx:expr, $name:expr) => {
            group.bench_function($name, |b| {
                let mut i = 0;
                b.iter(|| {
                    let k = probes[i % PROBES];
                    i += 1;
                    black_box($idx.get(black_box(k)))
                })
            });
            let ns = best_ns_per_op(|i| $idx.get(probes[i % PROBES]).unwrap_or(0));
            json.push(format!(
                "    {{\"bench\": \"point_probe\", \"variant\": \"{}\", \"ns_per_op\": {:.2}}}",
                $name, ns
            ));
        };
    }
    probe!(btree, "btree");
    probe!(rmi, "rmi");
    probe!(pgm, "pgm");
    probe!(spline, "radix-spline");
    group.finish();

    // The batched probe path (`Index::get_many`) against a loop of
    // single `get`s: the group descent / lockstep-search payoff in
    // isolation, before any SUT dispatch enters the picture.
    let mut group = c.benchmark_group("batched_probe_200k_lognormal");
    macro_rules! probe_many {
        ($idx:expr, $name:expr) => {
            group.bench_function($name, |b| {
                let mut out: Vec<Option<u64>> = Vec::with_capacity(PROBES);
                b.iter(|| {
                    out.clear();
                    $idx.get_many(black_box(&probes), &mut out);
                    black_box(out.len())
                })
            });
            let mut out: Vec<Option<u64>> = Vec::with_capacity(PROBES);
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = Instant::now();
                for _ in 0..16 {
                    out.clear();
                    $idx.get_many(&probes, &mut out);
                    black_box(out.len());
                }
                best = best.min(t0.elapsed().as_secs_f64() * 1e9 / (16 * PROBES) as f64);
            }
            json.push(format!(
                "    {{\"bench\": \"batched_probe\", \"variant\": \"{}\", \"ns_per_op\": {:.2}}}",
                $name, best
            ));
        };
    }
    probe_many!(btree, "btree");
    probe_many!(rmi, "rmi");
    probe_many!(spline, "radix-spline");
    group.finish();
}

fn bench_execute_many(c: &mut Criterion, json: &mut Vec<String>) {
    let data = dataset();
    let probes = probe_keys(&data);
    let registry = SutRegistry::default();
    let mut group = c.benchmark_group("execute_many_batch");
    group.sample_size(20);
    for sut_name in ["btree", "rmi", "spline", "alex"] {
        for batch in [1usize, 64, 512] {
            let mut sut = registry.build(sut_name, &data).expect("SUT builds");
            let ops: Vec<Operation> = probes
                .iter()
                .take(batch)
                .map(|&key| Operation::Read { key })
                .collect();
            let label = format!("{sut_name}/{batch}");
            group.bench_with_input(BenchmarkId::new(sut_name, batch), &batch, |b, _| {
                b.iter(|| black_box(sut.execute_many(black_box(&ops))))
            });
            let mut sut2 = registry.build(sut_name, &data).expect("SUT builds");
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = Instant::now();
                for _ in 0..64 {
                    black_box(sut2.execute_many(&ops));
                }
                best = best.min(t0.elapsed().as_secs_f64() * 1e9 / (64 * batch) as f64);
            }
            json.push(format!(
                "    {{\"bench\": \"execute_many\", \"variant\": \"{label}\", \"ns_per_op\": {best:.2}}}"
            ));
        }
    }
    group.finish();
}

fn bench_macro_wall(c: &mut Criterion, json: &mut Vec<String>) {
    let scenario = s2_abrupt_shift(&SuiteConfig {
        dataset_size: 20_000,
        ops_per_phase: 4_000,
        ..SuiteConfig::default()
    })
    .expect("valid scenario");
    let registry = SutRegistry::default();
    let mut group = c.benchmark_group("macro_wall_run");
    group.sample_size(10);
    for sut in ["btree", "rmi"] {
        group.bench_function(sut, |b| {
            b.iter(|| {
                let factory = registry.factory(sut).expect("known SUT");
                Runner::from_factory(factory)
                    .config(RunOptions {
                        clock: ClockMode::Wall,
                        ..RunOptions::default()
                    })
                    .run(&scenario)
                    .expect("wall run")
            })
        });
        let factory = registry.factory(sut).expect("known SUT");
        let outcome = Runner::from_factory(factory)
            .config(RunOptions {
                clock: ClockMode::Wall,
                ..RunOptions::default()
            })
            .run(&scenario)
            .expect("wall run");
        let wall = outcome.wall.expect("wall stats");
        json.push(format!(
            "    {{\"bench\": \"macro_wall\", \"variant\": \"{sut}\", \"wall_ops_per_s\": {:.0}, \"ops\": {}}}",
            wall.throughput, wall.ops
        ));
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    let mut json = Vec::new();
    bench_last_mile(c, &mut json);
    bench_point_probe(c, &mut json);
    bench_execute_many(c, &mut json);
    bench_macro_wall(c, &mut json);
    let body = format!(
        "{{\n  \"suite\": \"hotpath\",\n  \"results\": [\n{}\n  ]\n}}\n",
        json.join(",\n")
    );
    emit("BENCH_hotpath.json", &body);
}

criterion_group!(hotpath, benches);
criterion_main!(hotpath);
