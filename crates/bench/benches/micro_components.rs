//! **M1 (cont.) — microbenches**: cost of the benchmark's own machinery —
//! metric computations (KS, MMD, box plots) and workload generation — to
//! show the framework overhead is negligible relative to the systems it
//! measures.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lsbench_stats::descriptive::BoxPlot;
use lsbench_stats::histogram::LatencyHistogram;
use lsbench_stats::ks::ks_statistic;
use lsbench_stats::mmd::mmd_rbf;
use lsbench_workload::keygen::{KeyDistribution, KeyGenerator};
use lsbench_workload::ops::OperationMix;
use lsbench_workload::phases::{PhasedWorkload, TransitionKind, WorkloadPhase};

fn bench_metrics(c: &mut Criterion) {
    let mut g =
        KeyGenerator::new(KeyDistribution::Uniform, 0, 1_000_000, 1).expect("valid generator");
    let a = g.sample_f64(4096);
    let b = g.sample_f64(4096);
    let small_a: Vec<f64> = a.iter().take(256).copied().collect();
    let small_b: Vec<f64> = b.iter().take(256).copied().collect();

    let mut group = c.benchmark_group("metrics");
    group.bench_function("ks_4096", |bch| {
        bch.iter(|| black_box(ks_statistic(&a, &b).expect("valid input")))
    });
    group.bench_function("mmd_256", |bch| {
        bch.iter(|| black_box(mmd_rbf(&small_a, &small_b, Some(1000.0)).expect("valid input")))
    });
    group.bench_function("boxplot_4096", |bch| {
        bch.iter(|| black_box(BoxPlot::of(&a).expect("valid input")))
    });
    group.bench_function("latency_histogram_record", |bch| {
        let mut h = LatencyHistogram::new();
        let mut i = 0u64;
        bch.iter(|| {
            i = i.wrapping_add(2654435761);
            h.record(black_box(i % 1_000_000));
        })
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    let mut zipf = KeyGenerator::new(KeyDistribution::Zipf { theta: 0.99 }, 0, 10_000_000, 2)
        .expect("valid generator");
    group.bench_function("zipf_key", |b| b.iter(|| black_box(zipf.next_key())));
    let mut uniform =
        KeyGenerator::new(KeyDistribution::Uniform, 0, 10_000_000, 3).expect("valid generator");
    group.bench_function("uniform_key", |b| b.iter(|| black_box(uniform.next_key())));

    group.bench_function("phased_stream_10k_ops", |b| {
        let workload = PhasedWorkload::new(
            vec![
                WorkloadPhase::new(
                    "a",
                    KeyDistribution::Uniform,
                    (0, 1_000_000),
                    OperationMix::ycsb_a(),
                    5_000,
                ),
                WorkloadPhase::new(
                    "b",
                    KeyDistribution::Zipf { theta: 1.1 },
                    (0, 1_000_000),
                    OperationMix::ycsb_e(),
                    5_000,
                ),
            ],
            vec![TransitionKind::Gradual { window: 0.3 }],
            4,
        )
        .expect("valid workload");
        b.iter(|| {
            let stream = workload.stream().expect("stream builds");
            black_box(stream.count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_metrics, bench_generation);
criterion_main!(benches);
