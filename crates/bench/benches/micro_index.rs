//! **M1 — microbenches**: wall-clock performance of every index structure.
//!
//! Unlike the figure benches (virtual clock, deterministic), these measure
//! the real data structures in real time: point lookups across
//! distributions, bulk-load/build cost, and learned sort vs. `sort_unstable`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lsbench_index::alex::AlexIndex;
use lsbench_index::btree::BPlusTree;
use lsbench_index::hash::HashIndex;
use lsbench_index::learned_sort::learned_sort;
use lsbench_index::pgm::PgmIndex;
use lsbench_index::rmi::Rmi;
use lsbench_index::sorted_array::SortedArray;
use lsbench_index::spline::RadixSpline;
use lsbench_index::{BulkLoad, Index};
use lsbench_workload::dataset::Dataset;
use lsbench_workload::keygen::{KeyDistribution, KeyGenerator};

const N: usize = 1_000_000;
const PROBES: usize = 1024;

fn dataset() -> Dataset {
    Dataset::generate(
        KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        0,
        100_000_000,
        N,
        99,
    )
    .expect("dataset builds")
}

fn probe_keys(data: &Dataset) -> Vec<u64> {
    let mut g = KeyGenerator::new(KeyDistribution::Uniform, 0, data.len() as u64, 7)
        .expect("valid generator");
    (0..PROBES)
        .map(|_| data.keys()[g.next_key() as usize])
        .collect()
}

fn bench_lookups(c: &mut Criterion) {
    let data = dataset();
    let pairs: Vec<(u64, u64)> = data.pairs().collect();
    let probes = probe_keys(&data);
    let mut group = c.benchmark_group("point_lookup_1M_lognormal");

    let btree = BPlusTree::bulk_load(&pairs).expect("builds");
    let sorted = SortedArray::bulk_load(&pairs).expect("builds");
    let hash = HashIndex::bulk_load(&pairs).expect("builds");
    let rmi = Rmi::bulk_load(&pairs).expect("builds");
    let pgm = PgmIndex::bulk_load(&pairs).expect("builds");
    let spline = RadixSpline::bulk_load(&pairs).expect("builds");
    let alex = AlexIndex::bulk_load(&pairs).expect("builds");

    macro_rules! bench_index {
        ($idx:expr, $name:expr) => {
            group.bench_function($name, |b| {
                let mut i = 0;
                b.iter(|| {
                    let k = probes[i % PROBES];
                    i += 1;
                    black_box($idx.get(black_box(k)))
                })
            });
        };
    }
    bench_index!(btree, "btree");
    bench_index!(sorted, "sorted-array");
    bench_index!(hash, "hash");
    bench_index!(rmi, "rmi");
    bench_index!(pgm, "pgm");
    bench_index!(spline, "radix-spline");
    bench_index!(alex, "alex");
    group.finish();
}

fn bench_builds(c: &mut Criterion) {
    let data = dataset();
    let pairs: Vec<(u64, u64)> = data.pairs().collect();
    let mut group = c.benchmark_group("bulk_build_1M");
    group.sample_size(10);
    group.bench_function("btree", |b| {
        b.iter(|| black_box(BPlusTree::bulk_load(&pairs).expect("builds")))
    });
    group.bench_function("rmi", |b| {
        b.iter(|| black_box(Rmi::bulk_load(&pairs).expect("builds")))
    });
    group.bench_function("pgm", |b| {
        b.iter(|| black_box(PgmIndex::bulk_load(&pairs).expect("builds")))
    });
    group.bench_function("radix-spline", |b| {
        b.iter(|| black_box(RadixSpline::bulk_load(&pairs).expect("builds")))
    });
    group.finish();
}

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_100k");
    group.sample_size(10);
    let keys: Vec<u64> = {
        let mut g = KeyGenerator::new(KeyDistribution::Uniform, 0, u64::MAX / 2, 3)
            .expect("valid generator");
        g.take(100_000)
    };
    group.bench_function("btree", |b| {
        b.iter(|| {
            let mut idx = BPlusTree::new();
            for &k in &keys {
                idx.insert(k, k).expect("insert succeeds");
            }
            black_box(idx.len())
        })
    });
    group.bench_function("alex", |b| {
        b.iter(|| {
            let mut idx = AlexIndex::new();
            for &k in &keys {
                idx.insert(k, k).expect("insert succeeds");
            }
            black_box(idx.len())
        })
    });
    group.finish();
}

fn bench_learned_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort_1M");
    group.sample_size(10);
    let mut g =
        KeyGenerator::new(KeyDistribution::Uniform, 0, u64::MAX, 5).expect("valid generator");
    let data: Vec<u64> = g.take(1_000_000);
    for (name, learned) in [("std_unstable", false), ("learned_cdf", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &learned, |b, &l| {
            b.iter(|| {
                let mut copy = data.clone();
                if l {
                    learned_sort(&mut copy, 1);
                } else {
                    copy.sort_unstable();
                }
                black_box(copy[0])
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lookups,
    bench_builds,
    bench_inserts,
    bench_learned_sort
);
criterion_main!(benches);
