//! **Q1 — §V-C**: the dataset/workload quality-scoring tool.
//!
//! "This tool could attribute low marks to uniform data distributions and
//! workloads while favoring datasets exhibiting skew or varying query
//! load." The bench scores every generator family plus steady/diurnal/
//! bursty load shapes and prints the ranking.
//!
//! Expected shape: uniform ranks last; heavy zipf/hotspot/clustered rank
//! high; adding diurnal or bursty load lifts any distribution's score.

use lsbench_bench::emit;
use lsbench_core::report::{series_csv, write_artifact};
use lsbench_workload::arrival::{ArrivalGenerator, ArrivalProcess, LoadModulation};
use lsbench_workload::keygen::{KeyDistribution, KeyGenerator};
use lsbench_workload::quality::{score_dataset, score_workload};
use lsbench_workload::stringkey::{string_key_to_u64, EmailGenerator};

const SAMPLES: usize = 30_000;

fn keys_of(dist: &KeyDistribution, seed: u64) -> Vec<f64> {
    KeyGenerator::new(dist.clone(), 0, 10_000_000, seed)
        .expect("valid distribution")
        .sample_f64(SAMPLES)
}

/// Per-interval op counts for an arrival process over 100 intervals.
fn load_shape(modulation: LoadModulation) -> Vec<usize> {
    let mut gen = ArrivalGenerator::new(ArrivalProcess::Poisson { rate: 500.0 }, modulation, 5)
        .expect("valid arrival process");
    let mut counts = vec![0usize; 100];
    loop {
        let t = gen.next_arrival();
        if t >= 100.0 {
            break;
        }
        counts[t as usize] += 1;
    }
    counts
}

fn main() {
    println!("=== Q1: dataset/workload quality scores (§V-C tool) ===\n");
    let distributions = vec![
        ("uniform", KeyDistribution::Uniform),
        (
            "seq-noise(0.01)",
            KeyDistribution::SequentialNoise { noise_frac: 0.01 },
        ),
        ("zipf(0.8)", KeyDistribution::Zipf { theta: 0.8 }),
        ("zipf(1.3)", KeyDistribution::Zipf { theta: 1.3 }),
        (
            "normal(0.5, 0.1)",
            KeyDistribution::Normal {
                center: 0.5,
                std_frac: 0.1,
            },
        ),
        (
            "lognormal(0, 1.2)",
            KeyDistribution::LogNormal {
                mu: 0.0,
                sigma: 1.2,
            },
        ),
        (
            "hotspot(5%/95%)",
            KeyDistribution::Hotspot {
                hot_span: 0.05,
                hot_fraction: 0.95,
            },
        ),
        (
            "clustered(4, 0.01)",
            KeyDistribution::Clustered {
                clusters: 4,
                cluster_std_frac: 0.01,
            },
        ),
    ];

    let mut fig = String::from(
        "Dataset quality (data only)\n  distribution          skew   clustering  overall\n",
    );
    let mut rows: Vec<(String, f64)> = Vec::new();
    for (name, dist) in &distributions {
        let r = score_dataset(&keys_of(dist, 31));
        fig.push_str(&format!(
            "  {:<20} {:>6.3}   {:>8.3}   {:>7.3}\n",
            name, r.skew_score, r.clustering_score, r.overall
        ));
        rows.push((name.to_string(), r.overall));
    }

    // Email keys (the paper's synthetic-substitution example).
    let emails = EmailGenerator::new(33).take(SAMPLES);
    let email_keys: Vec<f64> = emails.iter().map(|e| string_key_to_u64(e) as f64).collect();
    let r = score_dataset(&email_keys);
    fig.push_str(&format!(
        "  {:<20} {:>6.3}   {:>8.3}   {:>7.3}\n",
        "email-addresses", r.skew_score, r.clustering_score, r.overall
    ));

    fig.push_str("\nWorkload quality (zipf(1.3) keys × load shape)\n");
    fig.push_str("  load shape            load-variation  overall\n");
    let zipf_keys = keys_of(&KeyDistribution::Zipf { theta: 1.3 }, 31);
    for (name, modulation) in [
        ("steady", LoadModulation::Constant),
        (
            "diurnal",
            LoadModulation::Diurnal {
                period: 25.0,
                amplitude: 0.8,
            },
        ),
        (
            "bursty",
            LoadModulation::Burst {
                period: 20.0,
                burst_len: 2.0,
                multiplier: 8.0,
            },
        ),
    ] {
        let loads = load_shape(modulation);
        let r = score_workload(&zipf_keys, &loads);
        fig.push_str(&format!(
            "  {:<20} {:>10.3}      {:>7.3}\n",
            name, r.load_variation_score, r.overall
        ));
    }

    // Ranking check line.
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    fig.push_str("\nRanking (best benchmark material first):\n");
    for (name, score) in &rows {
        fig.push_str(&format!("  {score:>6.3}  {name}\n"));
    }
    emit("quality_scores.txt", &fig);
    let csv_rows: Vec<(f64, f64)> = rows
        .iter()
        .enumerate()
        .map(|(i, &(_, s))| (i as f64, s))
        .collect();
    let _ = write_artifact(
        "quality_scores.csv",
        &series_csv(("rank", "score"), &csv_rows),
    );
}
