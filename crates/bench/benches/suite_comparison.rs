//! **Suite — the "official result"**: every KV SUT through the standard
//! five-scenario suite, with per-scenario SLA calibration from the B+-tree
//! baseline and the S1 hold-out pass.
//!
//! This is the §V-A "benchmark-as-a-service" artifact: one table that a
//! result submission would consist of.

use lsbench_bench::emit;
use lsbench_core::report::{to_json, write_artifact};
use lsbench_core::suite::{render_comparison, run_suite, SuiteConfig, SuiteResult};
use lsbench_core::BenchError;
use lsbench_sut::kv::{
    AlexSut, BTreeSut, HashSut, PgmSut, RetrainPolicy, RmiSut, SortedArraySut, SplineSut,
};
use lsbench_sut::sut::SystemUnderTest;
use lsbench_workload::dataset::Dataset;
use lsbench_workload::ops::Operation;

type BoxSut = Box<dyn SystemUnderTest<Operation> + Send>;

fn sut_err(e: impl std::fmt::Display) -> BenchError {
    BenchError::Sut(e.to_string())
}

fn main() {
    let cfg = SuiteConfig {
        dataset_size: 100_000,
        ops_per_phase: 10_000,
        seed: 0x5EED,
        work_units_per_second: 1_000_000.0,
        threads: 1,
    };
    println!("=== Standard suite: 5 scenarios × 7 SUTs ===\n");

    type Factory = Box<dyn FnMut(&Dataset) -> lsbench_core::Result<BoxSut>>;
    let factories: Vec<(&str, Factory)> = vec![
        (
            "btree",
            Box::new(|d: &Dataset| Ok(Box::new(BTreeSut::build(d).map_err(sut_err)?) as BoxSut)),
        ),
        (
            "sorted-array",
            Box::new(|d: &Dataset| {
                Ok(Box::new(SortedArraySut::build(d).map_err(sut_err)?) as BoxSut)
            }),
        ),
        (
            "hash",
            Box::new(|d: &Dataset| Ok(Box::new(HashSut::build(d).map_err(sut_err)?) as BoxSut)),
        ),
        (
            "alex",
            Box::new(|d: &Dataset| Ok(Box::new(AlexSut::build(d).map_err(sut_err)?) as BoxSut)),
        ),
        (
            "rmi+retrain",
            Box::new(|d: &Dataset| {
                Ok(Box::new(
                    RmiSut::build("rmi+retrain", d, RetrainPolicy::DeltaFraction(0.05))
                        .map_err(sut_err)?,
                ) as BoxSut)
            }),
        ),
        (
            "pgm+retrain",
            Box::new(|d: &Dataset| {
                Ok(Box::new(
                    PgmSut::build("pgm+retrain", d, RetrainPolicy::DeltaFraction(0.05))
                        .map_err(sut_err)?,
                ) as BoxSut)
            }),
        ),
        (
            "spline+retrain",
            Box::new(|d: &Dataset| {
                Ok(Box::new(
                    SplineSut::build("spline+retrain", d, RetrainPolicy::DeltaFraction(0.05))
                        .map_err(sut_err)?,
                ) as BoxSut)
            }),
        ),
    ];

    let mut results: Vec<SuiteResult> = Vec::new();
    for (name, mut factory) in factories {
        print!("running {name} ... ");
        let result = run_suite(&mut factory, &cfg).expect("suite run succeeds");
        println!("done");
        results.push(result);
    }
    println!();
    emit("suite_comparison.txt", &render_comparison(&results));
    let _ = write_artifact(
        "suite_comparison.json",
        &to_json(&results).expect("serializable"),
    );
}
