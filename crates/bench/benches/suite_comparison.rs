//! **Suite — the "official result"**: every registered KV SUT through the
//! standard five-scenario suite, with per-scenario SLA calibration from
//! the B+-tree baseline and the S1 hold-out pass.
//!
//! This is the §V-A "benchmark-as-a-service" artifact: one table that a
//! result submission would consist of. The SUT roster comes from
//! [`SutRegistry`] — the same names `lsbench list` prints — so this bench
//! stays in lockstep with the CLI.

use lsbench_bench::emit;
use lsbench_core::report::{to_json, write_artifact};
use lsbench_core::suite::{render_comparison, run_suite, SuiteConfig, SuiteResult};
use lsbench_core::sut_registry::SutRegistry;

fn main() {
    let cfg = SuiteConfig {
        dataset_size: 100_000,
        ops_per_phase: 10_000,
        seed: 0x5EED,
        work_units_per_second: 1_000_000.0,
        threads: 1,
    };
    let registry = SutRegistry::default();
    println!(
        "=== Standard suite: 5 scenarios × {} SUTs ===\n",
        registry.names().len()
    );

    let mut results: Vec<SuiteResult> = Vec::new();
    for name in registry.names() {
        print!("running {name} ... ");
        let factory = registry.factory(name).expect("registered");
        let result = run_suite(factory, &cfg).expect("suite run succeeds");
        println!("done");
        results.push(result);
    }
    println!();
    emit("suite_comparison.txt", &render_comparison(&results));
    let _ = write_artifact(
        "suite_comparison.json",
        &to_json(&results).expect("serializable"),
    );
}
