//! Shared setup for the figure-regeneration benches.
//!
//! Every figure bench (see `benches/`) uses the same substrate: a skewed
//! (log-normal) dataset whose learned-index fit quality *varies across the
//! key space* — dense regions model well, sparse tail regions poorly — so
//! access-distribution changes genuinely move per-query cost, as in the
//! paper's sketches.

#![warn(missing_docs)]

use lsbench_core::report::write_artifact;
use lsbench_core::scenario::DatasetSpec;
use lsbench_workload::dataset::Dataset;
use lsbench_workload::keygen::KeyDistribution;

/// The shared key range of all figure scenarios.
pub const KEY_RANGE: (u64, u64) = (0, 10_000_000);

/// Standard dataset: log-normal keys (dense head, sparse tail).
pub fn standard_dataset(size: usize, seed: u64) -> Dataset {
    DatasetSpec {
        distribution: KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        key_range: KEY_RANGE,
        size,
        seed,
    }
    .build()
    .expect("dataset generation cannot fail for valid spec")
}

/// The distribution ladder used by the specialization figure: baseline
/// first, increasingly different distributions after.
pub fn distribution_ladder() -> Vec<KeyDistribution> {
    vec![
        KeyDistribution::Uniform,
        KeyDistribution::Zipf { theta: 0.8 },
        KeyDistribution::Zipf { theta: 1.3 },
        KeyDistribution::Normal {
            center: 0.5,
            std_frac: 0.08,
        },
        KeyDistribution::Hotspot {
            hot_span: 0.05,
            hot_fraction: 0.95,
        },
        KeyDistribution::Clustered {
            clusters: 4,
            cluster_std_frac: 0.01,
        },
    ]
}

/// Prints a figure to stdout and also writes it under
/// `target/lsbench-results/`.
pub fn emit(name: &str, contents: &str) {
    println!("{contents}");
    match write_artifact(name, contents) {
        Ok(path) => println!("[saved {}]\n", path.display()),
        Err(e) => eprintln!("[warn] could not save {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_skewed() {
        let d = standard_dataset(10_000, 1);
        assert_eq!(d.len(), 10_000);
        // Log-normal: more than half the keys in the bottom 20% of the range.
        let low = d.keys().iter().filter(|&&k| k < KEY_RANGE.1 / 5).count();
        assert!(low > 5_000, "low = {low}");
    }

    #[test]
    fn ladder_is_valid() {
        for d in distribution_ladder() {
            d.validate().unwrap();
        }
    }
}
