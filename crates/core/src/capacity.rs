//! The SLA capacity search: how much load can a system take before its
//! tail latency breaks the agreement?
//!
//! A learned index that is 2× faster at light load but collapses 10×
//! earlier under pressure is not "faster" — the honest comparison is the
//! *maximum sustainable arrival rate* under a latency SLA (the knee of
//! the throughput–latency curve). This module finds that knee with a
//! bracketing binary search over open-loop probe runs:
//!
//! 1. **Bracket** — starting from [`CapacityConfig::initial_rate`], the
//!    rate doubles while the SLA is met and halves while it is violated,
//!    until one met rate (`lo`) and one violated rate (`hi`) bracket the
//!    knee.
//! 2. **Bisect** — the bracket shrinks by rate bisection until it is
//!    within [`CapacityConfig::tolerance`] (relative) or the probe budget
//!    runs out. Every probe lands in the report, so the output doubles as
//!    a throughput–latency curve.
//!
//! The search is *structurally monotone* regardless of probe behavior:
//! `lo` only ever takes values below every violated rate observed so far,
//! so the reported [`CapacityReport::knee_rate`] can never exceed any
//! rate the search saw violate the SLA — property-tested below against
//! adversarially noisy probes.
//!
//! [`capacity_search`] is generic over the probe (a closure from arrival
//! rate to [`CapacityPoint`]), so the same engine drives in-process SUTs,
//! [`RemoteSut`](crate::wire::RemoteSut) endpoints, and the synthetic
//! probes the tests use. The CLI builds probes that clone the base
//! scenario, substitute the arrival rate ([`with_arrival_rate`]), and run
//! it in [`ExecutionMode::OpenLoop`](crate::runner::ExecutionMode) on a
//! fresh SUT.

use crate::record::RunRecord;
use crate::runner::EngineStats;
use crate::scenario::{ArrivalSpec, Scenario};
use crate::{BenchError, Result};
use lsbench_workload::arrival::{ArrivalProcess, LoadModulation};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A latency SLA: "the `quantile` latency must not exceed
/// `threshold_seconds`". Parsed from the CLI `pNN:MS` syntax (`p99:5` =
/// 99th percentile at most 5 milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaTarget {
    /// Latency quantile in (0, 1), e.g. `0.99`.
    pub quantile: f64,
    /// Threshold in (virtual) seconds, e.g. `0.005`.
    pub threshold_seconds: f64,
}

impl SlaTarget {
    /// Parses the CLI syntax `pNN:MS`: a quantile tagged `p` (percent,
    /// fractional allowed — `p99.9`) and a threshold in milliseconds,
    /// separated by a colon. Examples: `p99:5`, `p50:0.5`, `p99.9:20`.
    pub fn parse(s: &str) -> Result<Self> {
        let bad = |why: &str| {
            BenchError::InvalidScenario(format!(
                "invalid SLA '{s}': {why} (expected pNN:MS, e.g. p99:5 for p99 <= 5ms)"
            ))
        };
        let (quant, thresh) = s.split_once(':').ok_or_else(|| bad("missing ':'"))?;
        let percent = quant
            .strip_prefix(['p', 'P'])
            .ok_or_else(|| bad("quantile must start with 'p'"))?
            .parse::<f64>()
            .map_err(|_| bad("quantile is not a number"))?;
        if !(percent > 0.0 && percent < 100.0) {
            return Err(bad("quantile percent must be in (0, 100)"));
        }
        let threshold_ms = thresh
            .parse::<f64>()
            .map_err(|_| bad("threshold is not a number"))?;
        if !(threshold_ms > 0.0 && threshold_ms.is_finite()) {
            return Err(bad("threshold must be a positive number of milliseconds"));
        }
        Ok(SlaTarget {
            quantile: percent / 100.0,
            threshold_seconds: threshold_ms / 1000.0,
        })
    }

    /// Human-readable form, e.g. `p99 <= 5ms`.
    pub fn describe(&self) -> String {
        format!(
            "p{} <= {}ms",
            self.quantile * 100.0,
            self.threshold_seconds * 1000.0
        )
    }
}

/// One probe of the capacity search: a full open-loop run at a fixed
/// arrival rate, reduced to the numbers the knee decision needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityPoint {
    /// Offered arrival rate (ops per virtual second).
    pub rate: f64,
    /// The SLA quantile's observed latency at this rate (virtual seconds,
    /// coordinated-omission-safe: measured from intended arrival).
    pub latency_seconds: f64,
    /// Achieved completion throughput (completed ops per virtual second
    /// of execution).
    pub throughput: f64,
    /// Operations completed by the probe run.
    pub completed: usize,
    /// Whether this probe met the SLA.
    pub met: bool,
}

impl CapacityPoint {
    /// Reduces a finished open-loop run to a probe point: the SLA
    /// quantile from the engine's merged latency histogram (nanoseconds →
    /// seconds), throughput over the execution window, and the met/
    /// violated verdict against `sla`.
    pub fn from_run(
        rate: f64,
        sla: &SlaTarget,
        engine: &EngineStats,
        record: &RunRecord,
    ) -> Result<Self> {
        let latency_ns = engine
            .latency
            .quantile(sla.quantile)
            .map_err(|e| BenchError::Metric(format!("SLA quantile: {e}")))?;
        let latency_seconds = latency_ns as f64 / 1e9;
        let window = record.exec_end - record.exec_start;
        let throughput = if window > 0.0 {
            record.ops.len() as f64 / window
        } else {
            0.0
        };
        Ok(CapacityPoint {
            rate,
            latency_seconds,
            throughput,
            completed: record.ops.len(),
            met: latency_seconds <= sla.threshold_seconds,
        })
    }
}

/// Tuning for [`capacity_search`]. `Default` is a sensible CLI setting:
/// start at 1000 ops/s, at most 12 probes, stop when the bracket is
/// within 5% of the knee.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityConfig {
    /// The SLA every probe is judged against.
    pub sla: SlaTarget,
    /// First rate to probe (ops per virtual second).
    pub initial_rate: f64,
    /// Hard cap on probe runs (bracketing + bisection combined).
    pub max_probes: usize,
    /// Relative bracket width at which bisection stops:
    /// `(hi - lo) <= tolerance * hi`.
    pub tolerance: f64,
}

impl Default for CapacityConfig {
    fn default() -> Self {
        CapacityConfig {
            sla: SlaTarget {
                quantile: 0.99,
                threshold_seconds: 0.005,
            },
            initial_rate: 1000.0,
            max_probes: 12,
            tolerance: 0.05,
        }
    }
}

/// The search result: every probe in order (the throughput–latency
/// curve) plus the knee. Serialized inside
/// [`CapacityArtifact`](crate::results::CapacityArtifact).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityReport {
    /// The SLA the search ran against.
    pub sla: SlaTarget,
    /// All probes, in the order the search ran them.
    pub points: Vec<CapacityPoint>,
    /// Maximum arrival rate observed to meet the SLA (`0.0` if even the
    /// smallest probed rate violated it).
    pub knee_rate: f64,
    /// Whether the search actually found the saturation point: `true`
    /// when at least one probed rate violated the SLA, `false` when the
    /// probe budget ran out with every rate still meeting it (the knee is
    /// then only a lower bound).
    pub saturated: bool,
}

/// Runs the bracketing binary search. `probe` maps an arrival rate to a
/// [`CapacityPoint`]; the search trusts the point's `met` verdict and
/// records every point in the report.
///
/// Structural guarantee (holds for *any* probe, even a noisy or
/// inconsistent one): the reported `knee_rate` is strictly below every
/// rate the search observed violating the SLA.
pub fn capacity_search<F>(config: &CapacityConfig, mut probe: F) -> Result<CapacityReport>
where
    F: FnMut(f64) -> Result<CapacityPoint>,
{
    if !(config.initial_rate > 0.0 && config.initial_rate.is_finite()) {
        return Err(BenchError::InvalidScenario(
            "capacity initial rate must be positive and finite".to_string(),
        ));
    }
    if config.max_probes < 2 {
        return Err(BenchError::InvalidScenario(
            "capacity search needs at least 2 probes".to_string(),
        ));
    }
    if !(config.tolerance > 0.0 && config.tolerance.is_finite()) {
        return Err(BenchError::InvalidScenario(
            "capacity tolerance must be positive and finite".to_string(),
        ));
    }

    let mut points = Vec::new();
    let mut lo = 0.0_f64; // highest rate seen meeting the SLA
    let mut lo_found = false;
    let mut hi = f64::INFINITY; // lowest rate seen violating the SLA
    let mut budget = config.max_probes;

    // Bracket: geometric walk until one met and one violated rate exist.
    // Doubling only happens while nothing has violated yet and halving
    // only while nothing has met yet, so `lo < hi` is invariant.
    let mut rate = config.initial_rate;
    while budget > 0 {
        budget -= 1;
        let point = probe(rate)?;
        let met = point.met;
        points.push(point);
        if met {
            lo = lo.max(rate);
            lo_found = true;
        } else {
            hi = hi.min(rate);
        }
        if lo_found && hi.is_finite() {
            break;
        }
        rate = if met { rate * 2.0 } else { rate / 2.0 };
        if !rate.is_finite() || rate <= f64::MIN_POSITIVE {
            break; // the workload never saturates (or never starts)
        }
    }

    // Bisect: shrink the bracket. `mid` is strictly inside (lo, hi), so
    // updating either end keeps lo below every violated rate.
    while budget > 0 && lo_found && hi.is_finite() && (hi - lo) > config.tolerance * hi {
        let mid = 0.5 * (lo + hi);
        if !(mid > lo && mid < hi) {
            break; // bracket exhausted f64 resolution
        }
        budget -= 1;
        let point = probe(mid)?;
        let met = point.met;
        points.push(point);
        if met {
            lo = mid;
        } else {
            hi = mid;
        }
    }

    Ok(CapacityReport {
        sla: config.sla,
        points,
        knee_rate: if lo_found { lo } else { 0.0 },
        saturated: hi.is_finite(),
    })
}

/// Clones `base` with its arrival process replaced by a Poisson process
/// at `rate`. Modulation and arrival seed are preserved when the base
/// scenario already has an `[arrival]` section; otherwise the arrival is
/// synthesized with constant modulation, seeded from the workload seed so
/// probes stay deterministic.
pub fn with_arrival_rate(base: &Scenario, rate: f64) -> Scenario {
    let mut scenario = base.clone();
    scenario.arrival = Some(match &base.arrival {
        Some(arrival) => ArrivalSpec {
            process: ArrivalProcess::Poisson { rate },
            modulation: arrival.modulation,
            seed: arrival.seed,
        },
        None => ArrivalSpec {
            process: ArrivalProcess::Poisson { rate },
            modulation: LoadModulation::Constant,
            seed: base.workload.seed(),
        },
    });
    scenario
}

/// Renders a capacity report as an aligned plain-text table (rate,
/// quantile latency, throughput, verdict) with the knee line under it —
/// the `lsbench capacity` terminal output.
pub fn render_capacity_report(report: &CapacityReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "capacity search (SLA {})", report.sla.describe());
    let _ = writeln!(
        out,
        "{:>14}  {:>14}  {:>14}  {:>9}  verdict",
        "rate(ops/s)", "latency(ms)", "tput(ops/s)", "completed"
    );
    let mut sorted: Vec<&CapacityPoint> = report.points.iter().collect();
    sorted.sort_by(|a, b| a.rate.total_cmp(&b.rate));
    for p in sorted {
        let _ = writeln!(
            out,
            "{:>14.2}  {:>14.4}  {:>14.2}  {:>9}  {}",
            p.rate,
            p.latency_seconds * 1000.0,
            p.throughput,
            p.completed,
            if p.met { "met" } else { "VIOLATED" }
        );
    }
    if report.knee_rate > 0.0 {
        let _ = writeln!(
            out,
            "knee: {:.2} ops/s{}",
            report.knee_rate,
            if report.saturated {
                ""
            } else {
                " (lower bound: probe budget ran out before saturation)"
            }
        );
    } else {
        let _ = writeln!(out, "knee: none — every probed rate violated the SLA");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_point(rate: f64, capacity: f64) -> CapacityPoint {
        // A queueing-flavored latency curve: flat below capacity, blowing
        // up as the rate approaches it.
        let latency = if rate >= capacity {
            1.0
        } else {
            0.001 / (1.0 - rate / capacity)
        };
        CapacityPoint {
            rate,
            latency_seconds: latency,
            throughput: rate.min(capacity),
            completed: 10_000,
            met: latency <= 0.005,
        }
    }

    #[test]
    fn sla_parse_accepts_the_cli_syntax_and_rejects_garbage() {
        let sla = SlaTarget::parse("p99:5").unwrap();
        assert_eq!(sla.quantile, 0.99);
        assert_eq!(sla.threshold_seconds, 0.005);
        let fine = SlaTarget::parse("p99.9:0.5").unwrap();
        assert!((fine.quantile - 0.999).abs() < 1e-12);
        assert_eq!(fine.threshold_seconds, 0.0005);
        assert_eq!(SlaTarget::parse("P50:20").unwrap().quantile, 0.5);
        for bad in [
            "", "p99", "99:5", "p0:5", "p100:5", "p99:-1", "p99:x", "px:5",
        ] {
            assert!(SlaTarget::parse(bad).is_err(), "{bad:?} must be rejected");
        }
        assert_eq!(SlaTarget::parse("p99:5").unwrap().describe(), "p99 <= 5ms");
    }

    #[test]
    fn search_brackets_and_bisects_to_the_knee() {
        let capacity = 37_500.0;
        let config = CapacityConfig {
            initial_rate: 1000.0,
            max_probes: 20,
            tolerance: 0.01,
            ..CapacityConfig::default()
        };
        let report = capacity_search(&config, |rate| Ok(synthetic_point(rate, capacity))).unwrap();
        assert!(report.saturated);
        // The synthetic curve crosses 5ms at capacity * (1 - 0.001/0.005).
        let true_knee = capacity * (1.0 - 0.001 / 0.005);
        assert!(
            report.knee_rate <= true_knee,
            "knee {} must not exceed the true knee {true_knee}",
            report.knee_rate
        );
        assert!(
            report.knee_rate >= true_knee * 0.95,
            "knee {} is too far below the true knee {true_knee}",
            report.knee_rate
        );
        assert!(report.points.len() <= config.max_probes);
        // The report is also a curve: it has both met and violated points.
        assert!(report.points.iter().any(|p| p.met));
        assert!(report.points.iter().any(|p| !p.met));
    }

    #[test]
    fn unsaturable_probe_reports_a_lower_bound() {
        let config = CapacityConfig {
            max_probes: 6,
            ..CapacityConfig::default()
        };
        let report = capacity_search(&config, |rate| {
            Ok(CapacityPoint {
                rate,
                latency_seconds: 0.0001,
                throughput: rate,
                completed: 100,
                met: true,
            })
        })
        .unwrap();
        assert!(!report.saturated);
        // Six doublings from 1000: the best met rate is 32×.
        assert_eq!(report.knee_rate, 32_000.0);
    }

    #[test]
    fn hopeless_sla_reports_zero_knee() {
        let config = CapacityConfig::default();
        let report = capacity_search(&config, |rate| {
            Ok(CapacityPoint {
                rate,
                latency_seconds: 1.0,
                throughput: 0.0,
                completed: 0,
                met: false,
            })
        })
        .unwrap();
        assert!(report.saturated);
        assert_eq!(report.knee_rate, 0.0);
        assert!(report.points.iter().all(|p| !p.met));
    }

    /// The structural monotonicity property: against probes with
    /// deterministic pseudo-random noise (an adversary the binary search
    /// was never promised), the knee still never exceeds any rate that
    /// was observed to violate the SLA.
    #[test]
    fn knee_never_exceeds_any_violated_rate_even_for_noisy_probes() {
        for seed in 0..50u64 {
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            let mut lcg = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64
            };
            let capacity = 500.0 + lcg() * 100_000.0;
            let config = CapacityConfig {
                initial_rate: 10.0 + lcg() * 10_000.0,
                max_probes: 16,
                tolerance: 0.02,
                ..CapacityConfig::default()
            };
            let report = capacity_search(&config, |rate| {
                // ±30% multiplicative latency noise around the true curve.
                let mut p = synthetic_point(rate, capacity);
                let noisy = p.latency_seconds * (0.7 + 0.6 * lcg());
                p.latency_seconds = noisy;
                p.met = noisy <= 0.005;
                Ok(p)
            })
            .unwrap();
            for p in &report.points {
                if !p.met {
                    assert!(
                        report.knee_rate < p.rate,
                        "seed {seed}: knee {} >= violated rate {}",
                        report.knee_rate,
                        p.rate
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_configs_are_rejected_and_probe_errors_propagate() {
        let probe = |rate: f64| Ok(synthetic_point(rate, 1000.0));
        for bad in [
            CapacityConfig {
                initial_rate: 0.0,
                ..CapacityConfig::default()
            },
            CapacityConfig {
                max_probes: 1,
                ..CapacityConfig::default()
            },
            CapacityConfig {
                tolerance: 0.0,
                ..CapacityConfig::default()
            },
        ] {
            assert!(capacity_search(&bad, probe).is_err());
        }
        let err = capacity_search(&CapacityConfig::default(), |_| {
            Err::<CapacityPoint, _>(BenchError::Sut("probe died".to_string()))
        });
        assert!(matches!(err, Err(BenchError::Sut(_))));
    }

    #[test]
    fn with_arrival_rate_substitutes_and_synthesizes() {
        use crate::suite::{s2_abrupt_shift, SuiteConfig};
        let base = s2_abrupt_shift(&SuiteConfig {
            dataset_size: 1000,
            ops_per_phase: 100,
            ..SuiteConfig::default()
        })
        .unwrap();
        assert!(base.arrival.is_none(), "suite scenarios are closed-loop");
        let open = with_arrival_rate(&base, 123.0);
        let arrival = open.arrival.as_ref().unwrap();
        assert_eq!(arrival.process, ArrivalProcess::Poisson { rate: 123.0 });
        assert_eq!(arrival.seed, base.workload.seed());
        // Substituting again preserves the (now-existing) arrival seed.
        let again = with_arrival_rate(&open, 456.0);
        assert_eq!(
            again.arrival.as_ref().unwrap().process,
            ArrivalProcess::Poisson { rate: 456.0 }
        );
        assert_eq!(again.arrival.as_ref().unwrap().seed, arrival.seed);
    }

    #[test]
    fn report_renders_sorted_with_knee_line() {
        let report = CapacityReport {
            sla: SlaTarget {
                quantile: 0.99,
                threshold_seconds: 0.005,
            },
            points: vec![
                synthetic_point(8000.0, 5000.0),
                synthetic_point(1000.0, 5000.0),
            ],
            knee_rate: 4000.0,
            saturated: true,
        };
        let text = render_capacity_report(&report);
        assert!(text.contains("p99 <= 5ms"));
        assert!(text.contains("knee: 4000.00 ops/s"));
        let p1000 = text.find("1000.00").unwrap();
        let p8000 = text.find("8000.00").unwrap();
        assert!(p1000 < p8000, "points render sorted by rate");
        assert!(text.contains("VIOLATED"));
    }
}
