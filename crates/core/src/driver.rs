//! The benchmark driver.
//!
//! The driver runs a [`SystemUnderTest`] through a [`Scenario`]: it
//! bulk-loads the dataset (outside measured time, as benchmarks do), runs
//! the **training phase** against the configured budget — reported as a
//! first-class result (Lesson 3) — then streams the phased workload,
//! recording every completion on a deterministic virtual clock. Phase
//! changes are announced to the SUT (systems may ignore them), and
//! maintenance slots are offered periodically so online-adaptive systems
//! can retrain; both kinds of adaptation work consume virtual time, which
//! is exactly how adaptation cost becomes visible in the Fig. 1b/1c
//! curves.

use crate::faults::{execute_faulted, FaultOpCtx, FaultSession, FaultStats};
use crate::obs::{LaneObs, RunObserver};
use crate::record::{OpRecord, RunRecord, TrainInfo};
use crate::runner::WallStats;
use crate::scenario::{ClockMode, Scenario};
use crate::{BenchError, Result};
use lsbench_stats::LatencyHistogram;
use lsbench_sut::clock::{Clock, SimClock};
use lsbench_sut::query_sut::QueryOp;
use lsbench_sut::sut::{SystemUnderTest, TransportStats};
use lsbench_workload::arrival::ArrivalGenerator;
use lsbench_workload::ops::Operation;
use std::time::Instant;

/// Extra driver knobs independent of the scenario.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Cap on recorded operations (guards against runaway scenarios).
    pub max_ops: u64,
    /// Requested execution mode. The serial driver itself always runs
    /// serially; this field is routing metadata consumed by
    /// [`EngineConfig::from_driver`](crate::engine::EngineConfig::from_driver)
    /// when a caller hands a driver config to the concurrent engine
    /// ([`crate::engine`]).
    pub mode: crate::runner::ExecutionMode,
    /// Operations dispatched per [`SystemUnderTest::execute_many`] call in
    /// the serial hot loop. Batches never span a phase boundary, a
    /// maintenance slot, or the `max_ops` cap, so the record is
    /// bit-identical for any batch size; larger batches amortize dispatch
    /// cost (one wire frame instead of one per op on a remote SUT).
    pub dispatch_batch: usize,
    /// Which clock the run reports on. [`ClockMode::Sim`] is the
    /// conformance oracle; [`ClockMode::Wall`] additionally captures host
    /// wall-clock timings ([`WallStats`]) *beside* the virtual record —
    /// never inside it, so the work-unit [`RunRecord`] stays bit-identical
    /// across clock modes (pinned by `tests/determinism.rs`).
    pub clock: ClockMode,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            max_ops: u64::MAX,
            mode: crate::runner::ExecutionMode::Serial,
            dispatch_batch: 64,
            clock: ClockMode::Sim,
        }
    }
}

/// Accumulates host wall-clock timings alongside the virtual clock when a
/// run executes with `clock = wall`.
///
/// Latencies are captured coordinated-omission-safely: every operation in
/// a dispatch batch is charged the batch's *full* wall duration, so a
/// stall that delayed ten queued operations inflates all ten samples
/// instead of being averaged into one. This is deliberately conservative —
/// a per-op split would credit queued work with time it did not wait.
struct WallRecorder {
    started: Instant,
    latency: LatencyHistogram,
    ops: u64,
}

impl WallRecorder {
    fn new() -> Self {
        WallRecorder {
            started: Instant::now(),
            latency: LatencyHistogram::new(),
            ops: 0,
        }
    }

    /// Records one dispatch of `ops` operations that took `elapsed` of
    /// host time (each op gets the full batch duration — see type docs).
    fn batch(&mut self, elapsed: std::time::Duration, ops: usize) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        for _ in 0..ops {
            self.latency.record(ns);
        }
        self.ops += ops as u64;
    }

    fn finish(self) -> WallStats {
        WallStats::new(self.started.elapsed().as_secs_f64(), self.ops, self.latency)
    }
}

/// Runs a key-value SUT through a scenario's phased workload.
///
/// The SUT must already be loaded with the scenario's dataset (SUT
/// constructors take the dataset so each system can bulk-load natively).
pub fn run_kv_scenario<S: SystemUnderTest<Operation> + ?Sized>(
    sut: &mut S,
    scenario: &Scenario,
    config: DriverConfig,
) -> Result<RunRecord> {
    run_kv_scenario_observed(sut, scenario, config, &mut RunObserver::disabled())
}

/// [`run_kv_scenario`] with observability: the observer receives run events
/// (on the virtual clock), hot-path counters, and latency samples.
///
/// Observation never advances or reads the clock as a side effect, so the
/// returned [`RunRecord`] is bit-identical whether the observer is active,
/// tracing, or [`RunObserver::disabled`] (enforced by
/// `tests/observability.rs`).
pub fn run_kv_scenario_observed<S: SystemUnderTest<Operation> + ?Sized>(
    sut: &mut S,
    scenario: &Scenario,
    config: DriverConfig,
    obs: &mut RunObserver,
) -> Result<RunRecord> {
    run_kv_scenario_timed(sut, scenario, config, obs).map(|(record, _)| record)
}

/// [`run_kv_scenario_observed`] that also returns the host wall-clock
/// statistics when [`DriverConfig::clock`] is [`ClockMode::Wall`]
/// (`None` in sim mode).
///
/// The wall recorder only *observes* the hot loop — it never advances or
/// reads the virtual clock, and nothing it measures feeds back into
/// scheduling — so the returned [`RunRecord`] is bit-identical between
/// clock modes by construction.
pub fn run_kv_scenario_timed<S: SystemUnderTest<Operation> + ?Sized>(
    sut: &mut S,
    scenario: &Scenario,
    config: DriverConfig,
    obs: &mut RunObserver,
) -> Result<(RunRecord, Option<WallStats>)> {
    scenario.validate()?;
    let stream = scenario
        .workload
        .stream()
        .map_err(|e| BenchError::Workload(e.to_string()))?;
    let rate = scenario.work_units_per_second;
    let mut clock = SimClock::new();

    // Training phase (Lesson 3: first-class result).
    obs.train_start(0.0, scenario.train_budget);
    let train_work = sut.train(scenario.train_budget);
    clock.advance(train_work as f64 / rate);
    let train = TrainInfo {
        work: train_work,
        seconds: clock.now(),
    };
    let exec_start = clock.now();
    obs.train_end(exec_start, train_work);
    // Phase-0 anchor, mirroring `phase_change_times[0]`.
    obs.root.phase_change(exec_start, 0);
    // Wall-clock capture starts after training so `elapsed_seconds`
    // covers the same window as `exec_start..exec_end` does virtually.
    let mut wall = match config.clock {
        ClockMode::Sim => None,
        ClockMode::Wall => Some(WallRecorder::new()),
    };

    let mut ops = Vec::with_capacity(scenario.workload.total_ops().min(1 << 22) as usize);
    let mut phase_change_times = vec![(0usize, exec_start)];
    let mut current_phase = 0usize;
    let mut since_maintenance = 0u64;
    // Adaptation work (retraining bursts) slows the queries issued behind
    // it — §V-D.2: "throughput could temporarily decrease due to the CPU
    // overheads of retraining a model. Similarly, query latency could
    // increase". In Foreground mode the whole burst stalls the next query;
    // in Background mode it becomes a backlog drained by processor sharing
    // (see `service_with_backlog`).
    let mut backlog = 0.0f64;
    // Open loop: operations arrive on their own schedule and may queue
    // behind earlier ones; latency = completion − arrival.
    let mut arrivals = match &scenario.arrival {
        Some(spec) => Some(
            ArrivalGenerator::new(spec.process, spec.modulation, spec.seed)
                .map_err(|e| BenchError::Workload(e.to_string()))?,
        ),
        None => None,
    };
    // `None` keeps the exact unfaulted code path below (zero-cost
    // passthrough); `Some` routes every operation through the
    // fault/timeout/retry layer.
    let fault_session = FaultSession::from_scenario(scenario);
    let mut fault_stats = FaultStats::default();

    let mut stream = stream.peekable();
    // Reused dispatch-batch buffers for the unfaulted execute_many path.
    let mut batch: Vec<lsbench_workload::phases::LabeledOp> = Vec::new();
    let mut batch_ops: Vec<Operation> = Vec::new();

    while let Some(labeled) = stream.next() {
        if ops.len() as u64 >= config.max_ops {
            break;
        }
        if labeled.phase != current_phase {
            current_phase = labeled.phase;
            phase_change_times.push((current_phase, clock.now()));
            obs.root.phase_change(clock.now(), current_phase);
            let adapt_work = sut.on_phase_change(current_phase);
            backlog += adapt_work as f64 / rate;
            obs.root
                .retrain_burst(clock.now(), current_phase, adapt_work);
            obs.root.backlog(clock.now(), backlog);
        }
        since_maintenance += 1;
        if since_maintenance >= scenario.maintenance_every {
            since_maintenance = 0;
            let maint_work = sut.maintenance();
            backlog += maint_work as f64 / rate;
            obs.root.maintenance(clock.now(), maint_work);
            obs.root.backlog(clock.now(), backlog);
        }
        match &fault_session {
            None => {
                // Gather a dispatch batch: successor ops that stay in this
                // phase and would hit neither a maintenance slot nor the
                // max_ops cap. Batches therefore never reorder the SUT's
                // prelude calls, and since execution never reads the
                // clock, the record is bit-identical to op-at-a-time
                // dispatch for any `dispatch_batch`.
                batch.clear();
                batch.push(labeled);
                let limit = config.dispatch_batch.max(1);
                while batch.len() < limit
                    && ops.len() as u64 + (batch.len() as u64) < config.max_ops
                    && since_maintenance + 1 < scenario.maintenance_every
                {
                    match stream.peek() {
                        Some(next) if next.phase == current_phase => {
                            since_maintenance += 1;
                            batch.push(stream.next().expect("peeked"));
                        }
                        _ => break,
                    }
                }
                batch_ops.clear();
                batch_ops.extend(batch.iter().map(|l| l.op));
                let before = sut.transport_stats();
                let dispatched = wall.as_ref().map(|_| Instant::now());
                let outcomes = sut.execute_many(&batch_ops);
                if let (Some(w), Some(t0)) = (wall.as_mut(), dispatched) {
                    w.batch(t0.elapsed(), batch.len());
                }
                fold_transport_delta(
                    before,
                    sut.transport_stats(),
                    &mut fault_stats,
                    &mut obs.root,
                    clock.now(),
                );
                for (labeled, outcome) in batch.iter().zip(outcomes) {
                    let outcome = outcome.map_err(|e| BenchError::Sut(e.to_string()))?;
                    // In open loop the server may idle until the next
                    // arrival.
                    let arrival_t = arrivals.as_mut().map(|g| {
                        let t = exec_start + g.next_arrival();
                        if t > clock.now() {
                            clock.advance(t - clock.now());
                        }
                        t
                    });
                    let service = service_with_backlog(
                        outcome.work as f64 / rate,
                        &mut backlog,
                        scenario.online_train,
                    );
                    clock.advance(service);
                    // Closed loop: latency = service. Open loop: queueing
                    // included.
                    let latency = match arrival_t {
                        Some(a) => clock.now() - a,
                        None => service,
                    };
                    obs.root
                        .op_done(clock.now(), clock.now() - exec_start, latency, outcome.ok);
                    ops.push(OpRecord {
                        t_end: clock.now(),
                        latency,
                        phase: labeled.phase as u16,
                        ok: outcome.ok,
                        in_transition: labeled.in_transition,
                    });
                }
            }
            Some(session) => {
                // In open loop the server may idle until the next arrival.
                let arrival_t = arrivals.as_mut().map(|g| {
                    let t = exec_start + g.next_arrival();
                    if t > clock.now() {
                        clock.advance(t - clock.now());
                    }
                    t
                });
                let before = sut.transport_stats();
                let dispatched = wall.as_ref().map(|_| Instant::now());
                let fr = execute_faulted(
                    sut,
                    &labeled.op,
                    FaultOpCtx {
                        phase: labeled.phase,
                        idx: ops.len() as u64,
                        rate,
                        mode: scenario.online_train,
                    },
                    session,
                    &mut backlog,
                )?;
                if let (Some(w), Some(t0)) = (wall.as_mut(), dispatched) {
                    w.batch(t0.elapsed(), 1);
                }
                fold_transport_delta(
                    before,
                    sut.transport_stats(),
                    &mut fault_stats,
                    &mut obs.root,
                    clock.now(),
                );
                // The server stays busy for the full service time of every
                // attempt, but the client observes timed-out attempts only
                // up to the timeout.
                clock.advance(fr.service);
                let latency = match arrival_t {
                    Some(a) => clock.now() - a - (fr.service - fr.observed),
                    None => fr.observed,
                };
                for kind in &fr.injected {
                    obs.root.fault_injected(clock.now(), *kind);
                }
                for attempt in 0..fr.retries {
                    obs.root.query_retried(clock.now(), attempt + 1);
                }
                for _ in 0..fr.timeouts {
                    obs.root.query_timed_out(clock.now(), latency);
                }
                fr.fold_into(&mut fault_stats);
                obs.root
                    .op_done(clock.now(), clock.now() - exec_start, latency, fr.ok);
                ops.push(OpRecord {
                    t_end: clock.now(),
                    latency,
                    phase: labeled.phase as u16,
                    ok: fr.ok,
                    in_transition: labeled.in_transition,
                });
            }
        }
    }

    // Any undrained background-training backlog must still be paid before
    // the run can be declared finished (conservation of adaptation work).
    clock.advance(backlog);
    obs.run_end(clock.now(), ops.len() as u64);

    let record = RunRecord {
        sut_name: sut.name(),
        scenario_name: scenario.name.clone(),
        phase_names: scenario
            .workload
            .phases()
            .iter()
            .map(|p| p.name.clone())
            .collect(),
        ops,
        phase_change_times,
        train,
        exec_start,
        exec_end: clock.now(),
        final_metrics: sut.metrics(),
        work_units_per_second: rate,
        faults: fault_stats,
    };
    Ok((record, wall.map(WallRecorder::finish)))
}

/// Folds a [`TransportStats`] delta (a remote SUT's socket-deadline
/// expiries and reconnect-resends accumulated during one dispatch) into
/// the run's fault ledger and observability stream — the **same**
/// [`FaultStats`] fields and event kinds a PR-4 injected timeout
/// produces, so real network failures and chaos-injected ones share one
/// ledger (pinned by `tests/remote_conformance.rs`).
pub(crate) fn fold_transport_delta(
    before: TransportStats,
    after: TransportStats,
    stats: &mut FaultStats,
    obs: &mut LaneObs,
    now: f64,
) {
    let retries = after.retries.saturating_sub(before.retries);
    let timeouts = after.timeouts.saturating_sub(before.timeouts);
    stats.retries += retries;
    stats.timeouts += timeouts;
    for attempt in 0..retries {
        obs.query_retried(now, attempt as u32 + 1);
    }
    for _ in 0..timeouts {
        // A wall-clock deadline has no virtual latency; record the event
        // at the current virtual time with zero observed latency.
        obs.query_timed_out(now, 0.0);
    }
}

/// Computes one operation's service time given pending adaptation backlog
/// (both in seconds of full-rate work).
///
/// * [`OnlineTrainMode::Foreground`]: the entire backlog is prepended to
///   this operation's service time (a single latency spike).
/// * [`OnlineTrainMode::Background`]: processor sharing — while backlog
///   remains, training gets `fraction` of the resources and the query runs
///   at `1 − fraction` speed; the backlog drains by `fraction ×` the shared
///   wall time. The dip is shallower but lasts longer.
pub(crate) fn service_with_backlog(
    base_service: f64,
    backlog: &mut f64,
    mode: crate::scenario::OnlineTrainMode,
) -> f64 {
    use crate::scenario::OnlineTrainMode;
    match mode {
        OnlineTrainMode::Foreground => {
            let service = *backlog + base_service;
            *backlog = 0.0;
            service
        }
        OnlineTrainMode::Background { fraction } => {
            if *backlog <= 0.0 {
                return base_service;
            }
            let query_share = 1.0 - fraction;
            // Wall time until the backlog would drain under sharing.
            let drain_wall = *backlog / fraction;
            // Query work that would complete during that window.
            let query_done = drain_wall * query_share;
            if query_done >= base_service {
                // Query finishes while training still runs in background.
                let wall = base_service / query_share;
                *backlog -= fraction * wall;
                wall
            } else {
                // Backlog drains mid-query; the rest runs at full speed.
                *backlog = 0.0;
                drain_wall + (base_service - query_done)
            }
        }
    }
}

/// Configuration for trace replay.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Virtual work units per second.
    pub work_units_per_second: f64,
    /// Offer a maintenance slot every this many operations.
    pub maintenance_every: u64,
    /// Offline training budget passed to the SUT before replay.
    pub train_budget: u64,
    /// Online-training scheduling mode.
    pub online_train: crate::scenario::OnlineTrainMode,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            work_units_per_second: 1_000_000.0,
            maintenance_every: 256,
            train_budget: u64::MAX,
            online_train: crate::scenario::OnlineTrainMode::Foreground,
        }
    }
}

/// Replays a recorded [`Trace`](lsbench_workload::trace::Trace) against a
/// SUT.
///
/// This is the mechanism behind §V-A's requirement that hold-out workloads
/// be presented to every system *identically and exactly once*: a trace is
/// recorded once and shipped to each SUT. Entries with positive `arrival`
/// times are replayed open-loop (latency includes queueing); zero arrival
/// times replay closed-loop.
pub fn run_kv_trace<S: SystemUnderTest<Operation> + ?Sized>(
    sut: &mut S,
    trace: &lsbench_workload::trace::Trace,
    config: &ReplayConfig,
) -> Result<RunRecord> {
    if config.work_units_per_second <= 0.0 {
        return Err(BenchError::InvalidScenario(
            "work_units_per_second must be positive".to_string(),
        ));
    }
    let rate = config.work_units_per_second;
    let mut clock = SimClock::new();
    let train_work = sut.train(config.train_budget);
    clock.advance(train_work as f64 / rate);
    let train = TrainInfo {
        work: train_work,
        seconds: clock.now(),
    };
    let exec_start = clock.now();
    let mut ops = Vec::with_capacity(trace.len());
    let mut phase_change_times = vec![(0usize, exec_start)];
    let mut current_phase = 0usize;
    let mut since_maintenance = 0u64;
    let mut backlog = 0.0f64;
    for entry in trace.entries() {
        if entry.phase != current_phase {
            current_phase = entry.phase;
            phase_change_times.push((current_phase, clock.now()));
            backlog += sut.on_phase_change(current_phase) as f64 / rate;
        }
        since_maintenance += 1;
        if since_maintenance >= config.maintenance_every {
            since_maintenance = 0;
            backlog += sut.maintenance() as f64 / rate;
        }
        let arrival_t = if entry.arrival > 0.0 {
            let t = exec_start + entry.arrival;
            if t > clock.now() {
                clock.advance(t - clock.now());
            }
            Some(t)
        } else {
            None
        };
        let outcome = sut
            .execute(&entry.op)
            .map_err(|e| BenchError::Sut(e.to_string()))?;
        let service = service_with_backlog(
            outcome.work as f64 / rate,
            &mut backlog,
            config.online_train,
        );
        clock.advance(service);
        let latency = match arrival_t {
            Some(a) => clock.now() - a,
            None => service,
        };
        ops.push(OpRecord {
            t_end: clock.now(),
            latency,
            phase: entry.phase as u16,
            ok: outcome.ok,
            in_transition: false,
        });
    }
    clock.advance(backlog);
    Ok(RunRecord {
        sut_name: sut.name(),
        scenario_name: "trace-replay".to_string(),
        phase_names: trace.phase_names().to_vec(),
        ops,
        phase_change_times,
        train,
        exec_start,
        exec_end: clock.now(),
        final_metrics: sut.metrics(),
        work_units_per_second: rate,
        faults: FaultStats::default(),
    })
}

/// Replays a trace open-loop against a SUT with a population of `clients`
/// independent closed-loop clients sharing the trace's arrival schedule.
///
/// Operations are assigned to clients round-robin in trace order. An entry
/// with a positive `arrival` issues at that virtual time (or when its
/// client frees up, whichever is later) and its latency *includes queueing
/// delay* — the coordinated-omission-safe measurement. Entries without
/// timestamps issue as soon as their client is free and measure service
/// time only.
///
/// The replay is a logically serial discrete-event simulation on the
/// virtual clock: operations execute against the SUT in trace order, and
/// only per-client completion times differ from [`run_kv_trace`]. Physical
/// worker count can therefore never affect the record — the same contract
/// the engine pins for generated scenarios ("threads never decide
/// results"), guarded for replays by `tests/open_loop.rs` and the CI
/// trace-smoke job.
pub fn run_kv_trace_open_loop<S: SystemUnderTest<Operation> + ?Sized>(
    sut: &mut S,
    trace: &lsbench_workload::trace::Trace,
    config: &ReplayConfig,
    clients: usize,
) -> Result<RunRecord> {
    if config.work_units_per_second <= 0.0 {
        return Err(BenchError::InvalidScenario(
            "work_units_per_second must be positive".to_string(),
        ));
    }
    if clients == 0 {
        return Err(BenchError::InvalidScenario(
            "open-loop replay needs at least one client".to_string(),
        ));
    }
    let rate = config.work_units_per_second;
    let mut clock = SimClock::new();
    let train_work = sut.train(config.train_budget);
    clock.advance(train_work as f64 / rate);
    let train = TrainInfo {
        work: train_work,
        seconds: clock.now(),
    };
    let exec_start = clock.now();
    let mut client_free = vec![exec_start; clients.min(trace.len().max(1))];
    let mut ops = Vec::with_capacity(trace.len());
    let mut phase_change_times = vec![(0usize, exec_start)];
    let mut current_phase = 0usize;
    let mut since_maintenance = 0u64;
    let mut backlog = 0.0f64;
    let mut last_completion = exec_start;
    for (i, entry) in trace.entries().iter().enumerate() {
        if entry.phase != current_phase {
            current_phase = entry.phase;
            phase_change_times.push((current_phase, last_completion));
            backlog += sut.on_phase_change(current_phase) as f64 / rate;
        }
        since_maintenance += 1;
        if since_maintenance >= config.maintenance_every {
            since_maintenance = 0;
            backlog += sut.maintenance() as f64 / rate;
        }
        let slot = i % client_free.len();
        let outcome = sut
            .execute(&entry.op)
            .map_err(|e| BenchError::Sut(e.to_string()))?;
        let service = service_with_backlog(
            outcome.work as f64 / rate,
            &mut backlog,
            config.online_train,
        );
        let (start, basis) = if entry.arrival > 0.0 {
            let arrival = exec_start + entry.arrival;
            (arrival.max(client_free[slot]), arrival)
        } else {
            (client_free[slot], client_free[slot])
        };
        let completion = start + service;
        client_free[slot] = completion;
        last_completion = last_completion.max(completion);
        ops.push(OpRecord {
            t_end: completion,
            latency: completion - basis,
            phase: entry.phase as u16,
            ok: outcome.ok,
            in_transition: false,
        });
    }
    Ok(RunRecord {
        sut_name: sut.name(),
        scenario_name: "trace-replay".to_string(),
        phase_names: trace.phase_names().to_vec(),
        ops,
        phase_change_times,
        train,
        exec_start,
        exec_end: last_completion + backlog,
        final_metrics: sut.metrics(),
        work_units_per_second: rate,
        faults: FaultStats::default(),
    })
}

/// Runs a query SUT over per-phase query batches (each inner vector is one
/// workload phase). Phase changes are announced between batches.
pub fn run_query_workload<S: SystemUnderTest<QueryOp> + ?Sized>(
    sut: &mut S,
    phases: &[(String, Vec<QueryOp>)],
    work_units_per_second: f64,
    train_budget: u64,
) -> Result<RunRecord> {
    if work_units_per_second <= 0.0 {
        return Err(BenchError::InvalidScenario(
            "work_units_per_second must be positive".to_string(),
        ));
    }
    let rate = work_units_per_second;
    let mut clock = SimClock::new();
    let train_work = sut.train(train_budget);
    clock.advance(train_work as f64 / rate);
    let train = TrainInfo {
        work: train_work,
        seconds: clock.now(),
    };
    let exec_start = clock.now();
    let mut ops = Vec::new();
    let mut phase_change_times = Vec::new();
    let mut stall = 0.0f64;
    for (phase_idx, (_, batch)) in phases.iter().enumerate() {
        phase_change_times.push((phase_idx, clock.now()));
        if phase_idx > 0 {
            let adapt = sut.on_phase_change(phase_idx);
            stall += adapt as f64 / rate;
        }
        for op in batch {
            let outcome = sut
                .execute(op)
                .map_err(|e| BenchError::Sut(e.to_string()))?;
            let latency = stall + outcome.work as f64 / rate;
            stall = 0.0;
            clock.advance(latency);
            ops.push(OpRecord {
                t_end: clock.now(),
                latency,
                phase: phase_idx as u16,
                ok: outcome.ok,
                in_transition: false,
            });
        }
    }
    Ok(RunRecord {
        sut_name: sut.name(),
        scenario_name: "query-workload".to_string(),
        phase_names: phases.iter().map(|(n, _)| n.clone()).collect(),
        ops,
        phase_change_times,
        train,
        exec_start,
        exec_end: clock.now(),
        final_metrics: sut.metrics(),
        work_units_per_second: rate,
        faults: FaultStats::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsbench_sut::kv::{BTreeSut, RetrainPolicy, RmiSut};
    use lsbench_workload::keygen::KeyDistribution;

    fn scenario() -> Scenario {
        Scenario::two_phase_shift(
            "test-shift",
            KeyDistribution::Uniform,
            KeyDistribution::Normal {
                center: 0.1,
                std_frac: 0.02,
            },
            5_000,
            2_000,
            42,
        )
        .unwrap()
    }

    #[test]
    fn kv_run_produces_complete_record() {
        let s = scenario();
        let data = s.dataset.build().unwrap();
        let mut sut = BTreeSut::build(&data).unwrap();
        let r = run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();
        assert_eq!(r.completed(), 4_000);
        assert_eq!(r.phase_names.len(), 2);
        assert_eq!(r.phase_change_times.len(), 2);
        assert_eq!(r.failures(), 0);
        assert!(r.exec_end > r.exec_start);
        // Timestamps are non-decreasing.
        for w in r.ops.windows(2) {
            assert!(w[0].t_end <= w[1].t_end);
        }
        // B-tree doesn't train.
        assert_eq!(r.train.work, 0);
    }

    #[test]
    fn learned_sut_reports_training_time() {
        let s = scenario();
        let data = s.dataset.build().unwrap();
        let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::Never).unwrap();
        let r = run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();
        assert!(r.train.work > 0);
        assert!(r.train.seconds > 0.0);
        assert_eq!(r.exec_start, r.train.seconds);
    }

    #[test]
    fn deterministic_runs() {
        let s = scenario();
        let data = s.dataset.build().unwrap();
        let run = || {
            let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::DeltaFraction(0.1)).unwrap();
            run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.exec_end, b.exec_end);
    }

    #[test]
    fn wall_clock_mode_observes_without_perturbing_the_record() {
        let s = scenario();
        let data = s.dataset.build().unwrap();
        let run = |clock| {
            let mut sut = BTreeSut::build(&data).unwrap();
            let cfg = DriverConfig {
                clock,
                ..DriverConfig::default()
            };
            run_kv_scenario_timed(&mut sut, &s, cfg, &mut RunObserver::disabled()).unwrap()
        };
        let (sim_record, sim_wall) = run(ClockMode::Sim);
        let (wall_record, wall_stats) = run(ClockMode::Wall);
        // The work-unit record is bit-identical across clock modes: wall
        // capture only observes the hot loop, it never schedules.
        assert_eq!(sim_record, wall_record);
        assert!(sim_wall.is_none());
        let wall = wall_stats.expect("wall stats in wall mode");
        assert_eq!(wall.ops, wall_record.completed() as u64);
        assert_eq!(wall.latency.total(), wall.ops);
        assert!(wall.elapsed_seconds > 0.0);
        assert!(wall.throughput > 0.0);
    }

    #[test]
    fn max_ops_cap() {
        let s = scenario();
        let data = s.dataset.build().unwrap();
        let mut sut = BTreeSut::build(&data).unwrap();
        let cfg = DriverConfig {
            max_ops: 100,
            ..DriverConfig::default()
        };
        let r = run_kv_scenario(&mut sut, &s, cfg).unwrap();
        assert_eq!(r.completed(), 100);
    }

    #[test]
    fn background_training_spreads_the_cost() {
        use crate::scenario::OnlineTrainMode;
        use lsbench_workload::ops::OperationMix;
        use lsbench_workload::phases::{PhasedWorkload, TransitionKind, WorkloadPhase};
        // One retrain at a phase boundary, then a long read phase to drain
        // the backlog: foreground shows one huge latency spike, background
        // a long shallow slowdown — same total cost (§V-B trade-off).
        let key_range = (0u64, 10_000_000u64);
        let write_mix = OperationMix {
            read: 0.3,
            insert: 0.7,
            update: 0.0,
            scan: 0.0,
            delete: 0.0,
            max_scan_len: 0,
        };
        let workload = PhasedWorkload::new(
            vec![
                WorkloadPhase::new(
                    "reads",
                    KeyDistribution::Uniform,
                    key_range,
                    OperationMix::ycsb_c(),
                    3_000,
                ),
                WorkloadPhase::new(
                    "writes",
                    KeyDistribution::Uniform,
                    key_range,
                    write_mix,
                    2_000,
                ),
                WorkloadPhase::new(
                    "drain-reads",
                    KeyDistribution::Uniform,
                    key_range,
                    OperationMix::ycsb_c(),
                    30_000,
                ),
            ],
            vec![TransitionKind::Abrupt, TransitionKind::Abrupt],
            50,
        )
        .unwrap();
        let mut s = Scenario::two_phase_shift(
            "bg-train",
            KeyDistribution::Uniform,
            KeyDistribution::Uniform,
            5_000,
            10,
            50,
        )
        .unwrap();
        s.workload = workload;
        let run_with = |mode: OnlineTrainMode| {
            let mut s2 = s.clone();
            s2.online_train = mode;
            let data = s2.dataset.build().unwrap();
            // Retrains only at phase boundaries (once, entering phase 3).
            let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::OnPhaseChange).unwrap();
            run_kv_scenario(&mut sut, &s2, DriverConfig::default()).unwrap()
        };
        let fg = run_with(OnlineTrainMode::Foreground);
        let bg = run_with(OnlineTrainMode::Background { fraction: 0.3 });
        assert!(fg.final_metrics.adaptations > 0, "no retrains happened");
        let max_lat =
            |r: &crate::record::RunRecord| r.ops.iter().map(|o| o.latency).fold(0.0f64, f64::max);
        // Foreground: one spike near the full retrain cost; background:
        // worst latency orders of magnitude smaller.
        assert!(
            max_lat(&fg) > 10.0 * max_lat(&bg),
            "fg {} vs bg {}",
            max_lat(&fg),
            max_lat(&bg)
        );
        // Total adaptation work is conserved: end-to-end durations are
        // close; the cost is just distributed differently.
        let ratio = fg.exec_duration() / bg.exec_duration();
        assert!((0.8..1.25).contains(&ratio), "duration ratio {ratio}");
    }

    #[test]
    fn background_fraction_validated() {
        use crate::scenario::OnlineTrainMode;
        let mut s = scenario();
        s.online_train = OnlineTrainMode::Background { fraction: 0.0 };
        assert!(s.validate().is_err());
        s.online_train = OnlineTrainMode::Background { fraction: 1.0 };
        assert!(s.validate().is_err());
        s.online_train = OnlineTrainMode::Background { fraction: 0.5 };
        assert!(s.validate().is_ok());
    }

    #[test]
    fn open_loop_includes_queueing_latency() {
        use crate::scenario::ArrivalSpec;
        use lsbench_workload::arrival::{ArrivalProcess, LoadModulation};
        let mut s = scenario();
        let data = s.dataset.build().unwrap();
        // Service rate of the btree is ~50k ops/s at 1M work-units/s.
        // Bursts at 8× a 40k ops/s base rate overload the server, so
        // queueing delay must appear in latencies during bursts.
        s.arrival = Some(ArrivalSpec {
            process: ArrivalProcess::Poisson { rate: 40_000.0 },
            modulation: LoadModulation::Burst {
                period: 0.02,
                burst_len: 0.005,
                multiplier: 8.0,
            },
            seed: 3,
        });
        s.validate().unwrap();
        let mut sut = BTreeSut::build(&data).unwrap();
        let r = run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();
        assert_eq!(r.completed(), 4_000);
        // Some latencies exceed any plausible service time (queueing).
        let service_bound = 200.0 / s.work_units_per_second;
        let queued = r.ops.iter().filter(|o| o.latency > service_bound).count();
        assert!(queued > 100, "queued = {queued}");
        // And all latencies are non-negative.
        assert!(r.ops.iter().all(|o| o.latency >= 0.0));
    }

    #[test]
    fn open_loop_underload_matches_service_latency() {
        use crate::scenario::ArrivalSpec;
        use lsbench_workload::arrival::{ArrivalProcess, LoadModulation};
        let mut s = scenario();
        let data = s.dataset.build().unwrap();
        // 100 ops/s against a ~50k ops/s server: no queueing, latency ≈
        // service time.
        s.arrival = Some(ArrivalSpec {
            process: ArrivalProcess::Uniform { rate: 100.0 },
            modulation: LoadModulation::Constant,
            seed: 4,
        });
        let mut sut = BTreeSut::build(&data).unwrap();
        let cfg = DriverConfig {
            max_ops: 500,
            ..DriverConfig::default()
        };
        let r = run_kv_scenario(&mut sut, &s, cfg).unwrap();
        let service_bound = 200.0 / s.work_units_per_second;
        assert!(
            r.ops.iter().all(|o| o.latency <= service_bound),
            "unexpected queueing under light load"
        );
        // Execution time is dominated by arrival pacing: 500 ops at 100/s.
        assert!(r.exec_duration() > 4.0, "duration = {}", r.exec_duration());
    }

    #[test]
    fn closed_loop_rejected_as_arrival_spec() {
        use crate::scenario::ArrivalSpec;
        use lsbench_workload::arrival::{ArrivalProcess, LoadModulation};
        let mut s = scenario();
        s.arrival = Some(ArrivalSpec {
            process: ArrivalProcess::ClosedLoop,
            modulation: LoadModulation::Constant,
            seed: 1,
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn trace_replay_matches_streamed_run() {
        use lsbench_workload::trace::Trace;
        let s = scenario();
        let data = s.dataset.build().unwrap();
        // Record the scenario workload once, replay it.
        let trace = Trace::record(&s.workload).unwrap();
        let mut streamed_sut = BTreeSut::build(&data).unwrap();
        let streamed = run_kv_scenario(&mut streamed_sut, &s, DriverConfig::default()).unwrap();
        let mut replay_sut = BTreeSut::build(&data).unwrap();
        let cfg = ReplayConfig {
            work_units_per_second: s.work_units_per_second,
            maintenance_every: s.maintenance_every,
            train_budget: s.train_budget,
            online_train: s.online_train,
        };
        let replayed = run_kv_trace(&mut replay_sut, &trace, &cfg).unwrap();
        // Identical op stream + deterministic SUT => identical records.
        assert_eq!(replayed.ops, streamed.ops);
        assert_eq!(replayed.phase_names, streamed.phase_names);
        // Replays against a second (different) SUT complete too.
        let mut other = RmiSut::build("rmi", &data, RetrainPolicy::Never).unwrap();
        let r2 = run_kv_trace(&mut other, &trace, &cfg).unwrap();
        assert_eq!(r2.completed(), trace.len());
    }

    #[test]
    fn phase_change_recorded_at_boundary() {
        let s = scenario();
        let data = s.dataset.build().unwrap();
        let mut sut = BTreeSut::build(&data).unwrap();
        let r = run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();
        let t1 = r.phase_start_time(1).unwrap();
        // Phase 1 starts after exactly 2000 ops.
        let ops_before: usize = r.ops.iter().filter(|o| o.t_end <= t1).count();
        assert_eq!(ops_before, 2000);
    }
}
