//! Per-lane latency and completion recording.
//!
//! Every lane records into its own [`LaneRecorder`] — a log-bucketed
//! latency histogram plus fixed-width per-interval completion counters —
//! so workers never contend on shared statistics. Both structures merge by
//! addition, which makes the merged result independent of worker count and
//! merge order (the determinism property `tests/determinism.rs` checks).

use crate::{BenchError, Result};
use lsbench_stats::{IntervalCounts, LatencyHistogram};

/// Converts a latency in virtual seconds to integer nanoseconds for the
/// log-bucketed histogram. Negative inputs (impossible for well-formed
/// lanes, but cheap to guard) clamp to zero.
pub(crate) fn latency_to_ns(seconds: f64) -> u64 {
    (seconds.max(0.0) * 1e9).round() as u64
}

/// One lane's mergeable statistics: latency distribution + completions
/// over time.
#[derive(Debug, Clone)]
pub(crate) struct LaneRecorder {
    /// Log-bucketed latency histogram in nanoseconds.
    pub hist: LatencyHistogram,
    /// Completions per fixed-width interval of virtual time.
    pub counts: IntervalCounts,
}

impl LaneRecorder {
    /// Creates a recorder whose completion intervals start at `origin`
    /// (the run's `exec_start`) with the given bucket `width`.
    pub(crate) fn new(origin: f64, width: f64) -> Result<Self> {
        Ok(LaneRecorder {
            hist: LatencyHistogram::new(),
            counts: IntervalCounts::new(origin, width)
                .map_err(|e| BenchError::Metric(e.to_string()))?,
        })
    }

    /// Records one completed operation.
    pub(crate) fn record(&mut self, t_end: f64, latency: f64) -> Result<()> {
        self.hist.record(latency_to_ns(latency));
        self.counts
            .record(t_end)
            .map_err(|e| BenchError::Metric(e.to_string()))
    }

    /// Folds another lane's statistics into this one.
    pub(crate) fn merge(&mut self, other: &LaneRecorder) -> Result<()> {
        self.hist
            .merge(&other.hist)
            .map_err(|e| BenchError::Metric(e.to_string()))?;
        self.counts
            .merge(&other.counts)
            .map_err(|e| BenchError::Metric(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_conversion_rounds_and_clamps() {
        assert_eq!(latency_to_ns(0.0), 0);
        assert_eq!(latency_to_ns(1e-9), 1);
        assert_eq!(latency_to_ns(1.5e-9), 2);
        assert_eq!(latency_to_ns(-1.0), 0);
        assert_eq!(latency_to_ns(2.0), 2_000_000_000);
    }

    #[test]
    fn recorder_merge_accumulates_both_structures() {
        let mut a = LaneRecorder::new(0.0, 0.5).unwrap();
        let mut b = LaneRecorder::new(0.0, 0.5).unwrap();
        a.record(0.1, 1e-6).unwrap();
        b.record(0.7, 3e-6).unwrap();
        b.record(0.8, 5e-6).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.hist.total(), 3);
        assert_eq!(a.counts.total(), 3);
        assert_eq!(a.counts.counts(), &[1, 2]);
        // Mismatched interval geometry cannot be merged.
        let c = LaneRecorder::new(1.0, 0.5).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn recorder_rejects_completion_before_origin() {
        let mut r = LaneRecorder::new(5.0, 1.0).unwrap();
        assert!(r.record(4.9, 1e-6).is_err());
        assert!(r.record(5.0, 1e-6).is_ok());
    }
}
