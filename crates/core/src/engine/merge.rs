//! Deterministic folding of per-lane results into one [`RunRecord`].
//!
//! The merged record has the exact shape the serial driver produces, so
//! every downstream metric family — adaptability curves, SLA bands,
//! specialization box plots — works on concurrent runs unchanged. All
//! merge rules are commutative/associative (sorts with total orders, min
//! per phase, sums), so the output is identical for any worker count and
//! any lane-arrival order.

use super::latency::LaneRecorder;
use super::worker::LaneResult;
use super::EngineReport;
use crate::faults::FaultStats;
use crate::record::{RunRecord, TrainInfo};
use crate::scenario::Scenario;
use crate::Result;
use lsbench_sut::sut::SutMetrics;
use std::collections::BTreeMap;

/// Sums SUT metric counters across shards (for shared mode the single
/// SUT's metrics pass through unchanged).
pub(crate) fn sum_metrics<I: IntoIterator<Item = SutMetrics>>(metrics: I) -> SutMetrics {
    metrics
        .into_iter()
        .fold(SutMetrics::default(), |mut acc, m| {
            acc.size_bytes += m.size_bytes;
            acc.training_work += m.training_work;
            acc.execution_work += m.execution_work;
            acc.model_count += m.model_count;
            acc.adaptations += m.adaptations;
            acc.label_collection_work += m.label_collection_work;
            acc
        })
}

/// Run-level context the merge folds lane results into.
pub(crate) struct MergeContext<'a> {
    pub sut_name: String,
    pub scenario: &'a Scenario,
    pub train: TrainInfo,
    pub exec_start: f64,
    pub final_metrics: SutMetrics,
    pub interval_width: f64,
    pub threads: usize,
    pub lanes: usize,
}

/// Folds lane results into an [`EngineReport`]. Completion ties break on
/// `(lane, global index)`: lanes are stable identities here (one lane =
/// one op stream), so the tiebreaker is worker-count-invariant.
pub(crate) fn merge_lanes(lanes: Vec<LaneResult>, ctx: MergeContext<'_>) -> Result<EngineReport> {
    merge_results(lanes, ctx, false)
}

/// Folds per-*worker* results from the open-loop scheduler
/// ([`super::sched`]) into an [`EngineReport`]. Here `lane` is a worker
/// index — it changes with the thread count — so completion ties must
/// break on the global op index alone (globally unique, so still a total
/// order, and invariant across worker counts).
pub(crate) fn merge_clients(lanes: Vec<LaneResult>, ctx: MergeContext<'_>) -> Result<EngineReport> {
    merge_results(lanes, ctx, true)
}

fn merge_results(
    mut lanes: Vec<LaneResult>,
    ctx: MergeContext<'_>,
    by_global_idx: bool,
) -> Result<EngineReport> {
    let MergeContext {
        sut_name,
        scenario,
        train,
        exec_start,
        final_metrics,
        interval_width,
        threads,
        lanes: lane_count,
    } = ctx;
    // Deterministic fold order regardless of which worker finished first.
    lanes.sort_by_key(|l| l.lane);

    // Completion order across lanes: by virtual completion time, with
    // (lane, global index) as a total-order tiebreaker for simultaneous
    // completions.
    let mut tagged: Vec<(usize, u64, crate::record::OpRecord)> = Vec::new();
    for lane in &lanes {
        tagged.extend(lane.ops.iter().map(|&(idx, rec)| (lane.lane, idx, rec)));
    }
    if by_global_idx {
        tagged.sort_by(|a, b| a.2.t_end.total_cmp(&b.2.t_end).then(a.1.cmp(&b.1)));
    } else {
        tagged.sort_by(|a, b| {
            a.2.t_end
                .total_cmp(&b.2.t_end)
                .then(a.0.cmp(&b.0))
                .then(a.1.cmp(&b.1))
        });
    }
    let ops = tagged.into_iter().map(|(_, _, rec)| rec).collect();

    // A phase becomes active when the first lane reaches it.
    let mut first_seen: BTreeMap<usize, f64> = BTreeMap::new();
    first_seen.insert(0, exec_start);
    for lane in &lanes {
        for &(phase, t) in &lane.phase_first {
            first_seen
                .entry(phase)
                .and_modify(|cur| *cur = cur.min(t))
                .or_insert(t);
        }
    }
    let mut phase_change_times: Vec<(usize, f64)> = first_seen.into_iter().collect();
    phase_change_times.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

    let exec_end = lanes
        .iter()
        .map(|l| l.final_clock)
        .fold(exec_start, f64::max);

    let mut recorder = LaneRecorder::new(exec_start, interval_width)?;
    for lane in &lanes {
        recorder.merge(&lane.recorder)?;
    }

    let mut faults = FaultStats::default();
    for lane in &lanes {
        faults.merge(&lane.faults);
    }

    let record = RunRecord {
        sut_name,
        scenario_name: scenario.name.clone(),
        phase_names: scenario
            .workload
            .phases()
            .iter()
            .map(|p| p.name.clone())
            .collect(),
        ops,
        phase_change_times,
        train,
        exec_start,
        exec_end,
        final_metrics,
        work_units_per_second: scenario.work_units_per_second,
        faults,
    };
    Ok(EngineReport {
        record,
        latency: recorder.hist,
        completions: recorder.counts,
        threads,
        lanes: lane_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_sum_fieldwise() {
        let a = SutMetrics {
            size_bytes: 10,
            training_work: 1,
            execution_work: 100,
            model_count: 2,
            adaptations: 3,
            label_collection_work: 4,
        };
        let b = SutMetrics {
            size_bytes: 20,
            training_work: 2,
            execution_work: 200,
            model_count: 1,
            adaptations: 5,
            label_collection_work: 6,
        };
        let s = sum_metrics([a, b]);
        assert_eq!(s.size_bytes, 30);
        assert_eq!(s.training_work, 3);
        assert_eq!(s.execution_work, 300);
        assert_eq!(s.model_count, 3);
        assert_eq!(s.adaptations, 8);
        assert_eq!(s.label_collection_work, 10);
    }
}
