//! The concurrent execution engine.
//!
//! The serial driver ([`crate::driver`]) runs one operation at a time on
//! one virtual clock. This module executes the same scenarios with **N
//! logical lanes** mapped onto **M worker threads**, in either of the two
//! textbook load models:
//!
//! * **Closed loop** — each lane issues its next operation as soon as the
//!   previous one completes; latency is pure service time.
//! * **Open loop** — operations arrive on their own schedule, taken from
//!   the scenario's [`ArrivalSpec`](crate::scenario::ArrivalSpec). The
//!   engine pre-computes every operation's *intended* start time from the
//!   seeded arrival process and measures latency as *completion −
//!   intended start*. A lane that falls behind does not slow the arrival
//!   schedule down, so queueing delay is fully charged to the operations
//!   that queued — the measurement is **coordinated-omission-safe**.
//!
//! Lanes — not threads — determine results: every lane runs the serial
//! driver's loop on its own virtual clock over its own operation
//! subsequence, so a run with 4 lanes produces bit-identical merged
//! output whether it used 1, 2, or 4 worker threads. Workers pull
//! pre-partitioned operation `Batch`es over crossbeam
//! channels (lane → worker by `lane % threads`).
//!
//! Two sharing models are provided:
//!
//! * [`run_concurrent_kv_scenario`] — all lanes execute against **one
//!   shared SUT** behind a mutex (lane index = stream index mod lanes).
//!   The lock provides physical exclusion only; virtual time assumes the
//!   lanes proceed in parallel. Deterministic for read-only workloads;
//!   with writes, SUT-internal adaptation may depend on thread
//!   interleaving.
//! * [`run_sharded_kv_scenario`] — the key space is split at dataset-key
//!   quantiles ([`shard_dataset`]) and each lane **owns one shard SUT**
//!   (lane index = [`KeyRouter::route`]). Deterministic even with writes,
//!   since each shard observes exactly its own key-ordered subsequence.
//!
//! The merged [`EngineReport`] contains a [`RunRecord`] of the exact
//! shape the serial driver produces, so adaptability, SLA-band, and
//! specialization metrics work on concurrent runs unchanged.

pub(crate) mod latency;
mod merge;
pub mod sched;
mod shard;
mod worker;

pub use sched::{run_open_loop_kv_scenario, run_open_loop_kv_scenario_observed};
pub use shard::{shard_dataset, KeyRouter};

use crate::driver::DriverConfig;
use crate::faults::FaultSession;
use crate::obs::{LaneObs, RunObserver};
use crate::record::{RunRecord, TrainInfo};
use crate::runner::ExecutionMode;
use crate::scenario::Scenario;
use crate::{BenchError, Result};
use crossbeam::channel::{unbounded, Receiver, Sender};
use lsbench_stats::{IntervalCounts, LatencyHistogram};
use lsbench_sut::sut::SystemUnderTest;
use lsbench_workload::arrival::ArrivalGenerator;
use lsbench_workload::ops::Operation;
use lsbench_workload::phases::LabeledOp;
use merge::{merge_lanes, sum_metrics, MergeContext};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use worker::{run_worker, Batch, LaneOp, LaneParams, LaneResult, WorkerSut};

/// One lane's shard assignment handed to a worker.
type ShardSlot<'a> = (usize, &'a mut Box<dyn SystemUnderTest<Operation> + Send>);

/// Concurrent-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Worker threads (physical parallelism; never affects results).
    pub threads: usize,
    /// Logical lanes (determines the partitioning and the results).
    pub lanes: usize,
    /// Cap on executed operations.
    pub max_ops: u64,
    /// Operations per channel batch.
    pub batch_size: usize,
    /// Width of the per-interval completion counters, in virtual seconds.
    pub completion_interval: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            lanes: 1,
            max_ops: u64::MAX,
            batch_size: 1024,
            completion_interval: 0.01,
        }
    }
}

impl EngineConfig {
    /// `n` threads driving `n` lanes — the common "scale both" shape the
    /// CLI's `--threads` flag uses.
    pub fn with_concurrency(n: usize) -> Self {
        EngineConfig {
            threads: n,
            lanes: n,
            ..EngineConfig::default()
        }
    }

    /// Derives an engine configuration from the serial driver's knobs.
    pub fn from_driver(config: &DriverConfig) -> Self {
        let (threads, lanes) = match config.mode {
            ExecutionMode::Serial => (1, 1),
            ExecutionMode::SharedLock { workers } | ExecutionMode::Sharded { workers } => {
                (workers.max(1), workers.max(1))
            }
            ExecutionMode::OpenLoop { clients, workers } => (workers.max(1), clients.max(1)),
        };
        EngineConfig {
            threads,
            lanes,
            max_ops: config.max_ops,
            ..EngineConfig::default()
        }
    }

    fn validate(&self) -> Result<()> {
        if self.threads == 0 || self.lanes == 0 || self.batch_size == 0 {
            return Err(BenchError::InvalidScenario(
                "engine threads, lanes, and batch_size must be at least 1".to_string(),
            ));
        }
        if !(self.completion_interval > 0.0 && self.completion_interval.is_finite()) {
            return Err(BenchError::InvalidScenario(
                "engine completion_interval must be positive and finite".to_string(),
            ));
        }
        Ok(())
    }
}

/// Result of a concurrent run: the merged serial-shaped record plus the
/// engine's own mergeable statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineReport {
    /// Merged run record, same shape as the serial driver's.
    pub record: RunRecord,
    /// Log-bucketed latency histogram (nanoseconds of virtual time).
    pub latency: LatencyHistogram,
    /// Completions per fixed-width interval, anchored at `exec_start`.
    pub completions: IntervalCounts,
    /// Worker threads used.
    pub threads: usize,
    /// Logical lanes used.
    pub lanes: usize,
}

/// Pre-computes every operation's intended start time (absolute virtual
/// seconds) from the scenario's seeded arrival process. Returns `None`
/// for closed-loop scenarios.
///
/// Per-phase [`concurrency_burst`](lsbench_workload::phases::WorkloadPhase::concurrency_burst)
/// factors divide the inter-arrival gaps while their phase is active, so a
/// burst of 2.0 doubles the offered load for that stretch of the stream.
pub(crate) fn intended_times(
    scenario: &Scenario,
    labeled: &[LabeledOp],
    exec_start: f64,
) -> Result<Option<Vec<f64>>> {
    let Some(spec) = &scenario.arrival else {
        return Ok(None);
    };
    let mut generator = ArrivalGenerator::new(spec.process, spec.modulation, spec.seed)
        .map_err(|e| BenchError::Workload(e.to_string()))?;
    let phases = scenario.workload.phases();
    let mut raw_prev = 0.0f64;
    let mut scaled = 0.0f64;
    let mut out = Vec::with_capacity(labeled.len());
    for op in labeled {
        let raw = generator.next_arrival();
        let gap = raw - raw_prev;
        raw_prev = raw;
        let burst = phases
            .get(op.phase)
            .map(|p| p.concurrency_burst)
            .unwrap_or(1.0);
        scaled += gap / burst;
        out.push(exec_start + scaled);
    }
    Ok(Some(out))
}

/// Splits one lane's operations into channel batches, marking the last.
fn make_batches(lane: usize, ops: Vec<LaneOp>, batch_size: usize) -> Vec<Batch> {
    let mut batches: Vec<Batch> = Vec::with_capacity(ops.len().div_ceil(batch_size));
    let mut current = Vec::with_capacity(batch_size.min(ops.len()));
    for op in ops {
        current.push(op);
        if current.len() == batch_size {
            batches.push(Batch {
                lane,
                ops: std::mem::take(&mut current),
                last: false,
            });
        }
    }
    if !current.is_empty() {
        batches.push(Batch {
            lane,
            ops: current,
            last: true,
        });
    } else if let Some(last) = batches.last_mut() {
        last.last = true;
    }
    batches
}

/// Streams the scenario workload, capped at `max_ops`.
fn collect_stream(scenario: &Scenario, max_ops: u64) -> Result<Vec<LabeledOp>> {
    let stream = scenario
        .workload
        .stream()
        .map_err(|e| BenchError::Workload(e.to_string()))?;
    let cap = scenario.workload.total_ops().min(max_ops) as usize;
    Ok(stream.take(cap).collect())
}

/// Sends every lane's batches to its worker's channel, then hangs up.
fn enqueue_lanes(
    lane_ops: Vec<Vec<LaneOp>>,
    senders: Vec<Sender<Batch>>,
    batch_size: usize,
) -> Result<()> {
    let threads = senders.len();
    for (lane, ops) in lane_ops.into_iter().enumerate() {
        if ops.is_empty() {
            continue;
        }
        let sender = &senders[lane % threads];
        for batch in make_batches(lane, ops, batch_size) {
            sender
                .send(batch)
                .map_err(|_| BenchError::Sut("engine worker hung up early".to_string()))?;
        }
    }
    Ok(())
}

/// Joins worker handles, surfacing the first error or panic.
fn join_workers(
    handles: Vec<std::thread::ScopedJoinHandle<'_, Result<Vec<LaneResult>>>>,
) -> Result<Vec<LaneResult>> {
    let mut all = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(Ok(mut lanes)) => all.append(&mut lanes),
            Ok(Err(e)) => return Err(e),
            Err(_) => return Err(BenchError::Sut("engine worker panicked".to_string())),
        }
    }
    Ok(all)
}

/// Runs a scenario with every lane executing against one **shared** SUT
/// behind a mutex. Operations are dealt to lanes round-robin
/// (`stream index mod lanes`).
///
/// The mutex provides physical mutual exclusion only; each lane keeps its
/// own virtual clock, so the model is an N-way parallel server over
/// shared state. Only the globally first operation of each phase
/// announces the phase change. Results are deterministic for read-only
/// workloads; use [`run_sharded_kv_scenario`] when writes must stay
/// reproducible.
pub fn run_concurrent_kv_scenario<S>(
    sut: &mut S,
    scenario: &Scenario,
    config: &EngineConfig,
) -> Result<EngineReport>
where
    S: SystemUnderTest<Operation> + Send + ?Sized,
{
    run_concurrent_kv_scenario_observed(sut, scenario, config, &mut RunObserver::disabled())
}

/// [`run_concurrent_kv_scenario`] with observability: lanes accumulate
/// events and counters locally (on their own virtual clocks) and the
/// observer absorbs them at join, so the merged trace is deterministic for
/// any worker-thread count. The returned [`EngineReport`] is bit-identical
/// whether the observer is active or [`RunObserver::disabled`].
pub fn run_concurrent_kv_scenario_observed<S>(
    sut: &mut S,
    scenario: &Scenario,
    config: &EngineConfig,
    obs: &mut RunObserver,
) -> Result<EngineReport>
where
    S: SystemUnderTest<Operation> + Send + ?Sized,
{
    scenario.validate()?;
    config.validate()?;
    let rate = scenario.work_units_per_second;
    let labeled = collect_stream(scenario, config.max_ops)?;

    let sut_name = sut.name();
    obs.train_start(0.0, scenario.train_budget);
    let train_work = sut.train(scenario.train_budget);
    let exec_start = train_work as f64 / rate;
    let train = TrainInfo {
        work: train_work,
        seconds: exec_start,
    };
    obs.train_end(exec_start, train_work);
    obs.root.phase_change(exec_start, 0);

    let intended = intended_times(scenario, &labeled, exec_start)?;
    let lanes = config.lanes;
    let mut lane_ops: Vec<Vec<LaneOp>> = vec![Vec::new(); lanes];
    let mut current_phase = 0usize;
    for (i, op) in labeled.iter().enumerate() {
        let announce = op.phase != current_phase;
        if announce {
            current_phase = op.phase;
        }
        lane_ops[i % lanes].push(LaneOp {
            labeled: *op,
            idx: i as u64,
            intended: intended.as_ref().map(|v| v[i]),
            announce,
        });
    }

    let threads = config.threads.min(lanes).max(1);
    let params = LaneParams {
        rate,
        maintenance_every: scenario.maintenance_every,
        online_train: scenario.online_train,
        exec_start,
        interval_width: config.completion_interval,
        obs_cfg: *obs.config(),
        obs_active: obs.is_active(),
    };
    let fault_session = FaultSession::from_scenario(scenario);
    let mutex = Mutex::new(sut);
    let mut senders: Vec<Sender<Batch>> = Vec::with_capacity(threads);
    let mut receivers: Vec<Receiver<Batch>> = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    // `enqueue_lanes` consumes the senders, so workers see end-of-stream
    // once every batch is queued.
    enqueue_lanes(lane_ops, senders, config.batch_size)?;

    let lane_results = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for rx in receivers {
            let mutex_ref = &mutex;
            let session = fault_session.as_ref();
            handles.push(
                scope.spawn(move || run_worker(rx, WorkerSut::Shared(mutex_ref), &params, session)),
            );
        }
        join_workers(handles)
    })?;

    let final_metrics = mutex
        .into_inner()
        .map_err(|_| BenchError::Sut("shared SUT mutex poisoned".to_string()))?
        .metrics();
    let report = merge_lanes(
        absorb_lane_obs(lane_results, obs),
        MergeContext {
            sut_name,
            scenario,
            train,
            exec_start,
            final_metrics,
            interval_width: config.completion_interval,
            threads,
            lanes,
        },
    )?;
    finish_engine_obs(obs, &report);
    Ok(report)
}

/// Moves each lane's observability state into the run observer, leaving
/// the lane results themselves ready for merging.
fn absorb_lane_obs(mut lane_results: Vec<LaneResult>, obs: &mut RunObserver) -> Vec<LaneResult> {
    if obs.is_active() {
        let lane_obs = lane_results
            .iter_mut()
            .map(|l| std::mem::replace(&mut l.obs, LaneObs::inert()))
            .collect();
        obs.absorb(lane_obs);
    }
    lane_results
}

/// Coordinator-side events once the merge is done: the merge itself and
/// the end of the run, both stamped at the merged `exec_end`.
fn finish_engine_obs(obs: &mut RunObserver, report: &EngineReport) {
    let end = report.record.exec_end;
    obs.shard_merge(end, report.lanes, report.threads);
    obs.run_end(end, report.record.ops.len() as u64);
}

/// Runs a scenario over **key-range-sharded** SUTs: `suts[i]` owns shard
/// `i` of the key space and is driven by lane `i`. The lane for every
/// operation is `router.route(op)`, so the partition — and the merged
/// result — is identical for any worker count, even with writes.
///
/// Shard SUTs train in parallel: total training work is the sum, but
/// execution starts once the *slowest* shard finishes training. Each lane
/// announces phase changes to its own shard. `suts` is borrowed mutably
/// so callers can keep using the shards afterwards (e.g. for a hold-out
/// pass); final metrics are the field-wise sum across shards.
pub fn run_sharded_kv_scenario(
    suts: &mut [Box<dyn SystemUnderTest<Operation> + Send>],
    router: &KeyRouter,
    scenario: &Scenario,
    config: &EngineConfig,
) -> Result<EngineReport> {
    run_sharded_kv_scenario_observed(suts, router, scenario, config, &mut RunObserver::disabled())
}

/// [`run_sharded_kv_scenario`] with observability; see
/// [`run_concurrent_kv_scenario_observed`] for the guarantees.
pub fn run_sharded_kv_scenario_observed(
    suts: &mut [Box<dyn SystemUnderTest<Operation> + Send>],
    router: &KeyRouter,
    scenario: &Scenario,
    config: &EngineConfig,
    obs: &mut RunObserver,
) -> Result<EngineReport> {
    scenario.validate()?;
    config.validate()?;
    if suts.is_empty() {
        return Err(BenchError::InvalidScenario(
            "sharded run needs at least one SUT".to_string(),
        ));
    }
    if suts.len() != router.shards() {
        return Err(BenchError::InvalidScenario(format!(
            "router splits {} ways but {} shard SUTs were given",
            router.shards(),
            suts.len()
        )));
    }
    let rate = scenario.work_units_per_second;
    let labeled = collect_stream(scenario, config.max_ops)?;

    let sut_name = suts[0].name();
    obs.train_start(0.0, scenario.train_budget);
    let mut train_work_total = 0u64;
    let mut slowest_train = 0u64;
    for sut in suts.iter_mut() {
        let work = sut.train(scenario.train_budget);
        train_work_total += work;
        slowest_train = slowest_train.max(work);
    }
    let exec_start = slowest_train as f64 / rate;
    let train = TrainInfo {
        work: train_work_total,
        seconds: exec_start,
    };
    obs.train_end(exec_start, train_work_total);
    obs.root.phase_change(exec_start, 0);

    let intended = intended_times(scenario, &labeled, exec_start)?;
    let lanes = suts.len();
    let mut lane_ops: Vec<Vec<LaneOp>> = vec![Vec::new(); lanes];
    let mut lane_phase = vec![0usize; lanes];
    for (i, op) in labeled.iter().enumerate() {
        let lane = router.route(&op.op);
        let announce = op.phase != lane_phase[lane];
        if announce {
            lane_phase[lane] = op.phase;
        }
        lane_ops[lane].push(LaneOp {
            labeled: *op,
            idx: i as u64,
            intended: intended.as_ref().map(|v| v[i]),
            announce,
        });
    }

    let threads = config.threads.min(lanes).max(1);
    let params = LaneParams {
        rate,
        maintenance_every: scenario.maintenance_every,
        online_train: scenario.online_train,
        exec_start,
        interval_width: config.completion_interval,
        obs_cfg: *obs.config(),
        obs_active: obs.is_active(),
    };
    let mut senders: Vec<Sender<Batch>> = Vec::with_capacity(threads);
    let mut receivers: Vec<Receiver<Batch>> = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    enqueue_lanes(lane_ops, senders, config.batch_size)?;

    let fault_session = FaultSession::from_scenario(scenario);
    let mut per_worker: Vec<Vec<ShardSlot<'_>>> = (0..threads).map(|_| Vec::new()).collect();
    for (lane, sut) in suts.iter_mut().enumerate() {
        per_worker[lane % threads].push((lane, sut));
    }

    let lane_results = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (rx, worker_suts) in receivers.into_iter().zip(per_worker) {
            let session = fault_session.as_ref();
            handles.push(scope.spawn(move || {
                let suts: WorkerSut<'_, '_, dyn SystemUnderTest<Operation> + Send> =
                    WorkerSut::Sharded(worker_suts);
                run_worker(rx, suts, &params, session)
            }));
        }
        join_workers(handles)
    })?;

    let final_metrics = sum_metrics(suts.iter().map(|s| s.metrics()));
    let report = merge_lanes(
        absorb_lane_obs(lane_results, obs),
        MergeContext {
            sut_name,
            scenario,
            train,
            exec_start,
            final_metrics,
            interval_width: config.completion_interval,
            threads,
            lanes,
        },
    )?;
    finish_engine_obs(obs, &report);
    Ok(report)
}

/// Runs the scenario's hold-out workload once against already-run shard
/// SUTs (single pass, no maintenance, no phase announcements — the same
/// adaptation-free contract as [`crate::holdout::run_holdout`]).
pub fn run_sharded_holdout(
    suts: &mut [Box<dyn SystemUnderTest<Operation> + Send>],
    router: &KeyRouter,
    scenario: &Scenario,
    config: &EngineConfig,
) -> Result<EngineReport> {
    let one_shot = crate::holdout::one_shot_scenario(scenario)?;
    run_sharded_kv_scenario(suts, router, &one_shot, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_kv_scenario;
    use crate::scenario::ArrivalSpec;
    use lsbench_sut::kv::BTreeSut;
    use lsbench_sut::sut::{ExecOutcome, SutMetrics};
    use lsbench_sut::Result as SutResult;
    use lsbench_workload::arrival::{ArrivalProcess, LoadModulation};
    use lsbench_workload::dataset::Dataset;
    use lsbench_workload::keygen::KeyDistribution;
    use lsbench_workload::ops::OperationMix;
    use lsbench_workload::phases::{PhasedWorkload, TransitionKind, WorkloadPhase};

    fn shift_scenario() -> Scenario {
        Scenario::two_phase_shift(
            "engine-shift",
            KeyDistribution::Uniform,
            KeyDistribution::Normal {
                center: 0.1,
                std_frac: 0.02,
            },
            5_000,
            2_000,
            42,
        )
        .unwrap()
    }

    fn boxed_shards(datasets: &[Dataset]) -> Vec<Box<dyn SystemUnderTest<Operation> + Send>> {
        datasets
            .iter()
            .map(|d| {
                Box::new(BTreeSut::build(d).unwrap()) as Box<dyn SystemUnderTest<Operation> + Send>
            })
            .collect()
    }

    #[test]
    fn lanes1_closed_loop_matches_serial_driver() {
        let s = shift_scenario();
        let data = s.dataset.build().unwrap();
        let mut serial_sut = BTreeSut::build(&data).unwrap();
        let serial = run_kv_scenario(&mut serial_sut, &s, DriverConfig::default()).unwrap();
        let mut engine_sut = BTreeSut::build(&data).unwrap();
        let report =
            run_concurrent_kv_scenario(&mut engine_sut, &s, &EngineConfig::default()).unwrap();
        // One lane, closed loop: the engine *is* the serial driver —
        // bit-identical virtual timeline, not just statistically close.
        assert_eq!(report.record.ops, serial.ops);
        assert_eq!(report.record.phase_change_times, serial.phase_change_times);
        assert_eq!(report.record.exec_start, serial.exec_start);
        assert_eq!(report.record.exec_end, serial.exec_end);
        assert_eq!(report.record.final_metrics, serial.final_metrics);
        assert_eq!(report.latency.total(), serial.ops.len() as u64);
        assert_eq!(report.completions.total(), serial.ops.len() as u64);
    }

    #[test]
    fn shared_mode_is_thread_invariant_for_reads() {
        let s = shift_scenario();
        let data = s.dataset.build().unwrap();
        let run = |threads: usize| {
            let mut sut = BTreeSut::build(&data).unwrap();
            let config = EngineConfig {
                threads,
                lanes: 4,
                ..EngineConfig::default()
            };
            run_concurrent_kv_scenario(&mut sut, &s, &config).unwrap()
        };
        let one = run(1);
        let two = run(2);
        let four = run(4);
        for other in [&two, &four] {
            assert_eq!(one.record.ops, other.record.ops);
            assert_eq!(
                one.record.phase_change_times,
                other.record.phase_change_times
            );
            assert_eq!(one.record.exec_end, other.record.exec_end);
            assert_eq!(one.latency, other.latency);
            assert_eq!(one.completions, other.completions);
        }
        assert_eq!(one.record.ops.len(), 4_000);
    }

    #[test]
    fn sharded_lanes_raise_throughput() {
        let s = shift_scenario();
        let data = s.dataset.build().unwrap();
        let mut serial_sut = BTreeSut::build(&data).unwrap();
        let serial = run_kv_scenario(&mut serial_sut, &s, DriverConfig::default()).unwrap();
        let (router, datasets) = shard_dataset(&data, 4).unwrap();
        let mut suts = boxed_shards(&datasets);
        let report =
            run_sharded_kv_scenario(&mut suts, &router, &s, &EngineConfig::with_concurrency(4))
                .unwrap();
        assert_eq!(report.record.completed(), serial.completed());
        // Four closed-loop lanes advance four clocks in parallel, so the
        // merged run finishes far sooner than the serial one.
        assert!(
            report.record.mean_throughput() > 2.0 * serial.mean_throughput(),
            "sharded {} vs serial {}",
            report.record.mean_throughput(),
            serial.mean_throughput()
        );
    }

    #[test]
    fn sharded_mode_is_thread_invariant_with_writes() {
        let mut s = shift_scenario();
        let key_range = (0u64, 10_000_000u64);
        let write_mix = OperationMix {
            read: 0.6,
            insert: 0.3,
            update: 0.1,
            scan: 0.0,
            delete: 0.0,
            max_scan_len: 0,
        };
        s.workload = PhasedWorkload::new(
            vec![
                WorkloadPhase::new(
                    "reads",
                    KeyDistribution::Uniform,
                    key_range,
                    OperationMix::ycsb_c(),
                    2_000,
                ),
                WorkloadPhase::new(
                    "writes",
                    KeyDistribution::Uniform,
                    key_range,
                    write_mix,
                    2_000,
                ),
            ],
            vec![TransitionKind::Abrupt],
            42,
        )
        .unwrap();
        let data = s.dataset.build().unwrap();
        let (router, datasets) = shard_dataset(&data, 4).unwrap();
        let run = |threads: usize| {
            let mut suts = boxed_shards(&datasets);
            let config = EngineConfig {
                threads,
                lanes: 4,
                ..EngineConfig::default()
            };
            run_sharded_kv_scenario(&mut suts, &router, &s, &config).unwrap()
        };
        let one = run(1);
        let two = run(2);
        let four = run(4);
        for other in [&two, &four] {
            // Key-range routing fixes each shard's op subsequence, so even
            // mutating workloads merge identically for any thread count.
            assert_eq!(one.record.ops, other.record.ops);
            assert_eq!(
                one.record.phase_change_times,
                other.record.phase_change_times
            );
            assert_eq!(one.record.exec_end, other.record.exec_end);
            assert_eq!(one.record.final_metrics, other.record.final_metrics);
            assert_eq!(one.latency, other.latency);
            assert_eq!(one.completions, other.completions);
        }
        assert_eq!(one.record.completed(), 4_000);
    }

    /// A deliberately slow SUT: 200 work units per op = 5 000 ops/s
    /// capacity at the default 1 M work-units/s rate.
    struct SlowSut;
    impl SystemUnderTest<Operation> for SlowSut {
        fn name(&self) -> String {
            "slow".to_string()
        }
        fn train(&mut self, _budget: u64) -> u64 {
            0
        }
        fn execute(&mut self, _op: &Operation) -> SutResult<ExecOutcome> {
            Ok(ExecOutcome::ok(200))
        }
        fn metrics(&self) -> SutMetrics {
            SutMetrics::default()
        }
    }

    #[test]
    fn open_loop_overload_charges_queueing_delay() {
        // 10k ops/s offered against a 5k ops/s server: the queue grows for
        // the whole run. A coordinated-omission-prone driver would report
        // flat per-op service times; measuring from *intended* start makes
        // the linearly growing wait visible.
        let mut s = shift_scenario();
        s.arrival = Some(ArrivalSpec {
            process: ArrivalProcess::Uniform { rate: 10_000.0 },
            modulation: LoadModulation::Constant,
            seed: 9,
        });
        let mut sut = SlowSut;
        let report = run_concurrent_kv_scenario(&mut sut, &s, &EngineConfig::default()).unwrap();
        let ops = &report.record.ops;
        assert_eq!(ops.len(), 4_000);
        let mean = |slice: &[crate::record::OpRecord]| {
            slice.iter().map(|o| o.latency).sum::<f64>() / slice.len() as f64
        };
        let early = mean(&ops[..200]);
        let late = mean(&ops[ops.len() - 200..]);
        assert!(
            late > 10.0 * early,
            "queueing delay should grow: early {early} late {late}"
        );
        // Every op's latency is at least its 200-unit service time.
        assert!(ops.iter().all(|o| o.latency >= 200.0 / 1e6));
    }

    #[test]
    fn intended_times_track_poisson_rate() {
        let mut s = shift_scenario();
        let rate = 5_000.0;
        s.arrival = Some(ArrivalSpec {
            process: ArrivalProcess::Poisson { rate },
            modulation: LoadModulation::Constant,
            seed: 17,
        });
        let labeled = collect_stream(&s, u64::MAX).unwrap();
        let times = intended_times(&s, &labeled, 0.5).unwrap().unwrap();
        assert_eq!(times.len(), 4_000);
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert!(times[0] >= 0.5);
        let span = times.last().unwrap() - 0.5;
        let observed = times.len() as f64 / span;
        assert!(
            (observed - rate).abs() / rate < 0.1,
            "observed rate {observed} vs {rate}"
        );
    }

    #[test]
    fn concurrency_burst_compresses_phase_arrivals() {
        let mut s = shift_scenario();
        let key_range = (0u64, 10_000_000u64);
        let phase = |name: &str, ops| {
            WorkloadPhase::new(
                name,
                KeyDistribution::Uniform,
                key_range,
                OperationMix::ycsb_c(),
                ops,
            )
        };
        s.workload = PhasedWorkload::new(
            vec![
                phase("steady", 2_000),
                phase("burst", 2_000).with_concurrency_burst(2.0),
            ],
            vec![TransitionKind::Abrupt],
            7,
        )
        .unwrap();
        s.arrival = Some(ArrivalSpec {
            process: ArrivalProcess::Uniform { rate: 1_000.0 },
            modulation: LoadModulation::Constant,
            seed: 7,
        });
        let labeled = collect_stream(&s, u64::MAX).unwrap();
        let times = intended_times(&s, &labeled, 0.0).unwrap().unwrap();
        let span0 = times[1_999] - times[0];
        let span1 = times[3_999] - times[2_000];
        // Burst 2.0 halves the inter-arrival gaps, doubling offered load.
        let ratio = span0 / span1;
        assert!((ratio - 2.0).abs() < 0.02, "span ratio {ratio}");
    }

    #[test]
    fn config_validation_rejects_degenerate_knobs() {
        let s = shift_scenario();
        let data = s.dataset.build().unwrap();
        let mut sut = BTreeSut::build(&data).unwrap();
        for bad in [
            EngineConfig {
                threads: 0,
                ..EngineConfig::default()
            },
            EngineConfig {
                lanes: 0,
                ..EngineConfig::default()
            },
            EngineConfig {
                batch_size: 0,
                ..EngineConfig::default()
            },
            EngineConfig {
                completion_interval: 0.0,
                ..EngineConfig::default()
            },
            EngineConfig {
                completion_interval: f64::NAN,
                ..EngineConfig::default()
            },
        ] {
            assert!(run_concurrent_kv_scenario(&mut sut, &s, &bad).is_err());
        }
        // Shard-count mismatch is rejected too.
        let (router, datasets) = shard_dataset(&data, 3).unwrap();
        let mut suts = boxed_shards(&datasets[..2]);
        assert!(run_sharded_kv_scenario(&mut suts, &router, &s, &EngineConfig::default()).is_err());
    }

    #[test]
    fn max_ops_caps_the_stream() {
        let s = shift_scenario();
        let data = s.dataset.build().unwrap();
        let mut sut = BTreeSut::build(&data).unwrap();
        let config = EngineConfig {
            max_ops: 100,
            ..EngineConfig::with_concurrency(2)
        };
        let report = run_concurrent_kv_scenario(&mut sut, &s, &config).unwrap();
        assert_eq!(report.record.completed(), 100);
    }

    #[test]
    fn sharded_holdout_runs_once_without_retraining() {
        let mut s = shift_scenario();
        s.holdout = Some(
            PhasedWorkload::single(
                WorkloadPhase::new(
                    "holdout",
                    KeyDistribution::Uniform,
                    (0, 10_000_000),
                    OperationMix::ycsb_c(),
                    500,
                ),
                99,
            )
            .unwrap(),
        );
        let data = s.dataset.build().unwrap();
        let (router, datasets) = shard_dataset(&data, 2).unwrap();
        let mut suts = boxed_shards(&datasets);
        let config = EngineConfig::with_concurrency(2);
        let main = run_sharded_kv_scenario(&mut suts, &router, &s, &config).unwrap();
        let hold = run_sharded_holdout(&mut suts, &router, &s, &config).unwrap();
        assert_eq!(hold.record.completed(), 500);
        assert_eq!(hold.record.train.work, 0, "hold-out must not retrain");
        let report = crate::HoldoutReport::new(&main.record, &hold.record).unwrap();
        assert!(report.generalization_ratio > 0.0);
    }
}
