//! Event-heap scheduler: millions of open-loop clients on a worker pool.
//!
//! The classic engine modes pin lanes 1:1 to pre-partitioned op streams,
//! so "concurrency" tops out at a few workers. This module models the
//! population the north star actually asks about — *millions of
//! simulated open-loop clients* — by decoupling clients from threads:
//!
//! * The global op stream is dealt round-robin to `clients` virtual
//!   clients (`stream index mod clients`), and every op gets an
//!   *intended* start time drawn from the scenario's seeded arrival
//!   process — computed exactly as the serial driver computes it
//!   (`exec_start + generator.next_arrival()`), so a one-client run is
//!   bit-identical to the serial driver. (Per-phase `concurrency_burst`
//!   factors are ignored here, as they are in the serial driver: the
//!   arrival process *is* the offered load.)
//! * Clients are assigned to workers by `client mod workers`. Each
//!   worker drives its clients through a binary **event heap** keyed on
//!   `(virtual deadline, client id)`: pop the next-due client, execute
//!   one op via the same `step_op` the lane workers use, push the
//!   client back with its next op's deadline. Per-client state is four
//!   scalars (`ClientState`) and all result sinks are per-worker
//!   (`LaneSinks`), so bookkeeping is O(1) per event and memory is
//!   O(clients + ops), never O(clients × histogram).
//! * Events are popped in batches of [`EngineConfig::batch_size`] so the
//!   shared-SUT mutex is taken once per batch instead of once per op.
//!
//! Determinism survives the multiplexing because every op's outcome is a
//! function of *its client's* state only — the heap decides *when a
//! worker gets around to* an op, never what the op computes — and every
//! sink merges order-insensitively: op records re-sort on
//! `(completion time, global index)`, phase first-seen times min-fold,
//! histograms and counters add. Records are therefore bit-identical at
//! any worker count (the same contract, and the same read-only caveat on
//! a shared SUT, as [`run_concurrent_kv_scenario`]).
//!
//! [`run_concurrent_kv_scenario`]: super::run_concurrent_kv_scenario

use super::merge::{merge_clients, MergeContext};
use super::worker::{step_op, ClientState, LaneOp, LaneParams, LaneResult, LaneSinks};
use super::{absorb_lane_obs, collect_stream, finish_engine_obs, EngineConfig, EngineReport};
use crate::faults::FaultSession;
use crate::obs::RunObserver;
use crate::record::TrainInfo;
use crate::scenario::Scenario;
use crate::{BenchError, Result};
use lsbench_workload::arrival::ArrivalGenerator;
use lsbench_workload::ops::Operation;
use lsbench_workload::phases::LabeledOp;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Mutex;

use lsbench_sut::sut::SystemUnderTest;

/// One pending client event: the client's next op and when it is due.
#[derive(Debug, Clone, Copy)]
struct Event {
    /// Virtual time the op will start: `max(client clock, intended)`.
    deadline: f64,
    /// Owning client (deterministic tiebreaker for equal deadlines).
    client: usize,
    /// Global stream index of the client's next op.
    next: usize,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the *earliest*
        // deadline on top.
        other
            .deadline
            .total_cmp(&self.deadline)
            .then(other.client.cmp(&self.client))
    }
}

/// The shared, read-only view of the pre-computed op stream.
#[derive(Clone, Copy)]
struct SchedStream<'a> {
    labeled: &'a [LabeledOp],
    intended: &'a [f64],
    announce: &'a [bool],
}

/// Runs a scenario as `config.lanes` simulated open-loop clients
/// multiplexed onto `config.threads` workers against one shared SUT.
/// Requires an arrival process ([`Scenario::arrival`]); see the
/// [module docs](self) for the determinism contract.
pub fn run_open_loop_kv_scenario<S>(
    sut: &mut S,
    scenario: &Scenario,
    config: &EngineConfig,
) -> Result<EngineReport>
where
    S: SystemUnderTest<Operation> + Send + ?Sized,
{
    run_open_loop_kv_scenario_observed(sut, scenario, config, &mut RunObserver::disabled())
}

/// [`run_open_loop_kv_scenario`] with observability. Metrics, counters,
/// and histograms are worker-count-invariant; the *event trace* is not
/// (trace events interleave per worker), so trace-level comparisons
/// should pin one worker.
pub fn run_open_loop_kv_scenario_observed<S>(
    sut: &mut S,
    scenario: &Scenario,
    config: &EngineConfig,
    obs: &mut RunObserver,
) -> Result<EngineReport>
where
    S: SystemUnderTest<Operation> + Send + ?Sized,
{
    scenario.validate()?;
    config.validate()?;
    let Some(spec) = scenario.arrival else {
        return Err(BenchError::InvalidScenario(
            "open-loop execution requires an [arrival] section: without an arrival \
             process an open loop is just a closed loop"
                .to_string(),
        ));
    };
    let rate = scenario.work_units_per_second;
    let labeled = collect_stream(scenario, config.max_ops)?;

    let sut_name = sut.name();
    obs.train_start(0.0, scenario.train_budget);
    let train_work = sut.train(scenario.train_budget);
    let exec_start = train_work as f64 / rate;
    let train = TrainInfo {
        work: train_work,
        seconds: exec_start,
    };
    obs.train_end(exec_start, train_work);
    obs.root.phase_change(exec_start, 0);

    // Intended start times, computed exactly as the serial driver does
    // (`exec_start + next_arrival()`): bit-for-bit the serial schedule.
    let mut generator = ArrivalGenerator::new(spec.process, spec.modulation, spec.seed)
        .map_err(|e| BenchError::Workload(e.to_string()))?;
    let intended: Vec<f64> = labeled
        .iter()
        .map(|_| exec_start + generator.next_arrival())
        .collect();
    // Only the globally first op of each phase announces the change to
    // the shared SUT (same rule as shared-lanes mode).
    let mut announce = vec![false; labeled.len()];
    let mut current_phase = 0usize;
    for (i, op) in labeled.iter().enumerate() {
        if op.phase != current_phase {
            current_phase = op.phase;
            announce[i] = true;
        }
    }

    let clients = config.lanes;
    let threads = config.threads.min(clients).max(1);
    let params = LaneParams {
        rate,
        maintenance_every: scenario.maintenance_every,
        online_train: scenario.online_train,
        exec_start,
        interval_width: config.completion_interval,
        obs_cfg: *obs.config(),
        obs_active: obs.is_active(),
    };
    let fault_session = FaultSession::from_scenario(scenario);
    let mutex = Mutex::new(sut);
    let stream = SchedStream {
        labeled: &labeled,
        intended: &intended,
        announce: &announce,
    };

    let worker_results = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let mutex_ref = &mutex;
            let params_ref = &params;
            let session = fault_session.as_ref();
            let batch_size = config.batch_size;
            handles.push(scope.spawn(move || {
                run_sched_worker(
                    worker, threads, clients, stream, mutex_ref, params_ref, session, batch_size,
                )
            }));
        }
        let mut all = Vec::with_capacity(threads);
        for handle in handles {
            match handle.join() {
                Ok(Ok(result)) => all.push(result),
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(BenchError::Sut("scheduler worker panicked".to_string())),
            }
        }
        Ok(all)
    })?;

    let final_metrics = mutex
        .into_inner()
        .map_err(|_| BenchError::Sut("shared SUT mutex poisoned".to_string()))?
        .metrics();
    let report = merge_clients(
        absorb_lane_obs(worker_results, obs),
        MergeContext {
            sut_name,
            scenario,
            train,
            exec_start,
            final_metrics,
            interval_width: config.completion_interval,
            threads,
            lanes: clients,
        },
    )?;
    finish_engine_obs(obs, &report);
    Ok(report)
}

/// One scheduler worker: owns every client with `client % threads ==
/// worker`, drives them in event-heap order, and returns one
/// [`LaneResult`] whose `lane` is the worker index (so the observer
/// absorption path is shared with the lane engine).
#[allow(clippy::too_many_arguments)]
fn run_sched_worker<S>(
    worker: usize,
    threads: usize,
    clients: usize,
    stream: SchedStream<'_>,
    mutex: &Mutex<&mut S>,
    params: &LaneParams,
    session: Option<&FaultSession>,
    batch_size: usize,
) -> Result<LaneResult>
where
    S: SystemUnderTest<Operation> + Send + ?Sized,
{
    let total = stream.labeled.len();
    // Client `c` owns global indices c, c + clients, c + 2·clients, …
    // Local slot for client `c` on this worker: (c - worker) / threads.
    let owned = if worker < clients {
        (clients - worker - 1) / threads + 1
    } else {
        0
    };
    let mut states: Vec<ClientState> = vec![ClientState::new(params.exec_start); owned];
    let mut sinks = LaneSinks::new(params, worker)?;
    let mut final_clock = params.exec_start;

    let mut heap: BinaryHeap<Event> = BinaryHeap::with_capacity(owned.min(total));
    let mut client = worker;
    while client < clients && client < total {
        heap.push(Event {
            deadline: stream.intended[client],
            client,
            next: client,
        });
        client += threads;
    }

    let mut batch: Vec<Event> = Vec::with_capacity(batch_size);
    while !heap.is_empty() {
        batch.clear();
        while batch.len() < batch_size {
            match heap.pop() {
                Some(event) => batch.push(event),
                None => break,
            }
        }
        // One lock per batch, not per op: the scheduler's throughput
        // lever. Virtual results cannot tell the difference because each
        // event only touches its own client's clock.
        let mut guard = mutex
            .lock()
            .map_err(|_| BenchError::Sut("shared SUT mutex poisoned".to_string()))?;
        for event in &batch {
            let slot = (event.client - worker) / threads;
            let op = LaneOp {
                labeled: stream.labeled[event.next],
                idx: event.next as u64,
                intended: Some(stream.intended[event.next]),
                announce: stream.announce[event.next],
            };
            step_op(
                &mut states[slot],
                &mut sinks,
                &mut **guard,
                &op,
                params,
                session,
            )?;
            let next = event.next + clients;
            if next < total {
                heap.push(Event {
                    deadline: stream.intended[next].max(states[slot].clock),
                    client: event.client,
                    next,
                });
            } else {
                // The client's last op: pay any remaining adaptation
                // backlog (conservation of adaptation work).
                final_clock = final_clock.max(states[slot].finish());
            }
        }
    }

    Ok(LaneResult {
        lane: worker,
        ops: sinks.ops,
        phase_first: sinks.phase_first,
        final_clock,
        recorder: sinks.recorder,
        obs: sinks.obs,
        faults: sinks.faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_kv_scenario, DriverConfig};
    use crate::scenario::ArrivalSpec;
    use lsbench_sut::kv::BTreeSut;
    use lsbench_workload::arrival::{ArrivalProcess, LoadModulation};
    use lsbench_workload::keygen::KeyDistribution;

    fn open_loop_scenario(rate: f64) -> Scenario {
        let mut s = Scenario::two_phase_shift(
            "sched-shift",
            KeyDistribution::Uniform,
            KeyDistribution::Normal {
                center: 0.1,
                std_frac: 0.02,
            },
            5_000,
            2_000,
            42,
        )
        .unwrap();
        s.arrival = Some(ArrivalSpec {
            process: ArrivalProcess::Poisson { rate },
            modulation: LoadModulation::Constant,
            seed: 7,
        });
        s
    }

    fn config(clients: usize, threads: usize) -> EngineConfig {
        EngineConfig {
            threads,
            lanes: clients,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn one_client_is_bit_identical_to_serial_driver() {
        let s = open_loop_scenario(50_000.0);
        let data = s.dataset.build().unwrap();
        let mut serial_sut = BTreeSut::build(&data).unwrap();
        let serial = run_kv_scenario(&mut serial_sut, &s, DriverConfig::default()).unwrap();
        let mut sched_sut = BTreeSut::build(&data).unwrap();
        let report = run_open_loop_kv_scenario(&mut sched_sut, &s, &config(1, 1)).unwrap();
        assert_eq!(report.record.ops, serial.ops);
        assert_eq!(report.record.phase_change_times, serial.phase_change_times);
        assert_eq!(report.record.exec_end, serial.exec_end);
        assert_eq!(report.record.final_metrics, serial.final_metrics);
    }

    #[test]
    fn records_are_worker_count_invariant() {
        let s = open_loop_scenario(80_000.0);
        let data = s.dataset.build().unwrap();
        let mut baseline = None;
        for threads in [1, 2, 4] {
            let mut sut = BTreeSut::build(&data).unwrap();
            let report = run_open_loop_kv_scenario(&mut sut, &s, &config(500, threads)).unwrap();
            assert_eq!(report.threads, threads.min(500));
            assert_eq!(report.lanes, 500);
            match &baseline {
                None => baseline = Some(report),
                Some(first) => {
                    assert_eq!(report.record.ops, first.record.ops, "threads={threads}");
                    assert_eq!(
                        report.record.phase_change_times,
                        first.record.phase_change_times
                    );
                    assert_eq!(report.record.exec_end, first.record.exec_end);
                    assert_eq!(report.latency, first.latency);
                    assert_eq!(report.completions, first.completions);
                }
            }
        }
    }

    #[test]
    fn batch_size_never_changes_results() {
        let s = open_loop_scenario(80_000.0);
        let data = s.dataset.build().unwrap();
        let mut small_sut = BTreeSut::build(&data).unwrap();
        let small = run_open_loop_kv_scenario(
            &mut small_sut,
            &s,
            &EngineConfig {
                batch_size: 1,
                ..config(64, 4)
            },
        )
        .unwrap();
        let mut big_sut = BTreeSut::build(&data).unwrap();
        let big = run_open_loop_kv_scenario(&mut big_sut, &s, &config(64, 4)).unwrap();
        assert_eq!(small.record.ops, big.record.ops);
        assert_eq!(small.record.exec_end, big.record.exec_end);
    }

    #[test]
    fn more_clients_than_ops_is_fine() {
        let s = open_loop_scenario(50_000.0);
        let data = s.dataset.build().unwrap();
        let mut sut = BTreeSut::build(&data).unwrap();
        let report = run_open_loop_kv_scenario(&mut sut, &s, &config(10_000, 4)).unwrap();
        // Two phases of 2 000 ops each; clients beyond the op count simply
        // never fire.
        assert_eq!(report.record.ops.len(), 4_000);
        assert_eq!(report.lanes, 10_000);
    }

    #[test]
    fn closed_loop_scenario_is_rejected() {
        let s = Scenario::two_phase_shift(
            "sched-closed",
            KeyDistribution::Uniform,
            KeyDistribution::Uniform,
            2_000,
            200,
            42,
        )
        .unwrap();
        let data = s.dataset.build().unwrap();
        let mut sut = BTreeSut::build(&data).unwrap();
        let err = run_open_loop_kv_scenario(&mut sut, &s, &config(8, 2)).unwrap_err();
        assert!(err.to_string().contains("arrival"));
    }

    #[test]
    fn overload_charges_queueing_delay() {
        // Arrivals far faster than the SUT can serve: open-loop latency
        // must include queueing, so the p99 dwarfs the underloaded run's.
        let fast = open_loop_scenario(1_000_000_000.0);
        let slow = open_loop_scenario(1_000.0);
        let data = fast.dataset.build().unwrap();
        let mut overloaded = BTreeSut::build(&data).unwrap();
        let over = run_open_loop_kv_scenario(&mut overloaded, &fast, &config(4, 2)).unwrap();
        let mut relaxed = BTreeSut::build(&data).unwrap();
        let under = run_open_loop_kv_scenario(&mut relaxed, &slow, &config(4, 2)).unwrap();
        let over_p99 = over.latency.quantile(0.99).unwrap();
        let under_p99 = under.latency.quantile(0.99).unwrap();
        assert!(
            over_p99 > under_p99,
            "overload p99 {over_p99}ns should exceed underload p99 {under_p99}ns"
        );
    }
}
