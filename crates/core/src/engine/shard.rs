//! Key-range sharding for the concurrent engine.
//!
//! A [`KeyRouter`] splits the key space at dataset-key quantiles so each
//! shard holds an equal slice of the initial data, and routes every
//! operation to the shard owning its key. Because routing depends only on
//! the operation (never on timing), the lane assignment — and therefore
//! the merged result — is identical for any worker count.

use crate::{BenchError, Result};
use lsbench_workload::dataset::Dataset;
use lsbench_workload::ops::Operation;

/// Routes operations to key-range shards.
///
/// Shard `i` owns keys in `[boundaries[i-1], boundaries[i])` (with open
/// ends at both extremes). Scans are routed by their start key and do not
/// cross shard boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRouter {
    /// `shards - 1` ascending split keys.
    boundaries: Vec<u64>,
}

impl KeyRouter {
    /// Builds a router from explicit ascending split keys.
    pub fn from_boundaries(boundaries: Vec<u64>) -> Result<Self> {
        if boundaries.windows(2).any(|w| w[0] >= w[1]) {
            return Err(BenchError::InvalidScenario(
                "shard boundaries must be strictly ascending".to_string(),
            ));
        }
        Ok(KeyRouter { boundaries })
    }

    /// Number of shards this router distributes over.
    pub fn shards(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Shard index owning `key`.
    pub fn route_key(&self, key: u64) -> usize {
        self.boundaries.partition_point(|&b| b <= key)
    }

    /// Shard index an operation is executed on (scans go to the shard
    /// owning their start key).
    pub fn route(&self, op: &Operation) -> usize {
        match *op {
            Operation::Read { key }
            | Operation::Insert { key, .. }
            | Operation::Update { key, .. }
            | Operation::Delete { key } => self.route_key(key),
            Operation::Scan { start, .. } => self.route_key(start),
        }
    }
}

/// Splits a dataset into `shards` key-range shards of (near-)equal size.
///
/// Boundaries are the dataset keys at ranks `i·n/shards`, so the initial
/// data is balanced even under skewed key distributions (a quantile split,
/// not an equi-width one). Each shard dataset is rebuilt with
/// [`Dataset::from_keys`], which derives values exactly like the original
/// generation did, so shard SUTs hold the same key→value pairs the
/// unsharded SUT would.
pub fn shard_dataset(data: &Dataset, shards: usize) -> Result<(KeyRouter, Vec<Dataset>)> {
    if shards == 0 {
        return Err(BenchError::InvalidScenario(
            "shard count must be at least 1".to_string(),
        ));
    }
    let keys = data.keys();
    if keys.len() < shards {
        return Err(BenchError::InvalidScenario(format!(
            "dataset of {} keys cannot fill {} shards",
            keys.len(),
            shards
        )));
    }
    let cut = |i: usize| i * keys.len() / shards;
    let boundaries: Vec<u64> = (1..shards).map(|i| keys[cut(i)]).collect();
    let router = KeyRouter::from_boundaries(boundaries)?;
    let datasets = (0..shards)
        .map(|i| Dataset::from_keys(keys[cut(i)..cut(i + 1)].to_vec()))
        .collect();
    Ok((router, datasets))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        // Skewed keys: quantile boundaries must still balance the shards.
        Dataset::from_keys((0..1000u64).map(|i| i * i).collect())
    }

    #[test]
    fn shards_are_balanced_and_partition_the_keys() {
        let data = dataset();
        let (router, shards) = shard_dataset(&data, 4).unwrap();
        assert_eq!(router.shards(), 4);
        assert_eq!(shards.len(), 4);
        assert!(shards.iter().all(|s| s.len() == 250));
        // Concatenated shard keys reproduce the original key set.
        let rebuilt: Vec<u64> = shards.iter().flat_map(|s| s.keys().to_vec()).collect();
        assert_eq!(rebuilt, data.keys());
        // Every shard's keys route back to that shard.
        for (i, shard) in shards.iter().enumerate() {
            assert!(shard.keys().iter().all(|&k| router.route_key(k) == i));
        }
    }

    #[test]
    fn routing_covers_all_operations() {
        let (router, _) = shard_dataset(&dataset(), 3).unwrap();
        let key = 500 * 500;
        let shard = router.route_key(key);
        assert_eq!(router.route(&Operation::Read { key }), shard);
        assert_eq!(router.route(&Operation::Insert { key, value: 1 }), shard);
        assert_eq!(router.route(&Operation::Update { key, value: 1 }), shard);
        assert_eq!(router.route(&Operation::Delete { key }), shard);
        assert_eq!(
            router.route(&Operation::Scan {
                start: key,
                len: 10
            }),
            shard
        );
        // Out-of-range keys still land on an edge shard.
        assert_eq!(router.route_key(0), 0);
        assert_eq!(router.route_key(u64::MAX), 2);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(shard_dataset(&dataset(), 0).is_err());
        let tiny = Dataset::from_keys(vec![1, 2]);
        assert!(shard_dataset(&tiny, 3).is_err());
        assert!(KeyRouter::from_boundaries(vec![5, 5]).is_err());
        assert!(KeyRouter::from_boundaries(vec![7, 3]).is_err());
    }

    #[test]
    fn single_shard_router_routes_everything_to_zero() {
        let (router, shards) = shard_dataset(&dataset(), 1).unwrap();
        assert_eq!(router.shards(), 1);
        assert_eq!(shards[0].len(), 1000);
        assert_eq!(router.route_key(u64::MAX), 0);
    }
}
