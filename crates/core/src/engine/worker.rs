//! Worker threads and per-lane execution state.
//!
//! The engine pre-partitions the operation stream into *lanes* (logical
//! concurrency) and maps lanes onto *workers* (physical threads) by
//! `lane % threads`. Workers pull [`Batch`]es over crossbeam channels and
//! drive each lane through exactly the serial driver's loop — phase
//! announcement, maintenance slot, arrival wait, execute, backlog-aware
//! service — on the lane's own virtual clock. Because each lane's virtual
//! timeline depends only on its operation subsequence (never on thread
//! scheduling), results are reproducible for any worker count.

use super::latency::LaneRecorder;
use crate::driver::{fold_transport_delta, service_with_backlog};
use crate::faults::{execute_faulted, FaultOpCtx, FaultSession, FaultStats};
use crate::obs::{LaneObs, ObsConfig};
use crate::record::OpRecord;
use crate::scenario::OnlineTrainMode;
use crate::{BenchError, Result};
use crossbeam::channel::Receiver;
use lsbench_sut::sut::SystemUnderTest;
use lsbench_workload::ops::Operation;
use lsbench_workload::phases::LabeledOp;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// One operation assigned to a lane.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LaneOp {
    /// The labeled operation from the workload stream.
    pub labeled: LabeledOp,
    /// Global stream index (deterministic merge tiebreaker).
    pub idx: u64,
    /// Open loop: intended start time in absolute virtual seconds.
    /// Coordinated-omission safety hinges on latency being measured from
    /// this schedule, not from when the lane got around to the operation.
    pub intended: Option<f64>,
    /// Whether this operation announces its phase change to the SUT
    /// (shared mode: only the globally first operation of a phase;
    /// sharded mode: the first operation of the phase in each lane).
    pub announce: bool,
}

/// A chunk of one lane's operations, pulled by a worker.
#[derive(Debug)]
pub(crate) struct Batch {
    /// Lane the operations belong to.
    pub lane: usize,
    /// The operations, in lane order.
    pub ops: Vec<LaneOp>,
    /// True on the lane's final batch: the lane pays any remaining
    /// adaptation backlog and freezes its clock.
    pub last: bool,
}

/// Scenario-derived parameters every lane shares.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LaneParams {
    /// Work units per virtual second.
    pub rate: f64,
    /// Offer a maintenance slot every this many lane-local operations.
    pub maintenance_every: u64,
    /// Online-training scheduling mode.
    pub online_train: OnlineTrainMode,
    /// Virtual time execution starts (training already paid).
    pub exec_start: f64,
    /// Completion-counter interval width.
    pub interval_width: f64,
    /// Observability configuration shared by every lane.
    pub obs_cfg: ObsConfig,
    /// Whether lanes observe at all (false = fully inert hooks).
    pub obs_active: bool,
}

/// Everything one lane produced, returned to the coordinator at join.
#[derive(Debug)]
pub(crate) struct LaneResult {
    /// Lane index.
    pub lane: usize,
    /// Completed operations as `(global index, record)`.
    pub ops: Vec<(u64, OpRecord)>,
    /// Virtual time this lane first saw each phase (phase 0 excluded; the
    /// merge anchors it at `exec_start`).
    pub phase_first: Vec<(usize, f64)>,
    /// Lane clock after the final operation and backlog payment.
    pub final_clock: f64,
    /// Latency histogram + per-interval completion counts.
    pub recorder: LaneRecorder,
    /// The lane's observability state (events, counters, histogram).
    pub obs: LaneObs,
    /// Fault-injection accounting for this lane's operations.
    pub faults: FaultStats,
}

/// How a worker reaches the system(s) under test.
///
/// `'env` is the scoped-thread borrow; `'sut` is the caller's SUT borrow
/// (longer-lived — `Mutex` is invariant in its contents, so conflating the
/// two would pin the mutex borrow for the whole caller).
pub(crate) enum WorkerSut<'env, 'sut, S: ?Sized> {
    /// One SUT shared by every lane behind a mutex (lock per operation).
    Shared(&'env Mutex<&'sut mut S>),
    /// Key-range sharding: this worker exclusively owns its lanes' shards.
    Sharded(Vec<(usize, &'env mut Box<dyn SystemUnderTest<Operation> + Send>)>),
}

/// One simulated client's virtual execution state: four scalars, so the
/// open-loop scheduler ([`super::sched`]) can hold millions of them. The
/// classic lane model is a client that owns a whole op stream.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClientState {
    /// The client's virtual clock (starts at `exec_start`).
    pub clock: f64,
    /// Outstanding adaptation work, in virtual seconds.
    pub backlog: f64,
    /// Client-local operations since the last maintenance slot.
    pub since_maintenance: u64,
    /// Last phase this client saw (phase changes fire on transition).
    pub current_phase: usize,
}

impl ClientState {
    pub(crate) fn new(exec_start: f64) -> Self {
        ClientState {
            clock: exec_start,
            backlog: 0.0,
            since_maintenance: 0,
            current_phase: 0,
        }
    }

    /// Pays any remaining adaptation backlog (conservation of adaptation
    /// work, as in the serial driver) and returns the final clock.
    pub(crate) fn finish(&mut self) -> f64 {
        self.clock += self.backlog;
        self.clock
    }
}

/// Per-worker result sinks shared by every client the worker executes:
/// op records, phase first-seen times, the mergeable latency recorder,
/// observability state, and fault accounting. All of them merge
/// order-insensitively, so sinks are per-*worker* while clocks are
/// per-*client* — O(1) bookkeeping per event regardless of population.
#[derive(Debug)]
pub(crate) struct LaneSinks {
    /// Completed operations as `(global index, record)`.
    pub ops: Vec<(u64, OpRecord)>,
    /// Virtual time a client first saw each phase (min-folded at merge).
    pub phase_first: Vec<(usize, f64)>,
    /// Latency histogram + per-interval completion counts.
    pub recorder: LaneRecorder,
    /// Observability state (events, counters, histogram).
    pub obs: LaneObs,
    /// Fault-injection accounting.
    pub faults: FaultStats,
}

impl LaneSinks {
    pub(crate) fn new(params: &LaneParams, lane: usize) -> Result<Self> {
        Ok(LaneSinks {
            ops: Vec::new(),
            phase_first: Vec::new(),
            recorder: LaneRecorder::new(params.exec_start, params.interval_width)?,
            obs: LaneObs::for_lane(lane, params.obs_cfg, params.obs_active),
            faults: FaultStats::default(),
        })
    }
}

/// Executes one operation for one client — exactly the serial driver's
/// loop: phase announcement, maintenance slot, arrival wait, execute,
/// backlog-aware service, coordinated-omission-safe latency. Shared by
/// the lane workers below and the open-loop scheduler.
pub(crate) fn step_op<T: SystemUnderTest<Operation> + ?Sized>(
    client: &mut ClientState,
    sinks: &mut LaneSinks,
    sut: &mut T,
    op: &LaneOp,
    params: &LaneParams,
    session: Option<&FaultSession>,
) -> Result<()> {
    let labeled = &op.labeled;
    if labeled.phase != client.current_phase {
        client.current_phase = labeled.phase;
        sinks.phase_first.push((labeled.phase, client.clock));
        sinks.obs.phase_change(client.clock, labeled.phase);
        if op.announce {
            let adapt_work = sut.on_phase_change(labeled.phase);
            client.backlog += adapt_work as f64 / params.rate;
            sinks
                .obs
                .retrain_burst(client.clock, labeled.phase, adapt_work);
            sinks.obs.backlog(client.clock, client.backlog);
        }
    }
    client.since_maintenance += 1;
    if client.since_maintenance >= params.maintenance_every {
        client.since_maintenance = 0;
        let maint_work = sut.maintenance();
        client.backlog += maint_work as f64 / params.rate;
        sinks.obs.maintenance(client.clock, maint_work);
        sinks.obs.backlog(client.clock, client.backlog);
    }
    // Open loop: idle until the intended start if the client is ahead of
    // schedule; if it is behind, the operation has been queueing and its
    // wait will surface in the latency below.
    if let Some(intended) = op.intended {
        if intended > client.clock {
            client.clock = intended;
        }
    }
    let (latency, ok) = match session {
        None => {
            let before = sut.transport_stats();
            let outcome = sut
                .execute(&labeled.op)
                .map_err(|e| BenchError::Sut(e.to_string()))?;
            fold_transport_delta(
                before,
                sut.transport_stats(),
                &mut sinks.faults,
                &mut sinks.obs,
                client.clock,
            );
            let service = service_with_backlog(
                outcome.work as f64 / params.rate,
                &mut client.backlog,
                params.online_train,
            );
            client.clock += service;
            // Closed loop: latency = service. Open loop: completion minus
            // the *intended* start, so queueing delay is never omitted.
            let latency = match op.intended {
                Some(intended) => client.clock - intended,
                None => service,
            };
            (latency, outcome.ok)
        }
        Some(session) => {
            // Every decision in here is a pure function of the plan seed
            // and `op.idx`, so clients stay thread-invariant.
            let before = sut.transport_stats();
            let fr = execute_faulted(
                sut,
                &labeled.op,
                FaultOpCtx {
                    phase: labeled.phase,
                    idx: op.idx,
                    rate: params.rate,
                    mode: params.online_train,
                },
                session,
                &mut client.backlog,
            )?;
            fold_transport_delta(
                before,
                sut.transport_stats(),
                &mut sinks.faults,
                &mut sinks.obs,
                client.clock,
            );
            client.clock += fr.service;
            // The client stays busy for the full service; it observes
            // timed-out attempts only up to the timeout.
            let latency = match op.intended {
                Some(intended) => client.clock - intended - (fr.service - fr.observed),
                None => fr.observed,
            };
            for kind in &fr.injected {
                sinks.obs.fault_injected(client.clock, *kind);
            }
            for attempt in 0..fr.retries {
                sinks.obs.query_retried(client.clock, attempt + 1);
            }
            for _ in 0..fr.timeouts {
                sinks.obs.query_timed_out(client.clock, latency);
            }
            fr.fold_into(&mut sinks.faults);
            (latency, fr.ok)
        }
    };
    let record = OpRecord {
        t_end: client.clock,
        latency,
        phase: labeled.phase as u16,
        ok,
        in_transition: labeled.in_transition,
    };
    sinks.recorder.record(client.clock, latency)?;
    sinks
        .obs
        .op_done(client.clock, client.clock - params.exec_start, latency, ok);
    sinks.ops.push((op.idx, record));
    Ok(())
}

/// Per-lane virtual execution state, advanced one operation at a time in
/// exactly the serial driver's order: one [`ClientState`] owning the
/// lane's whole stream, plus the lane's own sinks.
struct LaneState {
    client: ClientState,
    sinks: LaneSinks,
}

impl LaneState {
    fn new(params: &LaneParams, lane: usize) -> Result<Self> {
        Ok(LaneState {
            client: ClientState::new(params.exec_start),
            sinks: LaneSinks::new(params, lane)?,
        })
    }

    fn step<T: SystemUnderTest<Operation> + ?Sized>(
        &mut self,
        sut: &mut T,
        op: &LaneOp,
        params: &LaneParams,
        session: Option<&FaultSession>,
    ) -> Result<()> {
        step_op(&mut self.client, &mut self.sinks, sut, op, params, session)
    }

    /// Pays any remaining adaptation backlog and returns the lane's result.
    fn finish(mut self, lane: usize) -> LaneResult {
        let final_clock = self.client.finish();
        LaneResult {
            lane,
            ops: self.sinks.ops,
            phase_first: self.sinks.phase_first,
            final_clock,
            recorder: self.sinks.recorder,
            obs: self.sinks.obs,
            faults: self.sinks.faults,
        }
    }
}

/// One worker's main loop: drain batches until every sender hangs up,
/// then return the finished lanes.
pub(crate) fn run_worker<S>(
    rx: Receiver<Batch>,
    mut suts: WorkerSut<'_, '_, S>,
    params: &LaneParams,
    faults: Option<&FaultSession>,
) -> Result<Vec<LaneResult>>
where
    S: SystemUnderTest<Operation> + Send + ?Sized,
{
    let mut states: BTreeMap<usize, LaneState> = BTreeMap::new();
    let mut done: Vec<LaneResult> = Vec::new();
    for batch in rx.iter() {
        let mut state = match states.remove(&batch.lane) {
            Some(s) => s,
            None => LaneState::new(params, batch.lane)?,
        };
        match &mut suts {
            WorkerSut::Shared(mutex) => {
                for op in &batch.ops {
                    // Lock per operation: physical mutual exclusion on the
                    // shared SUT without serializing whole batches.
                    let mut guard = mutex
                        .lock()
                        .map_err(|_| BenchError::Sut("shared SUT mutex poisoned".to_string()))?;
                    state.step(&mut **guard, op, params, faults)?;
                }
            }
            WorkerSut::Sharded(owned) => {
                let sut = owned
                    .iter_mut()
                    .find(|(lane, _)| *lane == batch.lane)
                    .map(|(_, sut)| sut)
                    .ok_or_else(|| {
                        BenchError::InvalidScenario(format!(
                            "lane {} routed to a worker that does not own its shard",
                            batch.lane
                        ))
                    })?;
                for op in &batch.ops {
                    state.step(sut.as_mut(), op, params, faults)?;
                }
            }
        }
        if batch.last {
            done.push(state.finish(batch.lane));
        } else {
            states.insert(batch.lane, state);
        }
    }
    // Lanes whose final batch never arrived would silently truncate the
    // run; that is a coordinator bug, not a data condition.
    if !states.is_empty() {
        return Err(BenchError::InvalidScenario(
            "worker channel closed before all lanes finished".to_string(),
        ));
    }
    Ok(done)
}
