//! Deterministic fault injection and robustness policy.
//!
//! The paper's SLA-band metric (Fig. 1c) and adjustment speed only mean
//! something if the benchmark can exercise systems under *degraded*
//! conditions — transient errors, latency spikes, stalls, and crash
//! restarts are exactly the moments where a learned system's adaptation is
//! measured. This module injects those conditions **deterministically**:
//! every fault decision is a pure function of the [`FaultPlan`] seed and
//! the operation's global stream index, and every perturbation is applied
//! in *virtual* time, so a faulted run is bit-identical across repeated
//! runs and across worker counts (the same discipline as deterministic
//! simulation testing à la FoundationDB).
//!
//! A [`FaultPlan`] carries a list of [`FaultSpec`]s plus a [`RetryPolicy`]
//! (per-query timeout, bounded retry with exponential backoff). Plans
//! attach to a [`Scenario`](crate::scenario::Scenario#structfield.faults) (`faults` field,
//! `[[fault]]` spec blocks, or the `--faults` CLI flag) and are compiled
//! once per run into a [`FaultSession`]. The serial driver and every
//! engine lane route each operation through [`execute_faulted`], which
//! returns both the *server-busy* time (advances the lane clock) and the
//! *client-observed* time (feeds the latency metrics) — under a timeout
//! the two differ: the server stays busy for the full service time while
//! the client gives up at the timeout.
//!
//! Error accounting flows into [`RunRecord::faults`]
//! (\[[`FaultStats`]\]), the SLA bands (a failed or timed-out query is an
//! SLA violation), and the observability event stream (`FaultInjected`,
//! `QueryRetried`, `QueryTimedOut`).
//!
//! [`RunRecord::faults`]: crate::record::RunRecord::faults

use crate::driver::service_with_backlog;
use crate::scenario::{OnlineTrainMode, Scenario};
use crate::{BenchError, Result};
use lsbench_sut::sut::SystemUnderTest;
use lsbench_workload::ops::Operation;
use lsbench_workload::phases::WorkloadPhase;
use serde::{Deserialize, Serialize};

/// Driver-level robustness policy applied to every query while a fault
/// plan is active. All quantities are virtual seconds, so retries and
/// timeouts never break determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Per-query timeout (virtual seconds). A query attempt whose service
    /// time exceeds this is abandoned by the client — the server stays
    /// busy for the full service time, but the client observes only the
    /// timeout. `None` = never time out.
    pub timeout: Option<f64>,
    /// Bounded retry budget for transient (injected) errors and timeouts.
    /// `0` = fail immediately. Permanent SUT failures are never retried.
    pub max_retries: u32,
    /// First backoff delay (virtual seconds) before a retry.
    pub backoff_base: f64,
    /// Multiplier applied to the backoff for each subsequent retry.
    pub backoff_multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: None,
            max_retries: 0,
            backoff_base: 1e-3,
            backoff_multiplier: 2.0,
        }
    }
}

/// Kind of one injected fault occurrence, as reported in
/// [`RunEvent::FaultInjected`](crate::obs::RunEvent::FaultInjected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A transient-error coin fired.
    Error,
    /// Service time was inflated by a latency spike.
    Latency,
    /// The operation fell inside a stall window.
    Stall,
    /// A crash-restart dropped the SUT's learned state.
    Crash,
}

/// One injected failure mode. Phase indexes refer to the scenario's main
/// workload phase list; operation offsets are phase-relative.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// Transient errors: each operation in the matching phase(s) fails
    /// with probability `rate` (a deterministic per-operation coin drawn
    /// from the plan seed and the operation's stream index). Failed
    /// operations are retried under the [`RetryPolicy`].
    TransientErrors {
        /// Restrict to one phase index; `None` = every phase.
        phase: Option<usize>,
        /// Failure probability in `[0, 1]`.
        rate: f64,
    },
    /// Latency spike: service time of matching operations becomes
    /// `service × factor + add_work / work_units_per_second`.
    LatencySpike {
        /// Restrict to one phase index; `None` = every phase.
        phase: Option<usize>,
        /// Additive extra work units per operation.
        add_work: u64,
        /// Multiplicative service-time inflation (`1.0` = none).
        factor: f64,
    },
    /// Full stall: the `ops` operations starting at phase-relative offset
    /// `from_op` of phase `phase` each absorb an equal share of `duration`
    /// virtual seconds of extra service time — the system is unresponsive
    /// for that virtual-time window.
    Stall {
        /// Phase the window lives in.
        phase: usize,
        /// Phase-relative offset of the first stalled operation.
        from_op: u64,
        /// Number of stalled operations (the window must stay inside the
        /// phase).
        ops: u64,
        /// Total stall duration (virtual seconds), spread over the window.
        duration: f64,
    },
    /// Crash-restart: immediately before the operation at phase-relative
    /// offset `at_op` of phase `phase`, the SUT's volatile learned state
    /// is dropped ([`SystemUnderTest::crash`]) and the returned recovery
    /// work is charged to the backlog — subsequent queries stall behind
    /// the rebuild exactly like a retrain burst. In sharded runs only the
    /// shard owning that operation crashes.
    Crash {
        /// Phase the crash happens in.
        phase: usize,
        /// Phase-relative offset of the operation hit by the crash.
        at_op: u64,
    },
}

impl FaultSpec {
    /// Spec-language kind name (the `kind = "..."` discriminator).
    pub fn kind(&self) -> &'static str {
        match self {
            FaultSpec::TransientErrors { .. } => "errors",
            FaultSpec::LatencySpike { .. } => "latency",
            FaultSpec::Stall { .. } => "stall",
            FaultSpec::Crash { .. } => "crash",
        }
    }

    /// Validates this fault against a concrete phase list. On error,
    /// returns `(field, reason)` so spec-file callers can position the
    /// rejection on the offending key.
    pub fn check(
        &self,
        phases: &[WorkloadPhase],
    ) -> std::result::Result<(), (&'static str, String)> {
        let phase_ops = |idx: usize, field: &'static str| {
            phases.get(idx).map(|p| p.ops).ok_or_else(|| {
                (
                    field,
                    format!(
                        "phase index {idx} out of range (workload has {} phases)",
                        phases.len()
                    ),
                )
            })
        };
        match self {
            FaultSpec::TransientErrors { phase, rate } => {
                if let Some(p) = phase {
                    phase_ops(*p, "phase")?;
                }
                if !(0.0..=1.0).contains(rate) {
                    return Err(("rate", format!("error rate {rate} must be within [0, 1]")));
                }
            }
            FaultSpec::LatencySpike { phase, factor, .. } => {
                if let Some(p) = phase {
                    phase_ops(*p, "phase")?;
                }
                if !(factor.is_finite() && *factor >= 0.0) {
                    return Err((
                        "factor",
                        format!("latency factor {factor} must be finite and non-negative"),
                    ));
                }
            }
            FaultSpec::Stall {
                phase,
                from_op,
                ops,
                duration,
            } => {
                let available = phase_ops(*phase, "phase")?;
                if *ops == 0 {
                    return Err((
                        "ops",
                        "stall window needs at least one operation".to_string(),
                    ));
                }
                if !(duration.is_finite() && *duration > 0.0) {
                    return Err((
                        "duration",
                        format!("stall duration {duration} must be positive and finite"),
                    ));
                }
                if from_op.saturating_add(*ops) > available {
                    return Err((
                        "ops",
                        format!(
                            "stall window [{from_op}, {}) overlapping phase boundary (phase {} has {available} ops)",
                            from_op + ops, phase
                        ),
                    ));
                }
            }
            FaultSpec::Crash { phase, at_op } => {
                let available = phase_ops(*phase, "phase")?;
                if *at_op >= available {
                    return Err((
                        "at_op",
                        format!(
                            "crash offset {at_op} outside phase {phase} (phase has {available} ops)"
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A complete fault-injection plan: the deterministic seed, the driver
/// robustness policy, and the injected failure modes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for every per-operation fault coin. Two runs with the same
    /// plan, seed, and scenario are bit-identical.
    pub seed: u64,
    /// Timeout/retry/backoff policy applied while this plan is active.
    pub policy: RetryPolicy,
    /// Failure modes to inject. An empty list with the default policy is
    /// an exact passthrough.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Validates the plan against a concrete workload phase list.
    pub fn validate(&self, phases: &[WorkloadPhase]) -> std::result::Result<(), String> {
        let p = &self.policy;
        if let Some(t) = p.timeout {
            if !(t.is_finite() && t > 0.0) {
                return Err(format!(
                    "fault plan: timeout {t} must be positive and finite"
                ));
            }
        }
        if !(p.backoff_base.is_finite() && p.backoff_base >= 0.0) {
            return Err(format!(
                "fault plan: backoff_base {} must be non-negative and finite",
                p.backoff_base
            ));
        }
        if !(p.backoff_multiplier.is_finite() && p.backoff_multiplier >= 0.0) {
            return Err(format!(
                "fault plan: backoff_multiplier {} must be non-negative and finite",
                p.backoff_multiplier
            ));
        }
        for f in &self.faults {
            f.check(phases)
                .map_err(|(field, reason)| format!("fault '{}' {field}: {reason}", f.kind()))?;
        }
        Ok(())
    }
}

/// Per-run fault accounting, merged into [`RunRecord`]
/// (`record.faults`) and summed across lanes in concurrent runs.
///
/// [`RunRecord`]: crate::record::RunRecord
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Individual fault applications (error coins that fired, latency
    /// inflations, stalled operations, crashes).
    pub injected: u64,
    /// Retry attempts issued by the driver's retry policy.
    pub retries: u64,
    /// Query attempts abandoned at the per-query timeout.
    pub timeouts: u64,
    /// Crash-restart events delivered to the SUT.
    pub crashes: u64,
}

impl FaultStats {
    /// Field-wise sum, used when merging per-lane stats.
    pub fn merge(&mut self, other: &FaultStats) {
        self.injected += other.injected;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.crashes += other.crashes;
    }
}

/// What [`execute_faulted`] did to one logical operation.
#[derive(Debug, Clone, Default)]
pub struct FaultResult {
    /// Server-busy virtual seconds: full service of every attempt plus
    /// backoff gaps. Advances the lane clock.
    pub service: f64,
    /// Client-observed virtual seconds: timed-out attempts are capped at
    /// the timeout. Feeds the latency metrics.
    pub observed: f64,
    /// Whether the operation ultimately succeeded.
    pub ok: bool,
    /// Retry attempts issued.
    pub retries: u32,
    /// Attempts abandoned at the timeout.
    pub timeouts: u32,
    /// Fault kinds injected into this operation, in deterministic order.
    pub injected: Vec<FaultKind>,
    /// Whether a crash-restart fired immediately before this operation.
    pub crashed: bool,
}

impl FaultResult {
    /// Folds this result into per-run accounting.
    pub fn fold_into(&self, stats: &mut FaultStats) {
        stats.injected += self.injected.len() as u64;
        stats.retries += self.retries as u64;
        stats.timeouts += self.timeouts as u64;
        if self.crashed {
            stats.crashes += 1;
        }
    }
}

/// A [`FaultPlan`] compiled against one scenario: phase boundaries are
/// resolved to global stream indexes so every per-operation decision is a
/// pure function of `(plan seed, global index)` — identical on any worker
/// count. Immutable and `Sync`; lanes share one session by reference.
#[derive(Debug, Clone)]
pub struct FaultSession {
    plan: FaultPlan,
    /// Global stream index where each phase begins (cumulative phase ops).
    phase_starts: Vec<u64>,
    /// Resolved global indexes of crash operations.
    crash_at: Vec<u64>,
}

impl FaultSession {
    /// Compiles the scenario's fault plan, if any. `None` means the run
    /// takes the exact unfaulted code path (zero-cost passthrough).
    pub fn from_scenario(scenario: &Scenario) -> Option<FaultSession> {
        scenario
            .faults
            .as_ref()
            .map(|plan| FaultSession::new(plan.clone(), scenario.workload.phases()))
    }

    /// Compiles a plan against a phase list. The plan should already have
    /// passed [`FaultPlan::validate`]; out-of-range windows simply never
    /// fire.
    pub fn new(plan: FaultPlan, phases: &[WorkloadPhase]) -> FaultSession {
        let mut phase_starts = Vec::with_capacity(phases.len());
        let mut acc = 0u64;
        for p in phases {
            phase_starts.push(acc);
            acc += p.ops;
        }
        let crash_at = plan
            .faults
            .iter()
            .filter_map(|f| match f {
                FaultSpec::Crash { phase, at_op } => phase_starts
                    .get(*phase)
                    .map(|start| start.saturating_add(*at_op)),
                _ => None,
            })
            .collect();
        FaultSession {
            plan,
            phase_starts,
            crash_at,
        }
    }

    /// The compiled plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether a crash-restart fires immediately before global index
    /// `idx`.
    fn crashes_at(&self, idx: u64) -> bool {
        self.crash_at.contains(&idx)
    }

    /// Total extra stall seconds charged to global index `idx`.
    fn stall_extra(&self, idx: u64) -> f64 {
        let mut extra = 0.0;
        for f in &self.plan.faults {
            if let FaultSpec::Stall {
                phase,
                from_op,
                ops,
                duration,
            } = f
            {
                if let Some(start) = self.phase_starts.get(*phase) {
                    let lo = start.saturating_add(*from_op);
                    if idx >= lo && idx - lo < *ops {
                        extra += duration / *ops as f64;
                    }
                }
            }
        }
        extra
    }
}

/// splitmix64: the standard 64-bit finalizer, used to derive independent
/// per-(fault, operation, attempt) coins from the plan seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A uniform coin in `[0, 1)` that depends only on the plan seed, the
/// fault's position in the plan, the operation's global index, and the
/// attempt number — never on threads or wall time.
fn fault_coin(seed: u64, fault_idx: usize, op_idx: u64, attempt: u32) -> f64 {
    let h = splitmix64(
        seed ^ splitmix64(op_idx.wrapping_add((fault_idx as u64) << 40)) ^ ((attempt as u64) << 56),
    );
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Position and pacing context for one logical operation fed to
/// [`execute_faulted`]: everything a fault decision may depend on besides
/// the plan itself. All of it is derived from the operation stream, never
/// from threads or wall time.
#[derive(Debug, Clone, Copy)]
pub struct FaultOpCtx {
    /// Phase the operation belongs to.
    pub phase: usize,
    /// Global (merged-stream) index of the operation.
    pub idx: u64,
    /// Work units per virtual second (converts SUT work to seconds).
    pub rate: f64,
    /// How training backlog is absorbed into service time.
    pub mode: OnlineTrainMode,
}

/// Executes one logical operation under a fault session: applies latency
/// and stall inflation, draws transient-error coins, enforces the timeout,
/// and drives the bounded-backoff retry loop — all in virtual time.
///
/// The SUT executes **once** per logical operation; retries re-charge the
/// (inflated) service time and re-draw the error coin without re-mutating
/// the SUT, so retried inserts are never double-applied and shared-SUT
/// runs stay deterministic. Permanent SUT failures (`ExecOutcome::failed`)
/// are not retried. The first attempt absorbs the training/maintenance
/// backlog exactly like the unfaulted path.
pub fn execute_faulted<S: SystemUnderTest<Operation> + ?Sized>(
    sut: &mut S,
    op: &Operation,
    ctx: FaultOpCtx,
    session: &FaultSession,
    backlog: &mut f64,
) -> Result<FaultResult> {
    let FaultOpCtx {
        phase,
        idx,
        rate,
        mode,
    } = ctx;
    let mut res = FaultResult::default();
    if session.crashes_at(idx) {
        let recovery = sut.crash();
        *backlog += recovery as f64 / rate;
        res.crashed = true;
        res.injected.push(FaultKind::Crash);
    }
    let outcome = sut
        .execute(op)
        .map_err(|e| BenchError::Sut(e.to_string()))?;

    // Per-attempt base service: the SUT's own work, inflated by matching
    // latency spikes, plus the operation's stall share.
    let mut base = outcome.work as f64 / rate;
    for f in &session.plan.faults {
        if let FaultSpec::LatencySpike {
            phase: fphase,
            add_work,
            factor,
        } = f
        {
            if fphase.is_none_or(|p| p == phase) {
                base = base * factor + *add_work as f64 / rate;
                res.injected.push(FaultKind::Latency);
            }
        }
    }
    let stall = session.stall_extra(idx);
    if stall > 0.0 {
        base += stall;
        res.injected.push(FaultKind::Stall);
    }

    let policy = session.plan.policy;
    let max_attempts = policy.max_retries.saturating_add(1);
    let mut attempt = 0u32;
    loop {
        // Whichever attempt runs while backlog remains absorbs it, exactly
        // like the unfaulted hot path (foreground: prepended; background:
        // processor-shared).
        let service = service_with_backlog(base, backlog, mode);
        res.service += service;

        let mut transient = false;
        if outcome.ok {
            for (fi, f) in session.plan.faults.iter().enumerate() {
                if let FaultSpec::TransientErrors {
                    phase: fphase,
                    rate: frate,
                } = f
                {
                    if fphase.is_none_or(|p| p == phase)
                        && fault_coin(session.plan.seed, fi, idx, attempt) < *frate
                    {
                        transient = true;
                        res.injected.push(FaultKind::Error);
                    }
                }
            }
        }
        let timed_out = matches!(policy.timeout, Some(t) if service > t);
        if timed_out {
            res.timeouts += 1;
            res.observed += policy.timeout.expect("checked by matches!");
        } else {
            res.observed += service;
        }

        if outcome.ok && !transient && !timed_out {
            res.ok = true;
            return Ok(res);
        }
        if !outcome.ok {
            // Permanent failure: the retry policy does not apply.
            res.ok = false;
            return Ok(res);
        }
        attempt += 1;
        if attempt >= max_attempts {
            res.ok = false;
            return Ok(res);
        }
        res.retries += 1;
        let backoff = policy.backoff_base * policy.backoff_multiplier.powi(attempt as i32 - 1);
        res.service += backoff;
        res.observed += backoff;
    }
}

/// A built-in chaos plan: `(name, description, constructor)` — resolvable
/// through `--faults NAME` on the CLI, mirroring the scenario registry.
pub type FaultPlanGen = fn() -> FaultPlan;

/// Built-in chaos plans. All are scenario-agnostic (no stall/crash, which
/// need concrete phase offsets — write those in a plan file or `[[fault]]`
/// spec blocks).
pub const BUILTIN_FAULT_PLANS: &[(&str, &str, FaultPlanGen)] = &[
    (
        "chaos-errors",
        "5% transient errors on every phase, 2 retries with exponential backoff",
        chaos_errors,
    ),
    (
        "chaos-latency",
        "3x service-time inflation on every phase",
        chaos_latency,
    ),
    (
        "chaos-timeouts",
        "2ms per-query timeout with one retry",
        chaos_timeouts,
    ),
];

fn chaos_errors() -> FaultPlan {
    FaultPlan {
        seed: 0xC4A05,
        policy: RetryPolicy {
            timeout: None,
            max_retries: 2,
            backoff_base: 5e-4,
            backoff_multiplier: 2.0,
        },
        faults: vec![FaultSpec::TransientErrors {
            phase: None,
            rate: 0.05,
        }],
    }
}

fn chaos_latency() -> FaultPlan {
    FaultPlan {
        seed: 0xC4A05,
        policy: RetryPolicy::default(),
        faults: vec![FaultSpec::LatencySpike {
            phase: None,
            add_work: 0,
            factor: 3.0,
        }],
    }
}

fn chaos_timeouts() -> FaultPlan {
    FaultPlan {
        seed: 0xC4A05,
        policy: RetryPolicy {
            timeout: Some(2e-3),
            max_retries: 1,
            backoff_base: 1e-3,
            backoff_multiplier: 2.0,
        },
        faults: Vec::new(),
    }
}

/// Resolves `--faults NAME|FILE`: a built-in chaos plan name first, then a
/// fault-plan file on disk (root policy keys plus `[[fault]]` blocks; see
/// [`crate::spec::parse_fault_plan`]).
pub fn resolve_fault_plan(name_or_path: &str) -> Result<FaultPlan> {
    if let Some((_, _, gen)) = BUILTIN_FAULT_PLANS
        .iter()
        .find(|(n, _, _)| *n == name_or_path)
    {
        return Ok(gen());
    }
    if std::path::Path::new(name_or_path).exists() {
        let text = std::fs::read_to_string(name_or_path).map_err(|e| {
            BenchError::InvalidScenario(format!("cannot read fault plan {name_or_path}: {e}"))
        })?;
        return crate::spec::parse_fault_plan(&text)
            .map_err(|e| BenchError::InvalidScenario(format!("{name_or_path}:{e}")));
    }
    let names: Vec<&str> = BUILTIN_FAULT_PLANS.iter().map(|(n, _, _)| *n).collect();
    Err(BenchError::InvalidScenario(format!(
        "unknown fault plan '{name_or_path}' (built-ins: {}; or pass a path to a plan file)",
        names.join(", ")
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsbench_workload::keygen::KeyDistribution;
    use lsbench_workload::ops::OperationMix;

    fn phases(ops: &[u64]) -> Vec<WorkloadPhase> {
        ops.iter()
            .enumerate()
            .map(|(i, &n)| {
                WorkloadPhase::new(
                    format!("p{i}"),
                    KeyDistribution::Uniform,
                    (0, 1_000),
                    OperationMix::ycsb_c(),
                    n,
                )
            })
            .collect()
    }

    #[test]
    fn validation_rejects_bad_windows() {
        let ph = phases(&[100, 50]);
        let overlap = FaultSpec::Stall {
            phase: 1,
            from_op: 40,
            ops: 20,
            duration: 0.5,
        };
        let (field, reason) = overlap.check(&ph).unwrap_err();
        assert_eq!(field, "ops");
        assert!(reason.contains("overlapping phase boundary"), "{reason}");
        let bad_rate = FaultSpec::TransientErrors {
            phase: None,
            rate: 1.5,
        };
        assert_eq!(bad_rate.check(&ph).unwrap_err().0, "rate");
        let bad_phase = FaultSpec::Crash { phase: 7, at_op: 0 };
        assert_eq!(bad_phase.check(&ph).unwrap_err().0, "phase");
        let in_range = FaultSpec::Stall {
            phase: 0,
            from_op: 90,
            ops: 10,
            duration: 0.1,
        };
        in_range.check(&ph).unwrap();
    }

    #[test]
    fn coins_are_deterministic_and_uniform_ish() {
        let a = fault_coin(42, 0, 17, 0);
        assert_eq!(a, fault_coin(42, 0, 17, 0));
        assert_ne!(a, fault_coin(42, 0, 18, 0));
        assert_ne!(a, fault_coin(42, 0, 17, 1));
        assert_ne!(a, fault_coin(42, 1, 17, 0));
        let n = 10_000;
        let hits = (0..n).filter(|&i| fault_coin(7, 0, i, 0) < 0.2).count() as f64;
        let frac = hits / n as f64;
        assert!((0.17..0.23).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn stall_spreads_duration_over_window() {
        let plan = FaultPlan {
            seed: 1,
            policy: RetryPolicy::default(),
            faults: vec![FaultSpec::Stall {
                phase: 1,
                from_op: 10,
                ops: 4,
                duration: 2.0,
            }],
        };
        let session = FaultSession::new(plan, &phases(&[100, 50]));
        assert_eq!(session.stall_extra(109), 0.0);
        for idx in 110..114 {
            assert_eq!(session.stall_extra(idx), 0.5);
        }
        assert_eq!(session.stall_extra(114), 0.0);
    }

    #[test]
    fn crash_index_resolution() {
        let plan = FaultPlan {
            seed: 1,
            policy: RetryPolicy::default(),
            faults: vec![FaultSpec::Crash { phase: 1, at_op: 5 }],
        };
        let session = FaultSession::new(plan, &phases(&[100, 50]));
        assert!(session.crashes_at(105));
        assert!(!session.crashes_at(104));
        assert!(!session.crashes_at(5));
    }

    #[test]
    fn builtin_plans_resolve_and_validate() {
        let ph = phases(&[100]);
        for (name, _, _) in BUILTIN_FAULT_PLANS {
            let plan = resolve_fault_plan(name).unwrap();
            plan.validate(&ph).unwrap();
        }
        assert!(resolve_fault_plan("no-such-plan").is_err());
    }
}
