//! Hold-out (out-of-sample) evaluation.
//!
//! §V-A: "we propose to include hold-out workload and data distributions
//! that the system is only allowed to execute once. In doing so, the
//! benchmark could measure out-of-sample performance." The driver runs the
//! hold-out workload exactly once, *without* phase-change notifications or
//! maintenance slots (no adaptation opportunity), and this module compares
//! in-sample to out-of-sample throughput — the overfitting gap.

use crate::driver::DriverConfig;
use crate::record::RunRecord;
use crate::scenario::{OnlineTrainMode, Scenario};
use crate::{BenchError, Result};
use lsbench_sut::sut::SystemUnderTest;
use lsbench_workload::ops::Operation;
use serde::{Deserialize, Serialize};

/// Out-of-sample comparison for one SUT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoldoutReport {
    /// SUT name.
    pub sut_name: String,
    /// Mean throughput during the main (in-sample) run.
    pub in_sample_throughput: f64,
    /// Mean throughput on the hold-out workload.
    pub out_of_sample_throughput: f64,
    /// `out_of_sample / in_sample` — 1.0 means no overfitting; values well
    /// below 1 mean the system specialized to the training distributions.
    pub generalization_ratio: f64,
}

impl HoldoutReport {
    /// Computes the report from a main run and a hold-out run.
    pub fn new(main: &RunRecord, holdout: &RunRecord) -> Result<Self> {
        let in_t = main.mean_throughput();
        let out_t = holdout.mean_throughput();
        if in_t <= 0.0 {
            return Err(BenchError::Metric(
                "in-sample run has zero throughput".to_string(),
            ));
        }
        Ok(HoldoutReport {
            sut_name: main.sut_name.clone(),
            in_sample_throughput: in_t,
            out_of_sample_throughput: out_t,
            generalization_ratio: out_t / in_t,
        })
    }
}

/// Builds the one-shot scenario around a scenario's hold-out workload:
/// no training, effectively-disabled maintenance, no arrival schedule, no
/// nested hold-out, and no fault plan (the builder defaults to `None`, so
/// hold-out passes always measure the unperturbed system). Errors if the
/// scenario has no hold-out. Shared by the serial [`run_holdout`] and the
/// concurrent engine's sharded hold-out.
pub(crate) fn one_shot_scenario(scenario: &Scenario) -> Result<Scenario> {
    let holdout = scenario
        .holdout
        .as_ref()
        .ok_or_else(|| BenchError::InvalidScenario("scenario has no hold-out".to_string()))?;
    Scenario::builder(format!("{}-holdout", scenario.name))
        .dataset_spec(scenario.dataset.clone())
        .workload(holdout.clone())
        .train_budget(0)
        .sla(scenario.sla)
        .work_units_per_second(scenario.work_units_per_second)
        .maintenance_every(u64::MAX)
        .online_train(OnlineTrainMode::Foreground)
        .build()
}

/// Runs the scenario's hold-out workload once (single pass, no phase
/// notifications, no maintenance — the SUT gets no adaptation opportunity)
/// and returns its record. Errors if the scenario has no hold-out.
pub fn run_holdout<S: SystemUnderTest<Operation> + ?Sized>(
    sut: &mut S,
    scenario: &Scenario,
) -> Result<RunRecord> {
    let one_shot = one_shot_scenario(scenario)?;
    crate::driver::run_kv_scenario(sut, &one_shot, DriverConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsbench_sut::kv::{RetrainPolicy, RmiSut};
    use lsbench_workload::keygen::KeyDistribution;
    use lsbench_workload::ops::OperationMix;
    use lsbench_workload::phases::{PhasedWorkload, WorkloadPhase};

    fn scenario_with_holdout() -> Scenario {
        let mut s = Scenario::two_phase_shift(
            "main",
            KeyDistribution::Uniform,
            KeyDistribution::Zipf { theta: 1.1 },
            2_000,
            1_000,
            5,
        )
        .unwrap();
        s.holdout = Some(
            PhasedWorkload::single(
                WorkloadPhase::new(
                    "holdout-hotspot",
                    KeyDistribution::Hotspot {
                        hot_span: 0.05,
                        hot_fraction: 0.95,
                    },
                    (0, 10_000_000),
                    OperationMix::ycsb_c(),
                    500,
                ),
                99,
            )
            .unwrap(),
        );
        s
    }

    #[test]
    fn holdout_runs_once() {
        let s = scenario_with_holdout();
        let data = s.dataset.build().unwrap();
        let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::Never).unwrap();
        let main = crate::driver::run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();
        let hold = run_holdout(&mut sut, &s).unwrap();
        assert_eq!(hold.completed(), 500);
        assert_eq!(hold.train.work, 0, "hold-out must not retrain");
        let report = HoldoutReport::new(&main, &hold).unwrap();
        assert!(report.in_sample_throughput > 0.0);
        assert!(report.out_of_sample_throughput > 0.0);
        assert!(report.generalization_ratio > 0.0);
    }

    #[test]
    fn missing_holdout_errors() {
        let mut s = scenario_with_holdout();
        s.holdout = None;
        let data = s.dataset.build().unwrap();
        let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::Never).unwrap();
        assert!(run_holdout(&mut sut, &s).is_err());
    }

    #[test]
    fn report_math() {
        let s = scenario_with_holdout();
        let data = s.dataset.build().unwrap();
        let mut sut = RmiSut::build("rmi", &data, RetrainPolicy::Never).unwrap();
        let main = crate::driver::run_kv_scenario(&mut sut, &s, DriverConfig::default()).unwrap();
        let hold = run_holdout(&mut sut, &s).unwrap();
        let report = HoldoutReport::new(&main, &hold).unwrap();
        let expect = report.out_of_sample_throughput / report.in_sample_throughput;
        assert!((report.generalization_ratio - expect).abs() < 1e-12);
    }
}
