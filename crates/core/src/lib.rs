//! The learned-systems benchmark framework — the paper's contribution.
//!
//! This crate implements the benchmark *Towards a Benchmark for Learned
//! Systems* (ICDE 2021) sketches:
//!
//! * [`scenario`] — benchmark scenarios: a dataset, a multi-phase workload
//!   with transitions, a training budget, an SLA policy, and hold-out
//!   phases (§V-A/§V-B configuration).
//! * [`driver`] — the benchmark driver: load → train → phased execution
//!   with per-query records on a deterministic virtual clock, maintenance
//!   slots, and phase-change notifications.
//! * [`record`] — run records: every completed query with timestamp,
//!   latency, phase, and success flag, plus training info and SUT metrics.
//! * [`metrics`] — the paper's new metric families:
//!   [`metrics::specialization`] (Fig. 1a), [`metrics::adaptability`]
//!   (Fig. 1b), [`metrics::sla`] (Fig. 1c), [`metrics::cost`] (Fig. 1d),
//!   and the Φ distribution-similarity axis ([`metrics::phi`]).
//! * [`holdout`] — out-of-sample evaluation: hold-out phases executed once,
//!   reported as an overfitting gap (§V-A).
//! * [`engine`] — the concurrent execution engine: multi-worker open/
//!   closed-loop execution with coordinated-omission-safe latency
//!   recording, deterministic merging, and the event-heap scheduler
//!   ([`engine::sched`]) multiplexing massive open-loop client
//!   populations onto the worker pool.
//! * [`capacity`] — the SLA capacity search: a binary-search load driver
//!   that brackets the maximum sustainable arrival rate under a latency
//!   SLA and emits a throughput–latency knee curve per SUT.
//! * [`obs`] — structured observability: deterministic run-event tracing
//!   on the virtual clock, a mergeable metrics registry, and wall-clock
//!   profiling spans; zero-cost when disabled.
//! * [`faults`] — deterministic fault injection: transient errors, latency
//!   spikes, stalls, and crash-restarts driven by a seeded [`FaultPlan`]
//!   plus a virtual-time timeout/retry/backoff policy, bit-identical
//!   across worker counts.
//! * [`runner`] — the unified [`Runner`] facade: one entry point that
//!   routes serial, shared-SUT concurrent, sharded, open-loop, and
//!   hold-out runs from a single [`RunOptions`] configuration via the
//!   explicit [`ExecutionMode`] enum.
//! * [`spec`] — the declarative scenario subsystem: a line-oriented spec
//!   language with positioned errors, the seven parse-time drift
//!   composers (see the canonical table in the [`spec`] module docs), a
//!   canonical renderer, and the [`spec::ScenarioRegistry`] resolving
//!   built-in and file-based scenarios uniformly.
//! * [`sweep`] — the drift-sweep subsystem: the endpoint-exact
//!   [`sweep::DriftAxis`] α ∈ [0, 1] primitive every composer expands
//!   through, scenario ladders over an α grid, per-SUT metric-vs-α
//!   curves with the distribution-learnability linear bound as a theory
//!   overlay, and the archived [`results::SweepArtifact`].
//! * [`sut_registry`] — name → constructor registry so CLIs, suites, and
//!   benches resolve systems under test uniformly.
//! * [`report`] — plain-text figures (ASCII), CSV series, and JSON
//!   artifacts so results are comparable across deployments.
//! * [`results`] — the longitudinal layer: a content-addressed,
//!   schema-versioned results store ([`results::store`]), the head-to-head
//!   paired-comparison engine ([`mod@results::compare`]), and the CI
//!   regression gate ([`results::regress`]).
//! * [`wire`] — out-of-process SUTs: a versioned length-prefixed frame
//!   protocol over TCP, the `lsbench serve` server loop hosting any
//!   registered SUT, and the [`wire::RemoteSut`] pipelined client-pool
//!   adapter — with the in-process mode as the conformance oracle.
//! * [`trace`] — the real-workload bridge: CSV/JSON-lines trace import
//!   with positioned errors, open/closed-loop replay at any speed, and
//!   the trace-to-spec fitter (change-point phase segmentation plus
//!   per-phase mix/distribution estimation).

#![warn(missing_docs)]

pub mod capacity;
pub mod driver;
pub mod engine;
pub mod faults;
pub mod holdout;
pub mod metrics;
pub mod obs;
pub mod record;
pub mod report;
pub mod results;
pub mod runner;
pub mod scenario;
pub mod spec;
pub mod suite;
pub mod sut_registry;
pub mod sweep;
pub mod trace;
pub mod wire;

pub use capacity::{capacity_search, CapacityConfig, CapacityPoint, CapacityReport, SlaTarget};
pub use driver::{
    run_kv_scenario, run_kv_scenario_observed, run_kv_scenario_timed, run_kv_trace,
    run_kv_trace_open_loop, run_query_workload, DriverConfig, ReplayConfig,
};
pub use engine::{
    run_concurrent_kv_scenario, run_concurrent_kv_scenario_observed, run_open_loop_kv_scenario,
    run_open_loop_kv_scenario_observed, run_sharded_holdout, run_sharded_kv_scenario,
    run_sharded_kv_scenario_observed, shard_dataset, EngineConfig, EngineReport, KeyRouter,
};
pub use faults::{FaultKind, FaultPlan, FaultSpec, FaultStats, RetryPolicy};
pub use holdout::HoldoutReport;
pub use metrics::adaptability::AdaptabilityReport;
pub use metrics::cost::CostReport;
pub use metrics::sla::{SlaPolicy, SlaReport};
pub use metrics::specialization::SpecializationReport;
pub use obs::{MetricsRegistry, ObsConfig, RunEvent, RunObserver, TraceEvent, TraceLog};
pub use record::{OpRecord, RunRecord};
pub use results::{
    compare, evaluate_regression, parse_regression_policy, render_comparison_report,
    render_regression, write_bench_summary, ComparisonReport, RegressionPolicy, RegressionReport,
    ResultStore, RunArtifact, RunManifest, StoreError, SuiteArtifact, Transport,
};
pub use results::{CapacityArtifact, CapacityManifest};
pub use results::{SweepArtifact, SweepManifest, SWEEP_SCHEMA_VERSION};
pub use runner::{
    BoxedKvSut, EngineStats, ExecutionMode, RunOptions, RunOutcome, Runner, WallStats,
};
pub use scenario::{ClockMode, ModePreference, OpenLoopSpec, Scenario, ScenarioBuilder};
pub use spec::{parse_fault_plan, parse_scenario, render_scenario, ScenarioRegistry, SpecError};
pub use suite::{
    run_suite, run_suite_observed, standard_scenarios, SuiteConfig, SuiteObservation, SuiteResult,
};
pub use sut_registry::SutRegistry;
pub use sweep::{render_sweep_report, rung_scenario, DriftAxis, DriftLadder, SweepCurve};
pub use trace::{fit_scenario, import_str, FitReport, ImportedTrace, TraceError, TraceFormat};
pub use wire::{RemoteOptions, RemoteSut, ServerHandle, WireError, WireServer, PROTOCOL_VERSION};

/// Errors produced by the benchmark framework.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchError {
    /// Scenario configuration was invalid.
    InvalidScenario(String),
    /// The workload generator failed.
    Workload(String),
    /// The system under test failed fatally.
    Sut(String),
    /// A metric could not be computed from the given records.
    Metric(String),
    /// Result serialization failed.
    Serialization(String),
    /// The results store refused an operation (schema drift, digest
    /// mismatch, or an unresolvable artifact reference).
    Store(String),
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::InvalidScenario(m) => write!(f, "invalid scenario: {m}"),
            BenchError::Workload(m) => write!(f, "workload error: {m}"),
            BenchError::Sut(m) => write!(f, "SUT error: {m}"),
            BenchError::Metric(m) => write!(f, "metric error: {m}"),
            BenchError::Serialization(m) => write!(f, "serialization error: {m}"),
            BenchError::Store(m) => write!(f, "results store error: {m}"),
        }
    }
}

impl std::error::Error for BenchError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, BenchError>;
