//! Adaptability metrics (Fig. 1b).
//!
//! "We suggest reporting throughput variations by plotting the cumulative
//! queries completed over time. … We can derive a single-value result from
//! this plot by computing the area difference between an ideal system with
//! a constant throughput. … When comparing two systems, the area difference
//! between the two systems provides a single-value result."
//!
//! On top of the curve and areas, this module derives a *recovery time* per
//! phase change: how long after a distribution switch the system needs to
//! regain its steady-state throughput (§IV: "capture the time a system
//! takes to adapt to a new workload").

use crate::record::RunRecord;
use crate::{BenchError, Result};
use lsbench_stats::timeseries::TimeSeries;
use serde::{Deserialize, Serialize};

/// The full Fig. 1b report for one SUT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptabilityReport {
    /// SUT name.
    pub sut_name: String,
    /// `(time, cumulative completions)` sampled curve for plotting.
    pub curve: Vec<(f64, f64)>,
    /// Signed area between the actual curve and the ideal constant-
    /// throughput system (negative = lags the ideal, as in a slow start).
    pub area_vs_ideal: f64,
    /// Same, normalized by `total_ops × duration` into `[-1, 1]`-ish scale
    /// so different runs are comparable.
    pub normalized_area: f64,
    /// Per phase change: `(phase, recovery_seconds)` — time until windowed
    /// throughput first reaches the phase's own steady-state level.
    pub recovery_times: Vec<(usize, f64)>,
    /// Mean throughput per phase (ops/sec), for reference.
    pub phase_throughput: Vec<f64>,
}

/// Number of points the plotted curve is downsampled to.
const CURVE_POINTS: usize = 256;

/// Window (in ops) for recovery-time throughput measurement.
const RECOVERY_WINDOW: usize = 50;

/// Fraction of steady-state throughput that counts as "recovered".
const RECOVERY_LEVEL: f64 = 0.8;

impl AdaptabilityReport {
    /// Builds the report from a run record.
    pub fn from_record(record: &RunRecord) -> Result<Self> {
        if record.ops.is_empty() {
            return Err(BenchError::Metric("empty run record".to_string()));
        }
        let curve_full = record.cumulative_curve();
        let area = curve_full
            .area_vs_ideal(record.exec_start, record.exec_end)
            .map_err(|e| BenchError::Metric(e.to_string()))?;
        let duration = record.exec_duration().max(f64::MIN_POSITIVE);
        let normalized = area / (record.ops.len() as f64 * duration);

        // Downsample the curve for plotting.
        let series = curve_full.to_series(record.exec_start);
        let mut curve = Vec::with_capacity(CURVE_POINTS + 1);
        for i in 0..=CURVE_POINTS {
            let t = record.exec_start + duration * i as f64 / CURVE_POINTS as f64;
            let v = series
                .value_at(t)
                .map_err(|e| BenchError::Metric(e.to_string()))?;
            curve.push((t, v));
        }

        let phase_count = record.phase_names.len();
        let mut phase_throughput = Vec::with_capacity(phase_count);
        for p in 0..phase_count {
            let lats: Vec<&crate::record::OpRecord> = record
                .ops
                .iter()
                .filter(|o| o.phase as usize == p)
                .collect();
            if lats.len() < 2 {
                phase_throughput.push(0.0);
                continue;
            }
            let span = lats[lats.len() - 1].t_end - lats[0].t_end;
            phase_throughput.push(if span > 0.0 {
                (lats.len() - 1) as f64 / span
            } else {
                0.0
            });
        }

        // Recovery times per phase change (skip the initial phase 0 entry).
        let mut recovery_times = Vec::new();
        for &(phase, start_t) in &record.phase_change_times {
            if phase == 0 {
                continue;
            }
            let steady = phase_steady_throughput(record, phase);
            if steady <= 0.0 {
                continue;
            }
            let recovery = recovery_time(record, phase, start_t, steady);
            recovery_times.push((phase, recovery));
        }

        Ok(AdaptabilityReport {
            sut_name: record.sut_name.clone(),
            curve,
            area_vs_ideal: area,
            normalized_area: normalized,
            recovery_times,
            phase_throughput,
        })
    }

    /// The paper's two-system comparison: signed area between this report's
    /// curve and another's over the overlapping span (positive = `self`
    /// completed more work earlier).
    pub fn area_vs(&self, other: &AdaptabilityReport) -> Result<f64> {
        let a = TimeSeries::from_points(self.curve.clone())
            .map_err(|e| BenchError::Metric(e.to_string()))?;
        let b = TimeSeries::from_points(other.curve.clone())
            .map_err(|e| BenchError::Metric(e.to_string()))?;
        a.area_difference(&b)
            .map_err(|e| BenchError::Metric(e.to_string()))
    }
}

/// The paired Fig. 1b metric straight from two run records: signed area
/// between the candidate's and the baseline's *full-resolution* cumulative
/// curves over their overlapping span (positive = candidate completed more
/// work earlier).
///
/// Unlike [`AdaptabilityReport::area_vs`], which compares the downsampled
/// plotting curves, this works on every completion timestamp, so the value
/// is a pure function of the two records — a record saved to the results
/// store ([`crate::results`]) and reloaded reproduces it bit-identically.
/// Exactly antisymmetric: swapping the arguments negates the result.
pub fn paired_area_difference(baseline: &RunRecord, candidate: &RunRecord) -> Result<f64> {
    if baseline.ops.is_empty() || candidate.ops.is_empty() {
        return Err(BenchError::Metric("empty run record".to_string()));
    }
    let b = baseline.cumulative_curve().to_series(baseline.exec_start);
    let c = candidate.cumulative_curve().to_series(candidate.exec_start);
    c.area_difference(&b)
        .map_err(|e| BenchError::Metric(e.to_string()))
}

/// Steady-state throughput of a phase: measured over its second half (the
/// first half may include the adaptation transient).
fn phase_steady_throughput(record: &RunRecord, phase: usize) -> f64 {
    let times: Vec<f64> = record
        .ops
        .iter()
        .filter(|o| o.phase as usize == phase)
        .map(|o| o.t_end)
        .collect();
    if times.len() < 4 {
        return 0.0;
    }
    let half = times.len() / 2;
    let span = times[times.len() - 1] - times[half];
    if span > 0.0 {
        (times.len() - half - 1) as f64 / span
    } else {
        0.0
    }
}

/// Seconds after `start_t` until windowed throughput reaches
/// `RECOVERY_LEVEL × steady`.
fn recovery_time(record: &RunRecord, phase: usize, start_t: f64, steady: f64) -> f64 {
    let times: Vec<f64> = record
        .ops
        .iter()
        .filter(|o| o.phase as usize == phase)
        .map(|o| o.t_end)
        .collect();
    let window = RECOVERY_WINDOW.min(times.len().saturating_sub(1)).max(1);
    for i in window..times.len() {
        let span = times[i] - times[i - window];
        if span <= 0.0 {
            continue;
        }
        let tput = window as f64 / span;
        if tput >= RECOVERY_LEVEL * steady {
            return (times[i] - start_t).max(0.0);
        }
    }
    // Never recovered within the phase.
    record.exec_end - start_t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{OpRecord, RunRecord, TrainInfo};
    use lsbench_sut::sut::SutMetrics;

    /// Record with a slow stretch (per-op seconds `slow`) for `n_slow` ops,
    /// then fast (`fast`) for `n_fast`.
    fn two_speed_record(slow: f64, n_slow: usize, fast: f64, n_fast: usize) -> RunRecord {
        let mut ops = Vec::new();
        let mut t = 0.0;
        for _ in 0..n_slow {
            t += slow;
            ops.push(OpRecord {
                t_end: t,
                latency: slow,
                phase: 1,
                ok: true,
                in_transition: false,
            });
        }
        for _ in 0..n_fast {
            t += fast;
            ops.push(OpRecord {
                t_end: t,
                latency: fast,
                phase: 1,
                ok: true,
                in_transition: false,
            });
        }
        RunRecord {
            sut_name: "two-speed".to_string(),
            scenario_name: "adapt".to_string(),
            phase_names: vec!["p0".to_string(), "p1".to_string()],
            ops,
            phase_change_times: vec![(0, 0.0), (1, 0.0)],
            train: TrainInfo::default(),
            exec_start: 0.0,
            exec_end: t,
            final_metrics: SutMetrics::default(),
            work_units_per_second: 1.0,
            faults: crate::faults::FaultStats::default(),
        }
    }

    #[test]
    fn slow_start_negative_area() {
        // Slow first half, fast second half — the Fig. 1b learned-system
        // shape: "starts slow and later catches up".
        let r = two_speed_record(1.0, 100, 0.1, 900);
        let report = AdaptabilityReport::from_record(&r).unwrap();
        assert!(
            report.area_vs_ideal < 0.0,
            "area = {}",
            report.area_vs_ideal
        );
        assert!(report.normalized_area < 0.0);
        assert!(report.normalized_area > -1.0);
    }

    #[test]
    fn constant_speed_near_zero_area() {
        let r = two_speed_record(0.5, 500, 0.5, 500);
        let report = AdaptabilityReport::from_record(&r).unwrap();
        assert!(
            report.normalized_area.abs() < 0.01,
            "normalized = {}",
            report.normalized_area
        );
    }

    #[test]
    fn area_vs_other_system() {
        let fast = AdaptabilityReport::from_record(&two_speed_record(0.1, 500, 0.1, 500)).unwrap();
        let slow = AdaptabilityReport::from_record(&two_speed_record(0.5, 500, 0.5, 500)).unwrap();
        // The faster system accumulates completions earlier.
        assert!(fast.area_vs(&slow).unwrap() > 0.0);
        assert!(slow.area_vs(&fast).unwrap() < 0.0);
        assert!(fast.area_vs(&fast).unwrap().abs() < 1e-6);
    }

    #[test]
    fn paired_area_matches_sign_and_antisymmetry() {
        let fast = two_speed_record(0.1, 500, 0.1, 500);
        let slow = two_speed_record(0.5, 500, 0.5, 500);
        // Candidate faster than baseline: positive.
        let ahead = paired_area_difference(&slow, &fast).unwrap();
        assert!(ahead > 0.0, "ahead = {ahead}");
        // Exact antisymmetry and exact zero at identity.
        assert_eq!(paired_area_difference(&fast, &slow).unwrap(), -ahead);
        assert_eq!(paired_area_difference(&fast, &fast).unwrap(), 0.0);
        // Empty records are rejected, not silently zeroed.
        let mut empty = two_speed_record(0.1, 5, 0.1, 5);
        empty.ops.clear();
        assert!(paired_area_difference(&empty, &fast).is_err());
    }

    #[test]
    fn recovery_time_detects_transient() {
        // Phase 1 starts slow (adaptation transient) then reaches steady
        // state: recovery time should be near the transient length.
        let r = two_speed_record(1.0, 100, 0.1, 900);
        let report = AdaptabilityReport::from_record(&r).unwrap();
        let (_, recovery) = report.recovery_times[0];
        // Transient lasts 100 s; recovery detection should fall near it.
        assert!((90.0..=120.0).contains(&recovery), "recovery = {recovery}");
    }

    #[test]
    fn instant_steady_state_recovers_fast() {
        let r = two_speed_record(0.2, 500, 0.2, 500);
        let report = AdaptabilityReport::from_record(&r).unwrap();
        let (_, recovery) = report.recovery_times[0];
        assert!(recovery < 15.0, "recovery = {recovery}");
    }

    #[test]
    fn curve_monotone_and_complete() {
        let r = two_speed_record(0.3, 200, 0.1, 200);
        let report = AdaptabilityReport::from_record(&r).unwrap();
        for w in report.curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "curve not monotone");
        }
        assert!((report.curve.last().unwrap().1 - 400.0).abs() < 1.0);
    }

    #[test]
    fn empty_record_rejected() {
        let mut r = two_speed_record(0.1, 10, 0.1, 10);
        r.ops.clear();
        assert!(AdaptabilityReport::from_record(&r).is_err());
    }
}
