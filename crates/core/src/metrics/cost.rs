//! Cost metrics (Fig. 1d, Lesson 4).
//!
//! "We propose to break down the cost-per-performance metrics into training
//! and execution time. … we should evaluate the cost of training on
//! different hardware (CPU, GPU, or TPU). … This plot allows us to define a
//! new metric: the training cost to outperform a traditional system."
//!
//! Inputs are a [`RunRecord`] (whose SUT metrics carry training and
//! execution work) plus hardware profiles and a DBA step-function model
//! from `lsbench-sut`.

use crate::record::RunRecord;
use crate::{BenchError, Result};
use lsbench_sut::cost::{
    cost_per_performance, training_cost, training_cost_to_outperform, DbaCostModel,
    HardwareProfile, TrainingCost,
};
use serde::{Deserialize, Serialize};

/// Cost breakdown for one run on one hardware profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Hardware profile name.
    pub hardware: String,
    /// Training cost (time + dollars) on this hardware.
    pub training: TrainingCost,
    /// Execution cost (time + dollars) on this hardware.
    pub execution: TrainingCost,
    /// Label-collection cost (part of training, shown separately per §IV).
    pub label_collection: TrainingCost,
}

/// The full Fig. 1d report for one SUT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// SUT name.
    pub sut_name: String,
    /// Mean throughput achieved (ops/sec), the Y axis of Fig. 1d.
    pub throughput: f64,
    /// Per-hardware breakdowns.
    pub breakdowns: Vec<CostBreakdown>,
    /// Classic cost-per-performance ($ per ops/sec) on the first profile,
    /// using training + execution dollars.
    pub cost_per_performance: Option<f64>,
}

impl CostReport {
    /// Builds the report from a run record over the given hardware profiles.
    pub fn from_record(record: &RunRecord, profiles: &[HardwareProfile]) -> Result<Self> {
        if profiles.is_empty() {
            return Err(BenchError::Metric(
                "at least one hardware profile required".to_string(),
            ));
        }
        let m = &record.final_metrics;
        let breakdowns: Vec<CostBreakdown> = profiles
            .iter()
            .map(|hw| CostBreakdown {
                hardware: hw.name.clone(),
                training: training_cost(m.training_work, hw),
                execution: training_cost(m.execution_work, hw),
                label_collection: training_cost(m.label_collection_work, hw),
            })
            .collect();
        let throughput = record.mean_throughput();
        let total_dollars = breakdowns[0].training.dollars + breakdowns[0].execution.dollars;
        Ok(CostReport {
            sut_name: record.sut_name.clone(),
            throughput,
            breakdowns,
            cost_per_performance: cost_per_performance(total_dollars, throughput),
        })
    }
}

/// Dollars per completed query on the given hardware: (training +
/// execution dollars) / completions — the unit the head-to-head comparison
/// ([`crate::results::compare()`]) takes ratios of. `None` when the record
/// completed nothing. Requires the record's `final_metrics` to have
/// survived serialization, which is why those counters are no longer
/// `#[serde(skip)]`.
pub fn cost_per_query(record: &RunRecord, hw: &HardwareProfile) -> Option<f64> {
    if record.ops.is_empty() {
        return None;
    }
    let m = &record.final_metrics;
    let dollars =
        training_cost(m.training_work, hw).dollars + training_cost(m.execution_work, hw).dollars;
    Some(dollars / record.ops.len() as f64)
}

/// The Fig. 1d learned-vs-DBA comparison: a throughput-vs-training-cost
/// curve for the learned system against the DBA step function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingTradeoff {
    /// `(training_dollars, throughput)` points for the learned system,
    /// sorted by spend.
    pub learned_curve: Vec<(f64, f64)>,
    /// The DBA step function `(cumulative_dollars, throughput)`.
    pub dba_steps: Vec<(f64, f64)>,
    /// Smallest training spend at which the learned system beats the fully
    /// tuned traditional system (`None` = never).
    pub cost_to_outperform: Option<f64>,
}

impl TrainingTradeoff {
    /// Builds the trade-off from per-budget run records of the learned
    /// system (each run trained with a different budget) plus the DBA model.
    ///
    /// Training dollars are computed on `hw`.
    pub fn new(
        learned_runs: &[RunRecord],
        hw: &HardwareProfile,
        dba: &DbaCostModel,
    ) -> Result<Self> {
        if learned_runs.is_empty() {
            return Err(BenchError::Metric("no learned runs given".to_string()));
        }
        let mut curve: Vec<(f64, f64)> = learned_runs
            .iter()
            .map(|r| {
                let dollars = training_cost(r.final_metrics.training_work, hw).dollars;
                (dollars, r.mean_throughput())
            })
            .collect();
        curve.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite costs"));
        let cost_to_outperform = training_cost_to_outperform(&curve, dba);
        Ok(TrainingTradeoff {
            learned_curve: curve,
            dba_steps: dba.steps().to_vec(),
            cost_to_outperform,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{OpRecord, RunRecord, TrainInfo};
    use lsbench_sut::sut::SutMetrics;

    fn record(training_work: u64, ops: usize, per_op: f64) -> RunRecord {
        let mut v = Vec::new();
        let mut t = 0.0;
        for _ in 0..ops {
            t += per_op;
            v.push(OpRecord {
                t_end: t,
                latency: per_op,
                phase: 0,
                ok: true,
                in_transition: false,
            });
        }
        RunRecord {
            sut_name: "cost-test".to_string(),
            scenario_name: "cost".to_string(),
            phase_names: vec!["p0".to_string()],
            ops: v,
            phase_change_times: vec![(0, 0.0)],
            train: TrainInfo {
                work: training_work,
                seconds: 1.0,
            },
            exec_start: 0.0,
            exec_end: t,
            final_metrics: SutMetrics {
                size_bytes: 0,
                training_work,
                execution_work: (ops as u64) * 10,
                model_count: 1,
                adaptations: 0,
                label_collection_work: training_work / 10,
            },
            work_units_per_second: 1.0,
            faults: crate::faults::FaultStats::default(),
        }
    }

    #[test]
    fn breakdown_per_hardware() {
        let r = record(1_000_000_000, 1000, 0.001);
        let profiles = [
            HardwareProfile::cpu(),
            HardwareProfile::gpu(),
            HardwareProfile::tpu(),
        ];
        let report = CostReport::from_record(&r, &profiles).unwrap();
        assert_eq!(report.breakdowns.len(), 3);
        // GPU trains the same work faster than CPU.
        let cpu = &report.breakdowns[0];
        let gpu = &report.breakdowns[1];
        assert!(gpu.training.seconds < cpu.training.seconds);
        assert!(report.throughput > 0.0);
        assert!(report.cost_per_performance.unwrap() > 0.0);
        // Label collection is a tenth of training work.
        assert!((cpu.label_collection.seconds * 10.0 - cpu.training.seconds).abs() < 1e-9);
    }

    #[test]
    fn cost_per_query_tracks_work_counters() {
        let r = record(1_000_000_000, 1000, 0.001);
        let cpq = cost_per_query(&r, &HardwareProfile::cpu()).unwrap();
        assert!(cpq > 0.0);
        // Ten times the training work costs strictly more per query.
        let r10 = record(10_000_000_000, 1000, 0.001);
        assert!(cost_per_query(&r10, &HardwareProfile::cpu()).unwrap() > cpq);
        // Empty record: no queries to divide by.
        let mut empty = record(1, 1, 0.1);
        empty.ops.clear();
        assert_eq!(cost_per_query(&empty, &HardwareProfile::cpu()), None);
    }

    #[test]
    fn empty_profiles_rejected() {
        let r = record(10, 10, 0.1);
        assert!(CostReport::from_record(&r, &[]).is_err());
    }

    #[test]
    fn tradeoff_finds_crossover() {
        // Three learned runs: more training => more throughput.
        let runs = vec![
            record(1_000_000_000, 1000, 0.0015),   // ~667 ops/s
            record(20_000_000_000, 1000, 0.0006),  // ~1667 ops/s
            record(400_000_000_000, 1000, 0.0003), // ~3333 ops/s
        ];
        let dba = DbaCostModel::default_model(1000.0); // max 2500
        let t = TrainingTradeoff::new(&runs, &HardwareProfile::cpu(), &dba).unwrap();
        assert_eq!(t.learned_curve.len(), 3);
        // Curve sorted by spend.
        assert!(t.learned_curve.windows(2).all(|w| w[0].0 <= w[1].0));
        // Only the biggest budget beats 2500 ops/s.
        let expect_cost = t.learned_curve[2].0;
        assert_eq!(t.cost_to_outperform, Some(expect_cost));
    }

    #[test]
    fn tradeoff_none_when_never_winning() {
        let runs = vec![record(1_000_000, 100, 1.0)]; // 1 op/s
        let dba = DbaCostModel::default_model(1000.0);
        let t = TrainingTradeoff::new(&runs, &HardwareProfile::cpu(), &dba).unwrap();
        assert_eq!(t.cost_to_outperform, None);
        assert!(TrainingTradeoff::new(&[], &HardwareProfile::cpu(), &dba).is_err());
    }
}
