//! The paper's new metric families (§V-D).
//!
//! * [`phi`] — the Φ distribution-similarity axis: KS/MMD over data, Jaccard
//!   over query subtrees.
//! * [`specialization`] — Fig. 1a: throughput box plots per
//!   workload/data distribution, sorted by Φ.
//! * [`adaptability`] — Fig. 1b: cumulative queries over time, area
//!   differences, recovery times.
//! * [`sla`] — Fig. 1c: per-interval latency bands split by SLA compliance,
//!   adjustment speed after distribution changes.
//! * [`cost`] — Fig. 1d: training vs. execution cost, hardware profiles,
//!   the DBA step function, and training-cost-to-outperform.

pub mod adaptability;
pub mod cost;
pub mod phi;
pub mod sla;
pub mod specialization;
