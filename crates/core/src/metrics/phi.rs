//! The Φ similarity axis (§V-D.1).
//!
//! "We suggest providing an estimate of how far workload and data
//! distributions differ from each other. Similarity across workloads can be
//! estimated, for example, using the Jaccard similarity between the sets of
//! all subtrees of the query tree … Likewise, similarity across data
//! distributions can be evaluated using, e.g., the Kolmogorov-Smirnov test
//! or the Maximum Mean Discrepancy. … the similarity values, represented by
//! the function Φ, across the X-axis need not be precise, and it should be
//! sufficient to sort the results by Φ value."
//!
//! All functions return a *distance* in `[0, 1]`-ish scale where 0 means
//! identical to the baseline — exactly what the Fig. 1a X-axis needs.

use crate::{BenchError, Result};
use lsbench_query::plan::QueryNode;
use lsbench_stats::jaccard::jaccard_similarity;
use lsbench_stats::ks::ks_statistic;
use lsbench_stats::mmd::mmd_rbf;
use lsbench_workload::keygen::KeyDistribution;
use lsbench_workload::keygen::KeyGenerator;
use std::collections::HashSet;

/// How data-distribution distance is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPhiMethod {
    /// Two-sample Kolmogorov–Smirnov statistic (exact, `[0, 1]`).
    KolmogorovSmirnov,
    /// RBF-kernel Maximum Mean Discrepancy distance (≥ 0, clamped to 1).
    MaximumMeanDiscrepancy,
}

/// Φ distance between two key samples.
pub fn data_phi(baseline: &[f64], other: &[f64], method: DataPhiMethod) -> Result<f64> {
    match method {
        DataPhiMethod::KolmogorovSmirnov => {
            ks_statistic(baseline, other).map_err(|e| BenchError::Metric(e.to_string()))
        }
        DataPhiMethod::MaximumMeanDiscrepancy => {
            let m =
                mmd_rbf(baseline, other, None).map_err(|e| BenchError::Metric(e.to_string()))?;
            Ok(m.max(0.0).sqrt().min(1.0))
        }
    }
}

/// Number of samples drawn per distribution when computing Φ from specs.
const PHI_SAMPLES: usize = 4096;

/// Φ distances of each distribution from the first (the baseline), computed
/// by sampling the generators — the Fig. 1a X-axis for key-value scenarios.
pub fn distribution_phis(
    distributions: &[KeyDistribution],
    key_range: (u64, u64),
    method: DataPhiMethod,
    seed: u64,
) -> Result<Vec<f64>> {
    if distributions.is_empty() {
        return Ok(Vec::new());
    }
    let mut samples = Vec::with_capacity(distributions.len());
    for (i, d) in distributions.iter().enumerate() {
        let mut g = KeyGenerator::new(d.clone(), key_range.0, key_range.1, seed + i as u64)
            .map_err(|e| BenchError::Workload(e.to_string()))?;
        samples.push(g.sample_f64(PHI_SAMPLES));
    }
    let baseline = &samples[0];
    samples
        .iter()
        .map(|s| data_phi(baseline, s, method))
        .collect()
}

/// Φ distance between two *key-value* workloads: the mean of the operation
/// -mix distance (`1 − weighted Jaccard` over operation-kind counts) and
/// the accessed-key distribution distance (KS).
///
/// Query workloads should use [`workload_phi`] (Jaccard over query
/// subtrees, as §V-D.1 specifies); this is its key-value analogue so KV
/// scenarios get a principled Fig. 1a axis when both the mix *and* the key
/// pattern shift.
pub fn kv_workload_phi(
    a: &[lsbench_workload::ops::Operation],
    b: &[lsbench_workload::ops::Operation],
) -> Result<f64> {
    use lsbench_stats::jaccard::weighted_jaccard;
    use std::collections::HashMap;
    let count_kinds = |ops: &[lsbench_workload::ops::Operation]| {
        let mut m: HashMap<lsbench_workload::ops::OpKind, u64> = HashMap::new();
        for op in ops {
            *m.entry(op.kind()).or_insert(0) += 1;
        }
        m
    };
    let mix_distance = 1.0 - weighted_jaccard(&count_kinds(a), &count_kinds(b));
    let keys_a: Vec<f64> = a.iter().map(|o| o.key() as f64).collect();
    let keys_b: Vec<f64> = b.iter().map(|o| o.key() as f64).collect();
    let key_distance = if keys_a.is_empty() || keys_b.is_empty() {
        if keys_a.is_empty() && keys_b.is_empty() {
            0.0
        } else {
            1.0
        }
    } else {
        ks_statistic(&keys_a, &keys_b).map_err(|e| BenchError::Metric(e.to_string()))?
    };
    Ok((mix_distance + key_distance) / 2.0)
}

/// Workload Φ distance: `1 − Jaccard` over the union of all query subtree
/// hashes of each workload (§V-D.1).
pub fn workload_phi(baseline: &[QueryNode], other: &[QueryNode]) -> f64 {
    let a: HashSet<u64> = baseline.iter().flat_map(|q| q.subtree_hashes()).collect();
    let b: HashSet<u64> = other.iter().flat_map(|q| q.subtree_hashes()).collect();
    1.0 - jaccard_similarity(&a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsbench_query::plan::CmpOp;

    #[test]
    fn identical_data_zero_phi() {
        let a: Vec<f64> = (0..500).map(|i| i as f64).collect();
        assert_eq!(
            data_phi(&a, &a, DataPhiMethod::KolmogorovSmirnov).unwrap(),
            0.0
        );
        assert!(data_phi(&a, &a, DataPhiMethod::MaximumMeanDiscrepancy).unwrap() < 1e-6);
    }

    #[test]
    fn distribution_phis_sorted_by_skew() {
        // Baseline uniform; increasing zipf skew should give increasing Φ.
        let phis = distribution_phis(
            &[
                KeyDistribution::Uniform,
                KeyDistribution::Zipf { theta: 0.6 },
                KeyDistribution::Zipf { theta: 1.4 },
            ],
            (0, 1_000_000),
            DataPhiMethod::KolmogorovSmirnov,
            1,
        )
        .unwrap();
        assert_eq!(phis.len(), 3);
        assert!(phis[0] < 0.05, "baseline vs itself-ish: {phis:?}");
        assert!(phis[1] < phis[2], "phis not ordered: {phis:?}");
    }

    #[test]
    fn both_methods_agree_on_ordering() {
        let dists = [
            KeyDistribution::Uniform,
            KeyDistribution::Normal {
                center: 0.4,
                std_frac: 0.2,
            },
            KeyDistribution::Normal {
                center: 0.1,
                std_frac: 0.02,
            },
        ];
        let ks =
            distribution_phis(&dists, (0, 100_000), DataPhiMethod::KolmogorovSmirnov, 2).unwrap();
        let mmd = distribution_phis(
            &dists,
            (0, 100_000),
            DataPhiMethod::MaximumMeanDiscrepancy,
            2,
        )
        .unwrap();
        // The paper: "it should be sufficient to sort the results by Φ".
        assert!(ks[1] < ks[2]);
        assert!(mmd[1] < mmd[2]);
    }

    #[test]
    fn workload_phi_behaviour() {
        let w1 = vec![QueryNode::scan("a").filter(1, CmpOp::Lt, 100).count()];
        let w2 = vec![QueryNode::scan("a").filter(1, CmpOp::Lt, 110).count()]; // same buckets
        let w3 = vec![QueryNode::scan("b").filter(3, CmpOp::Gt, 9_999_999).count()];
        assert_eq!(workload_phi(&w1, &w1), 0.0);
        assert!(workload_phi(&w1, &w2) < 0.2);
        assert!(workload_phi(&w1, &w3) > 0.9);
    }

    #[test]
    fn kv_workload_phi_behaviour() {
        use lsbench_workload::keygen::KeyGenerator;
        use lsbench_workload::ops::{OperationGenerator, OperationMix};
        let make = |dist: KeyDistribution, mix: OperationMix, seed: u64| {
            let kg = KeyGenerator::new(dist, 0, 1_000_000, seed).unwrap();
            OperationGenerator::new(kg, mix, seed).unwrap().take(2000)
        };
        let base = make(KeyDistribution::Uniform, OperationMix::ycsb_c(), 1);
        // Same distribution + mix, different seed: near zero.
        let same = make(KeyDistribution::Uniform, OperationMix::ycsb_c(), 2);
        let phi_same = kv_workload_phi(&base, &same).unwrap();
        assert!(phi_same < 0.1, "phi_same = {phi_same}");
        // Different mix, same keys: mid.
        let other_mix = make(KeyDistribution::Uniform, OperationMix::ycsb_a(), 3);
        let phi_mix = kv_workload_phi(&base, &other_mix).unwrap();
        // Different keys AND mix: largest.
        let far = make(
            KeyDistribution::Normal {
                center: 0.95,
                std_frac: 0.01,
            },
            OperationMix::ycsb_e(),
            4,
        );
        let phi_far = kv_workload_phi(&base, &far).unwrap();
        assert!(
            phi_same < phi_mix && phi_mix < phi_far,
            "ordering broken: {phi_same} {phi_mix} {phi_far}"
        );
        assert!((0.0..=1.0).contains(&phi_far));
    }

    #[test]
    fn empty_inputs() {
        assert!(
            distribution_phis(&[], (0, 10), DataPhiMethod::KolmogorovSmirnov, 1)
                .unwrap()
                .is_empty()
        );
        assert_eq!(workload_phi(&[], &[]), 0.0);
    }
}
