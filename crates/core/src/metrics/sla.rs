//! SLA-band metrics (Fig. 1c).
//!
//! "We also propose to report query latency bands at, e.g., 1-second or
//! 10-second intervals throughout execution. Each query latency band
//! represents the number of completed queries within the interval
//! (throughput), split into two categories depending on whether the query
//! finished within the allotted Service-Level Agreement (SLA) time. …
//! the SLA threshold should ideally be determined based on a baseline
//! system's query latency statistics on the same hardware and workload
//! distribution. … A single-value metric for the adjustment speed can also
//! be obtained as the sum of query times above the SLA threshold over the
//! first N queries after a distribution change."
//!
//! The multi-band variant ("green-yellow-orange-red") is implemented too.

use crate::record::RunRecord;
use crate::{BenchError, Result};
use lsbench_stats::descriptive::quantile;
use serde::{Deserialize, Serialize};

/// How the SLA threshold is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SlaPolicy {
    /// Fixed threshold in seconds.
    Fixed {
        /// Latency threshold in virtual seconds.
        threshold: f64,
    },
    /// `multiplier ×` the baseline system's p99 latency (the paper's
    /// calibration recommendation).
    FromBaselineP99 {
        /// Multiplier on the baseline p99.
        multiplier: f64,
    },
}

impl SlaPolicy {
    /// Resolves the policy to a concrete threshold, given the baseline
    /// record when required.
    pub fn resolve(&self, baseline: Option<&RunRecord>) -> Result<f64> {
        match *self {
            SlaPolicy::Fixed { threshold } => {
                if threshold > 0.0 {
                    Ok(threshold)
                } else {
                    Err(BenchError::Metric(
                        "SLA threshold must be positive".to_string(),
                    ))
                }
            }
            SlaPolicy::FromBaselineP99 { multiplier } => {
                let baseline = baseline.ok_or_else(|| {
                    BenchError::Metric("FromBaselineP99 requires a baseline run record".to_string())
                })?;
                let lats = baseline.all_latencies();
                let p99 = quantile(&lats, 0.99).map_err(|e| BenchError::Metric(e.to_string()))?;
                Ok(p99 * multiplier)
            }
        }
    }
}

/// One interval's band: completions within / violating the SLA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Band {
    /// Queries completed within the SLA in this interval.
    pub within: usize,
    /// Queries completed but over the SLA.
    pub violated: usize,
}

impl Band {
    /// Total completions in the interval.
    pub fn total(&self) -> usize {
        self.within + self.violated
    }
}

/// Multi-band breakdown of one interval by latency relative to the SLA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ColorBand {
    /// ≤ 0.5× SLA.
    pub green: usize,
    /// 0.5–1× SLA.
    pub yellow: usize,
    /// 1–2× SLA.
    pub orange: usize,
    /// > 2× SLA.
    pub red: usize,
}

/// The full Fig. 1c report for one SUT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaReport {
    /// SUT name.
    pub sut_name: String,
    /// The resolved SLA threshold in seconds.
    pub threshold: f64,
    /// Interval width in seconds.
    pub interval: f64,
    /// Two-way bands per interval.
    pub bands: Vec<Band>,
    /// Four-way color bands per interval.
    pub color_bands: Vec<ColorBand>,
    /// Overall SLA violation fraction.
    pub violation_fraction: f64,
    /// Adjustment speed per phase change: `(phase, Σ over-SLA latency over
    /// the first N queries after the change)` — lower is faster adjustment.
    pub adjustment_speed: Vec<(usize, f64)>,
    /// N used for adjustment speed.
    pub adjustment_n: usize,
}

impl SlaReport {
    /// Builds the report. `interval` is the band width in virtual seconds;
    /// `adjustment_n` is the N of the adjustment-speed metric.
    pub fn from_record(
        record: &RunRecord,
        threshold: f64,
        interval: f64,
        adjustment_n: usize,
    ) -> Result<Self> {
        if record.ops.is_empty() {
            return Err(BenchError::Metric("empty run record".to_string()));
        }
        if threshold <= 0.0 || interval <= 0.0 {
            return Err(BenchError::Metric(
                "threshold and interval must be positive".to_string(),
            ));
        }
        let start = record.exec_start;
        let end = record.exec_end.max(start + interval);
        let n_intervals = ((end - start) / interval).ceil() as usize;
        let mut bands = vec![
            Band {
                within: 0,
                violated: 0
            };
            n_intervals
        ];
        let mut color_bands = vec![ColorBand::default(); n_intervals];
        let mut violated_total = 0usize;
        for op in &record.ops {
            let idx = (((op.t_end - start) / interval) as usize).min(n_intervals - 1);
            // A failed or timed-out query cannot satisfy the SLA no matter
            // how fast it came back: only successful, within-threshold
            // completions count as `within`.
            if op.ok && op.latency <= threshold {
                bands[idx].within += 1;
            } else {
                bands[idx].violated += 1;
                violated_total += 1;
            }
            let c = &mut color_bands[idx];
            if !op.ok {
                c.red += 1;
            } else if op.latency <= 0.5 * threshold {
                c.green += 1;
            } else if op.latency <= threshold {
                c.yellow += 1;
            } else if op.latency <= 2.0 * threshold {
                c.orange += 1;
            } else {
                c.red += 1;
            }
        }

        // Adjustment speed after each phase change.
        let mut adjustment_speed = Vec::new();
        for &(phase, t) in &record.phase_change_times {
            if phase == 0 {
                continue;
            }
            // Strictly after the change: a query completing exactly at the
            // change instant belongs to the old distribution.
            let over_sla: f64 = record
                .ops
                .iter()
                .filter(|o| o.t_end > t)
                .take(adjustment_n)
                .map(|o| (o.latency - threshold).max(0.0))
                .sum();
            adjustment_speed.push((phase, over_sla));
        }

        Ok(SlaReport {
            sut_name: record.sut_name.clone(),
            threshold,
            interval,
            bands,
            color_bands,
            violation_fraction: violated_total as f64 / record.ops.len() as f64,
            adjustment_speed,
            adjustment_n,
        })
    }
}

/// Paired Fig. 1c evaluation: resolves `policy` against the *baseline*
/// record (the paper's calibration recommendation — "the SLA threshold
/// should ideally be determined based on a baseline system's query latency
/// statistics") and evaluates **both** records against that one threshold,
/// so the two reports are directly comparable. Each record is banded over
/// its own execution span split into `intervals` equal windows.
///
/// Returns `(baseline_report, candidate_report)`.
pub fn paired_sla_reports(
    baseline: &RunRecord,
    candidate: &RunRecord,
    policy: &SlaPolicy,
    intervals: f64,
    adjustment_n: usize,
) -> Result<(SlaReport, SlaReport)> {
    if intervals < 1.0 {
        return Err(BenchError::Metric(
            "interval count must be at least 1".to_string(),
        ));
    }
    let threshold = policy.resolve(Some(baseline))?;
    let report = |record: &RunRecord| {
        let interval = (record.exec_duration() / intervals).max(f64::MIN_POSITIVE);
        SlaReport::from_record(record, threshold, interval, adjustment_n)
    };
    Ok((report(baseline)?, report(candidate)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{OpRecord, RunRecord, TrainInfo};
    use lsbench_sut::sut::SutMetrics;

    /// 100 fast ops (0.01 s), then 20 slow ops (0.5 s) right after a phase
    /// change, then 100 fast again.
    fn spike_record() -> RunRecord {
        let mut ops = Vec::new();
        let mut t = 0.0;
        let mut push = |t: &mut f64, latency: f64, phase: u16| {
            *t += latency;
            ops.push(OpRecord {
                t_end: *t,
                latency,
                phase,
                ok: true,
                in_transition: false,
            });
        };
        for _ in 0..100 {
            push(&mut t, 0.01, 0);
        }
        let change_t = t;
        for _ in 0..20 {
            push(&mut t, 0.5, 1);
        }
        for _ in 0..100 {
            push(&mut t, 0.01, 1);
        }
        RunRecord {
            sut_name: "spike".to_string(),
            scenario_name: "sla".to_string(),
            phase_names: vec!["a".to_string(), "b".to_string()],
            ops,
            phase_change_times: vec![(0, 0.0), (1, change_t)],
            train: TrainInfo::default(),
            exec_start: 0.0,
            exec_end: t,
            final_metrics: SutMetrics::default(),
            work_units_per_second: 1.0,
            faults: crate::faults::FaultStats::default(),
        }
    }

    #[test]
    fn failed_ops_violate_the_sla_regardless_of_latency() {
        let mut r = spike_record();
        // Fail five fast ops: fast enough for green, but failed queries
        // must land in the red band and count as violations.
        for op in r.ops.iter_mut().take(5) {
            op.ok = false;
        }
        let report = SlaReport::from_record(&r, 0.1, 1.0, 50).unwrap();
        let within: usize = report.bands.iter().map(|b| b.within).sum();
        let violated: usize = report.bands.iter().map(|b| b.violated).sum();
        assert_eq!(within, 220 - 20 - 5);
        assert_eq!(violated, 25);
        let red: usize = report.color_bands.iter().map(|c| c.red).sum();
        assert_eq!(red, 25, "failed ops are red, not green");
        assert!((report.violation_fraction - 25.0 / 220.0).abs() < 1e-12);
    }

    #[test]
    fn bands_conserve_ops() {
        let r = spike_record();
        let report = SlaReport::from_record(&r, 0.1, 1.0, 50).unwrap();
        let total: usize = report.bands.iter().map(|b| b.total()).sum();
        assert_eq!(total, 220);
        let color_total: usize = report
            .color_bands
            .iter()
            .map(|c| c.green + c.yellow + c.orange + c.red)
            .sum();
        assert_eq!(color_total, 220);
    }

    #[test]
    fn violations_counted() {
        let r = spike_record();
        let report = SlaReport::from_record(&r, 0.1, 1.0, 50).unwrap();
        let violated: usize = report.bands.iter().map(|b| b.violated).sum();
        assert_eq!(violated, 20); // exactly the slow ops
        assert!((report.violation_fraction - 20.0 / 220.0).abs() < 1e-9);
    }

    #[test]
    fn color_bands_classify() {
        let r = spike_record();
        // threshold 0.1: 0.01 s ops are green (≤ 0.05); 0.5 s ops are red (> 0.2).
        let report = SlaReport::from_record(&r, 0.1, 1.0, 50).unwrap();
        let green: usize = report.color_bands.iter().map(|c| c.green).sum();
        let red: usize = report.color_bands.iter().map(|c| c.red).sum();
        assert_eq!(green, 200);
        assert_eq!(red, 20);
    }

    #[test]
    fn adjustment_speed_measures_spike() {
        let r = spike_record();
        let report = SlaReport::from_record(&r, 0.1, 1.0, 50).unwrap();
        let (phase, speed) = report.adjustment_speed[0];
        assert_eq!(phase, 1);
        // 20 ops over SLA by 0.4 s each = 8.0.
        assert!((speed - 8.0).abs() < 1e-9, "speed = {speed}");
    }

    #[test]
    fn adjustment_n_limits_window() {
        let r = spike_record();
        // With N = 10 only 10 of the slow ops count.
        let report = SlaReport::from_record(&r, 0.1, 1.0, 10).unwrap();
        let (_, speed) = report.adjustment_speed[0];
        assert!((speed - 4.0).abs() < 1e-9, "speed = {speed}");
    }

    #[test]
    fn policy_resolution() {
        let r = spike_record();
        assert_eq!(
            SlaPolicy::Fixed { threshold: 0.2 }.resolve(None).unwrap(),
            0.2
        );
        assert!(SlaPolicy::Fixed { threshold: 0.0 }.resolve(None).is_err());
        let from_baseline = SlaPolicy::FromBaselineP99 { multiplier: 2.0 }
            .resolve(Some(&r))
            .unwrap();
        // p99 of the latencies is 0.5 (the slow ops are ~9% of the run);
        // actually 20/220 ≈ 9% > 1%, so p99 = 0.5 → threshold 1.0.
        assert!((from_baseline - 1.0).abs() < 1e-9, "got {from_baseline}");
        assert!(SlaPolicy::FromBaselineP99 { multiplier: 2.0 }
            .resolve(None)
            .is_err());
    }

    #[test]
    fn paired_reports_share_the_baseline_calibrated_threshold() {
        let baseline = spike_record();
        let mut candidate = spike_record();
        candidate.sut_name = "cand".to_string();
        // Calibrated from the baseline: p99 = 0.5 → threshold 1.0 applies
        // to both sides, whatever the candidate's own latencies are.
        let (b, c) = paired_sla_reports(
            &baseline,
            &candidate,
            &SlaPolicy::FromBaselineP99 { multiplier: 2.0 },
            10.0,
            50,
        )
        .unwrap();
        assert_eq!(b.threshold, c.threshold);
        assert!((b.threshold - 1.0).abs() < 1e-9, "got {}", b.threshold);
        assert_eq!(b.sut_name, "spike");
        assert_eq!(c.sut_name, "cand");
        assert!(paired_sla_reports(
            &baseline,
            &candidate,
            &SlaPolicy::Fixed { threshold: 0.1 },
            0.5,
            50
        )
        .is_err());
    }

    #[test]
    fn invalid_params_rejected() {
        let r = spike_record();
        assert!(SlaReport::from_record(&r, 0.0, 1.0, 10).is_err());
        assert!(SlaReport::from_record(&r, 0.1, 0.0, 10).is_err());
        let mut empty = r;
        empty.ops.clear();
        assert!(SlaReport::from_record(&empty, 0.1, 1.0, 10).is_err());
    }
}
