//! Specialization metric (Fig. 1a).
//!
//! "We propose to report throughput for each combination of workload and
//! data distribution. However, instead of only reporting the average
//! throughput, the benchmark should report descriptive statistics (e.g.,
//! using a box plot) … Figure 1a shows an example where we select the first
//! workload or data distribution as a baseline" with the X-axis sorted by
//! the Φ similarity value.

use crate::record::RunRecord;
use crate::{BenchError, Result};
use lsbench_stats::descriptive::BoxPlot;
use serde::{Deserialize, Serialize};

/// Per-phase specialization entry: Φ distance plus throughput box plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpecialization {
    /// Phase name (the workload/data distribution label).
    pub phase: String,
    /// Φ distance from the baseline (first) distribution.
    pub phi: f64,
    /// Box-plot statistics of windowed throughput samples (ops/sec).
    pub throughput: BoxPlot,
    /// Whether this phase was a hold-out (out-of-sample) distribution.
    pub holdout: bool,
}

/// The full Fig. 1a report for one SUT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecializationReport {
    /// SUT name.
    pub sut_name: String,
    /// Entries sorted ascending by Φ (the paper's X-axis order).
    pub entries: Vec<PhaseSpecialization>,
    /// Operations per throughput window used for sampling.
    pub ops_per_window: usize,
}

impl SpecializationReport {
    /// Builds the report from a run record and the per-phase Φ values
    /// (`phis[i]` is the distance of phase `i` from the baseline; compute
    /// with [`crate::metrics::phi`]). `holdout_phases` flags out-of-sample
    /// phases.
    pub fn from_record(
        record: &RunRecord,
        phis: &[f64],
        ops_per_window: usize,
        holdout_phases: &[usize],
    ) -> Result<Self> {
        if phis.len() != record.phase_names.len() {
            return Err(BenchError::Metric(format!(
                "need {} phi values, got {}",
                record.phase_names.len(),
                phis.len()
            )));
        }
        if ops_per_window < 2 {
            return Err(BenchError::Metric(
                "ops_per_window must be at least 2".to_string(),
            ));
        }
        let mut entries = Vec::with_capacity(record.phase_names.len());
        for (i, name) in record.phase_names.iter().enumerate() {
            let samples = record.phase_throughput_samples(i, ops_per_window);
            if samples.is_empty() {
                continue; // phase produced too few completions to sample
            }
            let throughput =
                BoxPlot::of(&samples).map_err(|e| BenchError::Metric(e.to_string()))?;
            entries.push(PhaseSpecialization {
                phase: name.clone(),
                phi: phis[i],
                throughput,
                holdout: holdout_phases.contains(&i),
            });
        }
        entries.sort_by(|a, b| a.phi.partial_cmp(&b.phi).expect("phi values are finite"));
        Ok(SpecializationReport {
            sut_name: record.sut_name.clone(),
            entries,
            ops_per_window,
        })
    }

    /// The paper's "stability" view: ratio of the worst phase's median
    /// throughput to the best phase's — 1.0 means perfectly even
    /// specialization, small values mean the system collapses on some
    /// distributions.
    pub fn worst_to_best_ratio(&self) -> Option<f64> {
        let medians: Vec<f64> = self
            .entries
            .iter()
            .map(|e| e.throughput.five.median)
            .collect();
        if medians.is_empty() {
            return None;
        }
        let best = medians.iter().cloned().fold(f64::MIN, f64::max);
        let worst = medians.iter().cloned().fold(f64::MAX, f64::min);
        if best <= 0.0 {
            None
        } else {
            Some(worst / best)
        }
    }
}

/// Deltas between two box plots, stat by stat (candidate − baseline) —
/// the Fig. 1a paired view: distribution shape differences, not means.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStatDelta {
    /// Median delta.
    pub median: f64,
    /// First-quartile delta.
    pub q1: f64,
    /// Third-quartile delta.
    pub q3: f64,
    /// Lower-whisker delta.
    pub whisker_lo: f64,
    /// Upper-whisker delta.
    pub whisker_hi: f64,
}

impl BoxStatDelta {
    /// Candidate minus baseline, stat by stat.
    pub fn between(baseline: &BoxPlot, candidate: &BoxPlot) -> Self {
        BoxStatDelta {
            median: candidate.five.median - baseline.five.median,
            q1: candidate.five.q1 - baseline.five.q1,
            q3: candidate.five.q3 - baseline.five.q3,
            whisker_lo: candidate.whisker_lo - baseline.whisker_lo,
            whisker_hi: candidate.whisker_hi - baseline.whisker_hi,
        }
    }

    /// True when every stat delta is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.median == 0.0
            && self.q1 == 0.0
            && self.q3 == 0.0
            && self.whisker_lo == 0.0
            && self.whisker_hi == 0.0
    }
}

/// One phase's head-to-head throughput comparison: both systems' windowed-
/// throughput box plots plus their stat-wise delta.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseBoxDelta {
    /// Phase name (matched by name across the two records).
    pub phase: String,
    /// Baseline throughput box plot (ops/sec).
    pub baseline: BoxPlot,
    /// Candidate throughput box plot (ops/sec).
    pub candidate: BoxPlot,
    /// Candidate − baseline, stat by stat.
    pub delta: BoxStatDelta,
}

/// The paired Fig. 1a metric: per-phase windowed-throughput box-plot
/// deltas between two records. Phases are matched by *name* in the
/// baseline's order; phases missing from the candidate, or with too few
/// completions on either side to fill one window, are skipped.
pub fn paired_phase_deltas(
    baseline: &RunRecord,
    candidate: &RunRecord,
    ops_per_window: usize,
) -> Result<Vec<PhaseBoxDelta>> {
    if ops_per_window < 2 {
        return Err(BenchError::Metric(
            "ops_per_window must be at least 2".to_string(),
        ));
    }
    let mut out = Vec::new();
    for (bi, name) in baseline.phase_names.iter().enumerate() {
        let Some(ci) = candidate.phase_names.iter().position(|n| n == name) else {
            continue;
        };
        let b_samples = baseline.phase_throughput_samples(bi, ops_per_window);
        let c_samples = candidate.phase_throughput_samples(ci, ops_per_window);
        if b_samples.is_empty() || c_samples.is_empty() {
            continue;
        }
        let b = BoxPlot::of(&b_samples).map_err(|e| BenchError::Metric(e.to_string()))?;
        let c = BoxPlot::of(&c_samples).map_err(|e| BenchError::Metric(e.to_string()))?;
        out.push(PhaseBoxDelta {
            phase: name.clone(),
            delta: BoxStatDelta::between(&b, &c),
            baseline: b,
            candidate: c,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{OpRecord, RunRecord, TrainInfo};
    use lsbench_sut::sut::SutMetrics;

    fn record_with_speeds(speeds: &[f64]) -> RunRecord {
        // Each phase completes 100 ops at the given ops/sec.
        let mut ops = Vec::new();
        let mut t = 0.0;
        for (phase, &speed) in speeds.iter().enumerate() {
            for _ in 0..100 {
                t += 1.0 / speed;
                ops.push(OpRecord {
                    t_end: t,
                    latency: 1.0 / speed,
                    phase: phase as u16,
                    ok: true,
                    in_transition: false,
                });
            }
        }
        RunRecord {
            sut_name: "fake".to_string(),
            scenario_name: "spec".to_string(),
            phase_names: (0..speeds.len()).map(|i| format!("p{i}")).collect(),
            ops,
            phase_change_times: vec![],
            train: TrainInfo::default(),
            exec_start: 0.0,
            exec_end: t,
            final_metrics: SutMetrics::default(),
            work_units_per_second: 1.0,
            faults: crate::faults::FaultStats::default(),
        }
    }

    #[test]
    fn report_builds_and_sorts_by_phi() {
        let r = record_with_speeds(&[100.0, 50.0, 200.0]);
        let report = SpecializationReport::from_record(&r, &[0.0, 0.9, 0.4], 10, &[]).unwrap();
        assert_eq!(report.entries.len(), 3);
        // Sorted by phi: p0 (0.0), p2 (0.4), p1 (0.9).
        assert_eq!(report.entries[0].phase, "p0");
        assert_eq!(report.entries[1].phase, "p2");
        assert_eq!(report.entries[2].phase, "p1");
        // Median throughputs track the configured speeds.
        assert!((report.entries[0].throughput.five.median - 100.0).abs() < 5.0);
        assert!((report.entries[2].throughput.five.median - 50.0).abs() < 3.0);
    }

    #[test]
    fn holdout_flagging() {
        let r = record_with_speeds(&[100.0, 50.0]);
        let report = SpecializationReport::from_record(&r, &[0.0, 0.5], 10, &[1]).unwrap();
        assert!(!report.entries[0].holdout);
        assert!(report.entries[1].holdout);
    }

    #[test]
    fn worst_to_best_ratio() {
        let r = record_with_speeds(&[100.0, 50.0]);
        let report = SpecializationReport::from_record(&r, &[0.0, 0.5], 10, &[]).unwrap();
        let ratio = report.worst_to_best_ratio().unwrap();
        assert!((ratio - 0.5).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn paired_deltas_match_phases_by_name() {
        let slow = record_with_speeds(&[100.0, 50.0]);
        let fast = record_with_speeds(&[200.0, 150.0]);
        let deltas = paired_phase_deltas(&slow, &fast, 10).unwrap();
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].phase, "p0");
        // The candidate is faster in both phases: positive median deltas.
        assert!(deltas.iter().all(|d| d.delta.median > 0.0));
        // Identity comparison: every stat delta exactly zero.
        let same = paired_phase_deltas(&slow, &slow, 10).unwrap();
        assert!(same.iter().all(|d| d.delta.is_zero()));
        // Phases absent on one side are skipped, not errors.
        let three = record_with_speeds(&[100.0, 50.0, 25.0]);
        assert_eq!(paired_phase_deltas(&three, &slow, 10).unwrap().len(), 2);
        assert!(paired_phase_deltas(&slow, &fast, 1).is_err());
    }

    #[test]
    fn phi_length_mismatch_rejected() {
        let r = record_with_speeds(&[100.0]);
        assert!(SpecializationReport::from_record(&r, &[0.0, 1.0], 10, &[]).is_err());
        assert!(SpecializationReport::from_record(&r, &[0.0], 1, &[]).is_err());
    }
}
