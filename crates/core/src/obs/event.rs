//! Run events: the structured trace vocabulary.
//!
//! Every notable thing that happens inside a benchmark run — a phase
//! boundary, a retraining burst, a maintenance slot that did work, an SLA
//! violation, a backlog high-water mark — is captured as a [`RunEvent`]
//! stamped with the **virtual clock**. Because the clock is deterministic,
//! traces are deterministic too: the same scenario, seed, and lane count
//! produce the same event stream for any worker-thread count, which is
//! what makes a `trace.jsonl` artifact a reproducible diagnostic rather
//! than a one-off log.

use serde::{Deserialize, Serialize};

/// One structured occurrence inside a benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RunEvent {
    /// Offline training began with this work budget.
    TrainStart {
        /// Training budget in work units (`u64::MAX` = unlimited).
        budget: u64,
    },
    /// Offline training finished having spent this much work.
    TrainEnd {
        /// Work units actually consumed by training.
        work: u64,
    },
    /// A workload phase became active (for the emitting lane).
    PhaseChange {
        /// Phase index that became active.
        phase: usize,
    },
    /// A phase-change announcement triggered online retraining work.
    RetrainBurst {
        /// Phase whose announcement triggered the burst.
        phase: usize,
        /// Adaptation work units performed.
        work: u64,
    },
    /// A maintenance slot in which the SUT actually did work.
    MaintenanceSlot {
        /// Maintenance work units performed.
        work: u64,
    },
    /// The adaptation backlog reached a new high-water mark.
    BacklogHighWater {
        /// Backlog depth in virtual seconds of full-rate work.
        seconds: f64,
    },
    /// A completed operation's latency exceeded the configured SLA
    /// threshold (only emitted when [`ObsConfig::sla_threshold`] is set).
    ///
    /// [`ObsConfig::sla_threshold`]: crate::obs::ObsConfig::sla_threshold
    SlaViolation {
        /// The violating latency in virtual seconds.
        latency: f64,
    },
    /// The fault layer injected a fault into a completing operation.
    FaultInjected {
        /// What was injected.
        fault: crate::faults::FaultKind,
    },
    /// The retry policy re-issued a query after a transient failure or
    /// timeout.
    QueryRetried {
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// A query attempt was abandoned at the per-query timeout.
    QueryTimedOut {
        /// Client-observed latency of the abandoned operation.
        latency: f64,
    },
    /// The concurrent engine merged per-lane results into one record.
    ShardMerge {
        /// Logical lanes merged.
        lanes: usize,
        /// Worker threads that executed them.
        threads: usize,
    },
    /// The run finished (all operations completed, backlog paid).
    RunEnd {
        /// Operations completed over the whole run.
        ops: u64,
    },
}

impl RunEvent {
    /// Short stable name of the event kind (used in summaries and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            RunEvent::TrainStart { .. } => "train_start",
            RunEvent::TrainEnd { .. } => "train_end",
            RunEvent::PhaseChange { .. } => "phase_change",
            RunEvent::RetrainBurst { .. } => "retrain_burst",
            RunEvent::MaintenanceSlot { .. } => "maintenance_slot",
            RunEvent::BacklogHighWater { .. } => "backlog_high_water",
            RunEvent::SlaViolation { .. } => "sla_violation",
            RunEvent::FaultInjected { .. } => "fault_injected",
            RunEvent::QueryRetried { .. } => "query_retried",
            RunEvent::QueryTimedOut { .. } => "query_timed_out",
            RunEvent::ShardMerge { .. } => "shard_merge",
            RunEvent::RunEnd { .. } => "run_end",
        }
    }
}

/// A [`RunEvent`] stamped with virtual time and provenance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time of the event in seconds.
    pub t: f64,
    /// Emitting lane (`None` = the run coordinator / serial driver).
    pub lane: Option<usize>,
    /// Per-emitter sequence number; `(t, lane, seq)` is a total order.
    pub seq: u64,
    /// The event itself.
    pub event: RunEvent,
}

impl TraceEvent {
    /// Total-order comparison: virtual time, then coordinator-before-lanes,
    /// then per-emitter sequence. Used to merge per-lane event streams into
    /// one deterministic trace regardless of worker scheduling.
    pub fn order(&self, other: &TraceEvent) -> std::cmp::Ordering {
        self.t
            .total_cmp(&other.t)
            .then_with(|| match (self.lane, other.lane) {
                (None, None) => std::cmp::Ordering::Equal,
                (None, Some(_)) => std::cmp::Ordering::Less,
                (Some(_), None) => std::cmp::Ordering::Greater,
                (Some(a), Some(b)) => a.cmp(&b),
            })
            .then(self.seq.cmp(&other.seq))
    }
}

/// A complete, merged, time-ordered event trace for one run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceLog {
    /// Events in `(t, lane, seq)` order.
    pub events: Vec<TraceEvent>,
    /// Events discarded because a ring buffer reached capacity.
    pub dropped: u64,
}

impl TraceLog {
    /// Number of events of the given kind (see [`RunEvent::kind`]).
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.event.kind() == kind)
            .count()
    }

    /// Phase boundaries as the run record defines them: for every phase,
    /// the *earliest* time any lane saw it, sorted by time then phase —
    /// exactly the fold the engine merge applies to produce
    /// [`RunRecord::phase_change_times`](crate::record::RunRecord::phase_change_times).
    pub fn phase_boundaries(&self) -> Vec<(usize, f64)> {
        let mut first: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for e in &self.events {
            if let RunEvent::PhaseChange { phase } = e.event {
                first
                    .entry(phase)
                    .and_modify(|t| *t = t.min(e.t))
                    .or_insert(e.t);
            }
        }
        let mut out: Vec<(usize, f64)> = first.into_iter().collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Renders the trace as JSON lines, one event per line.
    pub fn to_jsonl(&self) -> crate::Result<String> {
        self.to_jsonl_tagged(&[])
    }

    /// Renders the trace as JSON lines with extra context fields (e.g.
    /// `[("sut", "rmi"), ("scenario", "S1")]`) prepended to every line, so
    /// multiple runs can share one artifact file.
    pub fn to_jsonl_tagged(&self, tags: &[(&str, &str)]) -> crate::Result<String> {
        use serde::{Serialize as _, Value};
        let mut out = String::new();
        for e in &self.events {
            let mut entries: Vec<(String, Value)> = tags
                .iter()
                .map(|(k, v)| (k.to_string(), Value::Str(v.to_string())))
                .collect();
            entries.push(("kind".to_string(), Value::Str(e.event.kind().to_string())));
            match e.to_value() {
                Value::Object(fields) => entries.extend(fields),
                other => entries.push(("event".to_string(), other)),
            }
            let line = serde_json::to_string(&Value::Object(entries))
                .map_err(|err| crate::BenchError::Serialization(err.to_string()))?;
            out.push_str(&line);
            out.push('\n');
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, lane: Option<usize>, seq: u64, event: RunEvent) -> TraceEvent {
        TraceEvent {
            t,
            lane,
            seq,
            event,
        }
    }

    #[test]
    fn order_is_time_then_lane_then_seq() {
        let a = ev(1.0, None, 0, RunEvent::PhaseChange { phase: 0 });
        let b = ev(1.0, Some(0), 0, RunEvent::PhaseChange { phase: 1 });
        let c = ev(1.0, Some(1), 0, RunEvent::PhaseChange { phase: 2 });
        let d = ev(0.5, Some(9), 7, RunEvent::RunEnd { ops: 1 });
        let mut v = [c, a, b, d];
        v.sort_by(TraceEvent::order);
        assert_eq!(v[0].t, 0.5);
        assert_eq!(v[1].lane, None);
        assert_eq!(v[2].lane, Some(0));
        assert_eq!(v[3].lane, Some(1));
    }

    #[test]
    fn phase_boundaries_take_min_per_phase() {
        let log = TraceLog {
            events: vec![
                ev(0.0, None, 0, RunEvent::PhaseChange { phase: 0 }),
                ev(2.0, Some(1), 0, RunEvent::PhaseChange { phase: 1 }),
                ev(1.5, Some(0), 0, RunEvent::PhaseChange { phase: 1 }),
                ev(1.0, Some(0), 1, RunEvent::MaintenanceSlot { work: 3 }),
            ],
            dropped: 0,
        };
        assert_eq!(log.phase_boundaries(), vec![(0, 0.0), (1, 1.5)]);
        assert_eq!(log.count_kind("phase_change"), 3);
        assert_eq!(log.count_kind("maintenance_slot"), 1);
    }

    #[test]
    fn jsonl_round_trips_and_tags() {
        let log = TraceLog {
            events: vec![ev(0.25, Some(2), 4, RunEvent::TrainEnd { work: 10 })],
            dropped: 0,
        };
        let jsonl = log.to_jsonl_tagged(&[("sut", "rmi")]).unwrap();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"sut\":\"rmi\""));
        assert!(jsonl.contains("TrainEnd"));
        // The untagged line parses back into a TraceEvent.
        let plain = log.to_jsonl().unwrap();
        let back: TraceEvent = serde_json::from_str(plain.lines().next().unwrap()).unwrap();
        assert_eq!(back, log.events[0]);
    }
}
