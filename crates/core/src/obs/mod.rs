//! Structured observability: run-event tracing, metrics, profiling spans.
//!
//! Three layers, all optional and all zero-cost when disabled:
//!
//! 1. **Event tracing** — [`RunEvent`]s (phase changes, train start/end,
//!    retraining bursts, maintenance slots, SLA violations, backlog
//!    high-water marks, shard merges) stamped with the **virtual clock**,
//!    merged into a deterministic [`TraceLog`] and replayable into
//!    [`EventSink`]s (in-memory [`RingBufferSink`], artifact-writing
//!    [`JsonlSink`]).
//! 2. **Metrics** — a [`MetricsRegistry`] of counters, high-water gauges,
//!    and per-interval latency histograms, accumulated lane-locally and
//!    merged at join; exposed per scenario in
//!    [`ScenarioSummary`](crate::suite::ScenarioSummary).
//! 3. **Profiling spans** — wall-clock [`ScopeTimer`]s around bulk-load,
//!    train, steady-state, and merge, rendered as a span tree by
//!    `lsbench suite --trace`. Spans measure host time and therefore live
//!    *outside* the deterministic trace.
//!
//! The invariant the whole module is built around: observation never
//! touches the virtual clock, so a run produces a bit-identical
//! [`RunRecord`](crate::record::RunRecord) whether tracing is on, off, or
//! absent (see `tests/observability.rs`).

mod event;
mod observer;
mod registry;
mod sink;
mod span;

pub use event::{RunEvent, TraceEvent, TraceLog};
pub use observer::{LaneObs, ObsConfig, ObsReport, RunObserver, DEFAULT_RING_CAPACITY};
pub use registry::{
    IntervalHistogram, MetricsRegistry, DEFAULT_INTERVAL_WIDTH, MAX_INTERVAL_SLICES,
};
pub use sink::{EventSink, JsonlSink, RingBufferSink};
pub use span::{render_spans, ScopeTimer, SpanCollector, SpanNode};
