//! The run observer: per-lane collection plus deterministic merge.
//!
//! A [`RunObserver`] owns the observability state for one run. The driver
//! (or engine coordinator) emits coordinator-level events through the
//! observer directly; each engine lane gets its own [`LaneObs`] that
//! travels with the lane's state, buffers events locally, and is absorbed
//! back at join. Because events carry virtual timestamps and a per-emitter
//! sequence number, the merged [`TraceLog`] is identical for any worker
//! thread count.
//!
//! Observation must **never** advance or read the virtual clock as a side
//! effect — that is the structural guarantee behind the bit-identical
//! `RunRecord` requirement, enforced by `tests/observability.rs`.

use super::event::{RunEvent, TraceEvent, TraceLog};
use super::registry::{IntervalHistogram, MetricsRegistry, DEFAULT_INTERVAL_WIDTH};
use super::span::{SpanCollector, SpanNode};
use crate::engine::latency::latency_to_ns;

/// Default per-emitter event buffer capacity.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// What to observe during a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsConfig {
    /// Buffer [`TraceEvent`]s and expose a merged [`TraceLog`].
    pub trace: bool,
    /// Per-emitter event buffer capacity; overflow increments
    /// [`TraceLog::dropped`].
    pub ring_capacity: usize,
    /// Latency threshold (virtual seconds) above which completed ops emit
    /// [`RunEvent::SlaViolation`] and bump the `sla_violations` counter.
    pub sla_threshold: Option<f64>,
    /// Record per-op latencies into the `latency` interval histogram.
    pub latency_metric: bool,
    /// Interval width (virtual seconds) for the latency histogram slices.
    pub interval_width: f64,
    /// Collect wall-clock [`ScopeTimer`](super::ScopeTimer) spans.
    pub spans: bool,
}

impl Default for ObsConfig {
    /// Metrics-only observation: counters, gauges, and the latency
    /// histogram, but no event trace and no wall-clock spans.
    fn default() -> Self {
        ObsConfig {
            trace: false,
            ring_capacity: DEFAULT_RING_CAPACITY,
            sla_threshold: None,
            latency_metric: true,
            interval_width: DEFAULT_INTERVAL_WIDTH,
            spans: false,
        }
    }
}

impl ObsConfig {
    /// Full observation: event trace, latency metrics, and spans.
    pub fn traced() -> Self {
        ObsConfig {
            trace: true,
            spans: true,
            ..ObsConfig::default()
        }
    }

    /// Sets the SLA threshold (virtual seconds) for violation events.
    pub fn with_sla(mut self, threshold: f64) -> Self {
        self.sla_threshold = Some(threshold);
        self
    }
}

/// Hot-path counters kept as a plain struct (no map lookups per op);
/// folded into the [`MetricsRegistry`] once at run end.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct CoreCounters {
    completed: u64,
    failed: u64,
    phase_changes: u64,
    maintenance_slots: u64,
    maintenance_work: u64,
    retrain_bursts: u64,
    retrain_work: u64,
    sla_violations: u64,
    faults_injected: u64,
    query_retries: u64,
    query_timeouts: u64,
}

/// Per-emitter observation state: one per engine lane, plus one owned by
/// the coordinator (`lane = None`). Travels with the lane across worker
/// threads; merged deterministically at join.
#[derive(Debug)]
pub struct LaneObs {
    cfg: ObsConfig,
    active: bool,
    lane: Option<usize>,
    seq: u64,
    events: Vec<TraceEvent>,
    dropped: u64,
    counters: CoreCounters,
    backlog_high_water: f64,
    latency: Option<IntervalHistogram>,
}

impl LaneObs {
    fn new(lane: Option<usize>, cfg: ObsConfig, active: bool) -> Self {
        LaneObs {
            cfg,
            active,
            lane,
            seq: 0,
            events: Vec::new(),
            dropped: 0,
            counters: CoreCounters::default(),
            backlog_high_water: 0.0,
            latency: if active && cfg.latency_metric {
                Some(IntervalHistogram::new(cfg.interval_width))
            } else {
                None
            },
        }
    }

    /// A fully inert emitter: every hook returns immediately.
    pub fn inert() -> Self {
        LaneObs::new(None, ObsConfig::default(), false)
    }

    /// An emitter for engine lane `lane`, built from the parameters the
    /// coordinator ships to every worker. Equivalent to
    /// [`RunObserver::lane_obs`] but constructible worker-side.
    pub fn for_lane(lane: usize, cfg: ObsConfig, active: bool) -> Self {
        LaneObs::new(Some(lane), cfg, active)
    }

    /// True when this emitter records anything at all.
    pub fn is_active(&self) -> bool {
        self.active
    }

    #[inline]
    fn push(&mut self, t: f64, event: RunEvent) {
        if !self.cfg.trace {
            return;
        }
        if self.events.len() >= self.cfg.ring_capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            t,
            lane: self.lane,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// The emitting lane became active in `phase` at virtual time `t`.
    #[inline]
    pub fn phase_change(&mut self, t: f64, phase: usize) {
        if !self.active {
            return;
        }
        self.counters.phase_changes += 1;
        self.push(t, RunEvent::PhaseChange { phase });
    }

    /// A phase announcement triggered `work` units of online retraining.
    #[inline]
    pub fn retrain_burst(&mut self, t: f64, phase: usize, work: u64) {
        if !self.active || work == 0 {
            return;
        }
        self.counters.retrain_bursts += 1;
        self.counters.retrain_work += work;
        self.push(t, RunEvent::RetrainBurst { phase, work });
    }

    /// A maintenance slot was offered; `work` is what the SUT did with it
    /// (events are only emitted for non-zero work, the slot counter counts
    /// every offer).
    #[inline]
    pub fn maintenance(&mut self, t: f64, work: u64) {
        if !self.active {
            return;
        }
        self.counters.maintenance_slots += 1;
        if work > 0 {
            self.counters.maintenance_work += work;
            self.push(t, RunEvent::MaintenanceSlot { work });
        }
    }

    /// An operation completed at virtual time `t_end` (`t_rel` seconds after
    /// execution start) with the given latency and success flag.
    #[inline]
    pub fn op_done(&mut self, t_end: f64, t_rel: f64, latency: f64, ok: bool) {
        if !self.active {
            return;
        }
        if ok {
            self.counters.completed += 1;
        } else {
            self.counters.failed += 1;
        }
        if let Some(thr) = self.cfg.sla_threshold {
            // A failed (or timed-out) operation violates the SLA no matter
            // how fast it failed — mirrors SlaReport's attribution.
            if latency > thr || !ok {
                self.counters.sla_violations += 1;
                self.push(t_end, RunEvent::SlaViolation { latency });
            }
        }
        if let Some(hist) = self.latency.as_mut() {
            hist.record(t_rel, latency_to_ns(latency));
        }
    }

    /// The fault layer injected `fault` into the operation completing at
    /// `t`.
    #[inline]
    pub fn fault_injected(&mut self, t: f64, fault: crate::faults::FaultKind) {
        if !self.active {
            return;
        }
        self.counters.faults_injected += 1;
        self.push(t, RunEvent::FaultInjected { fault });
    }

    /// The retry policy issued retry number `attempt` (1-based) for the
    /// operation completing at `t`.
    #[inline]
    pub fn query_retried(&mut self, t: f64, attempt: u32) {
        if !self.active {
            return;
        }
        self.counters.query_retries += 1;
        self.push(t, RunEvent::QueryRetried { attempt });
    }

    /// A query attempt was abandoned at the per-query timeout; the
    /// operation completed at `t` with client-observed `latency`.
    #[inline]
    pub fn query_timed_out(&mut self, t: f64, latency: f64) {
        if !self.active {
            return;
        }
        self.counters.query_timeouts += 1;
        self.push(t, RunEvent::QueryTimedOut { latency });
    }

    /// The adaptation backlog stands at `seconds`; emits a high-water event
    /// on strictly new maxima only, so the event count stays bounded.
    #[inline]
    pub fn backlog(&mut self, t: f64, seconds: f64) {
        if !self.active {
            return;
        }
        if seconds > self.backlog_high_water {
            self.backlog_high_water = seconds;
            self.push(t, RunEvent::BacklogHighWater { seconds });
        }
    }

    fn fold_into(&self, reg: &mut MetricsRegistry) {
        let c = &self.counters;
        for (name, v) in [
            ("ops_completed", c.completed),
            ("ops_failed", c.failed),
            ("phase_changes", c.phase_changes),
            ("maintenance_slots", c.maintenance_slots),
            ("maintenance_work_units", c.maintenance_work),
            ("retrain_bursts", c.retrain_bursts),
            ("retrain_work_units", c.retrain_work),
            ("sla_violations", c.sla_violations),
            ("faults_injected", c.faults_injected),
            ("query_retries", c.query_retries),
            ("query_timeouts", c.query_timeouts),
        ] {
            if v > 0 {
                reg.inc(name, v);
            }
        }
        if self.backlog_high_water > 0.0 {
            reg.gauge_max("backlog_high_water_s", self.backlog_high_water);
        }
    }
}

/// Everything a run's observation produced.
#[derive(Debug, Default)]
pub struct ObsReport {
    /// Merged, time-ordered event trace (when tracing was on).
    pub trace: Option<TraceLog>,
    /// Counters, gauges, and histograms merged across lanes.
    pub metrics: MetricsRegistry,
    /// Completed wall-clock spans (when span collection was on).
    pub spans: Vec<SpanNode>,
}

/// Observability state for one run: the coordinator's own emitter, lane
/// emitters handed out to (and absorbed back from) engine workers, and the
/// wall-clock span collector.
#[derive(Debug)]
pub struct RunObserver {
    cfg: ObsConfig,
    active: bool,
    /// Coordinator-level emitter (train, phase-0 anchor, merge, run end).
    pub root: LaneObs,
    lanes: Vec<LaneObs>,
    /// Wall-clock span collector (never part of the deterministic trace).
    pub spans: SpanCollector,
}

impl RunObserver {
    /// An active observer with the given configuration.
    pub fn new(cfg: ObsConfig) -> Self {
        RunObserver {
            cfg,
            active: true,
            root: LaneObs::new(None, cfg, true),
            lanes: Vec::new(),
            spans: SpanCollector::new(cfg.spans),
        }
    }

    /// A fully inert observer: zero work on every hook. Used by the legacy
    /// entry points so existing callers pay nothing.
    pub fn disabled() -> Self {
        RunObserver {
            cfg: ObsConfig::default(),
            active: false,
            root: LaneObs::inert(),
            lanes: Vec::new(),
            spans: SpanCollector::new(false),
        }
    }

    /// True when this observer records anything at all.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The configuration this observer was built with.
    pub fn config(&self) -> &ObsConfig {
        &self.cfg
    }

    /// Creates the emitter for engine lane `lane`, to be moved into the
    /// lane's worker-side state and later returned via [`absorb`](Self::absorb).
    pub fn lane_obs(&self, lane: usize) -> LaneObs {
        LaneObs::new(Some(lane), self.cfg, self.active)
    }

    /// Takes back lane emitters after the workers join.
    pub fn absorb(&mut self, lanes: Vec<LaneObs>) {
        self.lanes.extend(lanes);
    }

    /// Offline training started with this budget.
    pub fn train_start(&mut self, t: f64, budget: u64) {
        if self.active {
            self.root.push(t, RunEvent::TrainStart { budget });
        }
    }

    /// Offline training finished having spent `work` units.
    pub fn train_end(&mut self, t: f64, work: u64) {
        if self.active {
            self.root.push(t, RunEvent::TrainEnd { work });
        }
    }

    /// The engine merged `lanes` lanes executed by `threads` threads.
    pub fn shard_merge(&mut self, t: f64, lanes: usize, threads: usize) {
        if self.active {
            self.root.push(t, RunEvent::ShardMerge { lanes, threads });
        }
    }

    /// The run finished with `ops` completed operations.
    pub fn run_end(&mut self, t: f64, ops: u64) {
        if self.active {
            self.root.push(t, RunEvent::RunEnd { ops });
        }
    }

    /// Merges all emitters into the final report: events sorted by
    /// `(t, coordinator-before-lanes, lane, seq)`, counters summed, gauges
    /// maxed, histograms merged.
    pub fn finish(self) -> crate::Result<ObsReport> {
        let RunObserver {
            cfg,
            active,
            root,
            lanes,
            spans,
        } = self;
        let mut report = ObsReport {
            trace: None,
            metrics: MetricsRegistry::new(),
            spans: spans.finish(),
        };
        if !active {
            return Ok(report);
        }
        let mut emitters: Vec<&LaneObs> = Vec::with_capacity(lanes.len() + 1);
        emitters.push(&root);
        emitters.extend(lanes.iter());
        for e in &emitters {
            e.fold_into(&mut report.metrics);
            if let Some(hist) = &e.latency {
                match report.metrics.histograms.get_mut("latency") {
                    Some(mine) => mine.merge(hist)?,
                    None => {
                        report
                            .metrics
                            .histograms
                            .insert("latency".to_string(), hist.clone());
                    }
                }
            }
        }
        if cfg.trace {
            let mut events: Vec<TraceEvent> = emitters
                .iter()
                .flat_map(|e| e.events.iter().copied())
                .collect();
            events.sort_by(TraceEvent::order);
            let dropped = emitters.iter().map(|e| e.dropped).sum();
            report.trace = Some(TraceLog { events, dropped });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_records_nothing() {
        let mut obs = RunObserver::disabled();
        obs.train_start(0.0, 100);
        obs.root.phase_change(0.0, 0);
        obs.root.op_done(1.0, 1.0, 0.5, true);
        obs.root.backlog(1.0, 3.0);
        obs.run_end(2.0, 1);
        let report = obs.finish().unwrap();
        assert!(report.trace.is_none());
        assert!(report.metrics.is_empty());
        assert!(report.spans.is_empty());
    }

    #[test]
    fn lane_merge_is_order_independent() {
        let build = |order: [usize; 2]| {
            let mut obs = RunObserver::new(ObsConfig::traced());
            obs.train_start(0.0, 10);
            obs.train_end(0.5, 10);
            let mut lanes: Vec<LaneObs> = (0..2).map(|l| obs.lane_obs(l)).collect();
            lanes[0].phase_change(1.0, 0);
            lanes[1].phase_change(1.2, 0);
            lanes[1].phase_change(2.0, 1);
            lanes[0].phase_change(2.5, 1);
            // Absorb in the given order — must not matter.
            let mut v: Vec<LaneObs> = Vec::new();
            for i in order {
                v.push(std::mem::replace(&mut lanes[i], LaneObs::inert()));
            }
            obs.absorb(v);
            obs.run_end(3.0, 4);
            obs.finish().unwrap().trace.unwrap()
        };
        let a = build([0, 1]);
        let b = build([1, 0]);
        assert_eq!(a, b);
        assert_eq!(a.phase_boundaries(), vec![(0, 1.0), (1, 2.0)]);
        assert_eq!(a.count_kind("train_start"), 1);
    }

    #[test]
    fn counters_and_gauges_fold_across_lanes() {
        let mut obs = RunObserver::new(ObsConfig::default().with_sla(0.1));
        let mut l0 = obs.lane_obs(0);
        let mut l1 = obs.lane_obs(1);
        l0.op_done(1.0, 1.0, 0.05, true);
        l0.op_done(1.1, 1.1, 0.2, true); // SLA violation: over threshold
        l1.op_done(1.2, 1.2, 0.01, false); // SLA violation: failed op
        l0.maintenance(1.3, 0);
        l1.maintenance(1.4, 7);
        l0.retrain_burst(1.5, 1, 3);
        l1.backlog(1.6, 0.4);
        l1.backlog(1.7, 0.2); // not a new high-water mark
        obs.absorb(vec![l0, l1]);
        let report = obs.finish().unwrap();
        let m = &report.metrics;
        assert_eq!(m.counter("ops_completed"), 2);
        assert_eq!(m.counter("ops_failed"), 1);
        assert_eq!(m.counter("sla_violations"), 2);
        assert_eq!(m.counter("maintenance_slots"), 2);
        assert_eq!(m.counter("maintenance_work_units"), 7);
        assert_eq!(m.counter("retrain_bursts"), 1);
        assert_eq!(m.counter("retrain_work_units"), 3);
        assert_eq!(m.gauge("backlog_high_water_s"), Some(0.4));
        let lat = &m.histograms["latency"];
        assert_eq!(lat.total.total(), 3);
        // No trace requested.
        assert!(report.trace.is_none());
    }

    #[test]
    fn fault_hooks_count_and_trace() {
        use crate::faults::FaultKind;
        let mut obs = RunObserver::new(ObsConfig::traced());
        obs.root.fault_injected(1.0, FaultKind::Error);
        obs.root.fault_injected(1.0, FaultKind::Crash);
        obs.root.query_retried(1.0, 1);
        obs.root.query_timed_out(1.1, 0.5);
        let report = obs.finish().unwrap();
        assert_eq!(report.metrics.counter("faults_injected"), 2);
        assert_eq!(report.metrics.counter("query_retries"), 1);
        assert_eq!(report.metrics.counter("query_timeouts"), 1);
        let t = report.trace.unwrap();
        assert_eq!(t.count_kind("fault_injected"), 2);
        assert_eq!(t.count_kind("query_retried"), 1);
        assert_eq!(t.count_kind("query_timed_out"), 1);
    }

    #[test]
    fn ring_capacity_bounds_events() {
        let cfg = ObsConfig {
            trace: true,
            ring_capacity: 2,
            ..ObsConfig::default()
        };
        let mut obs = RunObserver::new(cfg);
        for i in 0..5 {
            obs.root.phase_change(i as f64, i);
        }
        let trace = obs.finish().unwrap().trace.unwrap();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.dropped, 3);
    }
}
