//! Metrics registry: named counters, gauges, and per-interval histograms.
//!
//! Workers (and the serial driver) accumulate into plain local structs on
//! the hot path — a handful of integer adds, no map lookups — and the
//! registry is materialised once at run end by [`merge`](MetricsRegistry::merge)-ing
//! per-lane contributions. Everything is keyed by `BTreeMap`, so iteration
//! order (and therefore serialized output) is deterministic.

use crate::Result;
use lsbench_stats::LatencyHistogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default interval width (virtual seconds) for [`IntervalHistogram`] slices.
pub const DEFAULT_INTERVAL_WIDTH: f64 = 0.05;

/// Hard cap on per-interval slices; later intervals collapse into the last
/// slice so a pathological scenario cannot allocate without bound.
pub const MAX_INTERVAL_SLICES: usize = 512;

/// A latency histogram sliced into fixed-width virtual-time intervals.
///
/// `total` aggregates every recorded sample; `slices[i]` holds the samples
/// whose completion time fell in `[i * width, (i + 1) * width)` (relative to
/// the run's execution start). Interval `MAX_INTERVAL_SLICES - 1` absorbs
/// everything beyond the cap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalHistogram {
    /// Width of each interval in virtual seconds.
    pub width: f64,
    /// All samples, regardless of interval.
    pub total: LatencyHistogram,
    /// Per-interval histograms, lazily grown up to [`MAX_INTERVAL_SLICES`].
    pub slices: Vec<LatencyHistogram>,
}

impl IntervalHistogram {
    /// Creates an empty interval histogram with the given slice width.
    pub fn new(width: f64) -> Self {
        IntervalHistogram {
            width: if width > 0.0 {
                width
            } else {
                DEFAULT_INTERVAL_WIDTH
            },
            total: LatencyHistogram::new(),
            slices: Vec::new(),
        }
    }

    /// Records a latency (nanoseconds) completed at `t` seconds after
    /// execution start.
    pub fn record(&mut self, t_rel: f64, latency_ns: u64) {
        self.total.record(latency_ns);
        let idx = if t_rel <= 0.0 {
            0
        } else {
            ((t_rel / self.width) as usize).min(MAX_INTERVAL_SLICES - 1)
        };
        if self.slices.len() <= idx {
            self.slices.resize_with(idx + 1, LatencyHistogram::new);
        }
        self.slices[idx].record(latency_ns);
    }

    /// Merges another interval histogram (same width required) into `self`.
    pub fn merge(&mut self, other: &IntervalHistogram) -> Result<()> {
        if (self.width - other.width).abs() > f64::EPSILON * self.width.max(other.width) {
            return Err(crate::BenchError::Metric(format!(
                "cannot merge interval histograms with widths {} and {}",
                self.width, other.width
            )));
        }
        self.total
            .merge(&other.total)
            .map_err(|e| crate::BenchError::Metric(e.to_string()))?;
        if self.slices.len() < other.slices.len() {
            self.slices
                .resize_with(other.slices.len(), LatencyHistogram::new);
        }
        for (mine, theirs) in self.slices.iter_mut().zip(other.slices.iter()) {
            mine.merge(theirs)
                .map_err(|e| crate::BenchError::Metric(e.to_string()))?;
        }
        Ok(())
    }
}

/// A deterministic registry of named counters, gauges, and histograms.
///
/// Counters sum on merge, gauges keep the maximum (they record high-water
/// marks), histograms merge bucket-wise. Exposed per scenario in
/// [`ScenarioSummary::metrics`](crate::suite::ScenarioSummary::metrics).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsRegistry {
    /// Monotonic event counts (sum on merge).
    pub counters: BTreeMap<String, u64>,
    /// High-water-mark readings (max on merge).
    pub gauges: BTreeMap<String, f64>,
    /// Named per-interval latency histograms (bucket-wise merge).
    pub histograms: BTreeMap<String, IntervalHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Raises gauge `name` to `value` if larger (high-water-mark semantics).
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        let g = self
            .gauges
            .entry(name.to_string())
            .or_insert(f64::NEG_INFINITY);
        if value > *g {
            *g = value;
        }
    }

    /// Records a latency sample into histogram `name`.
    pub fn record(&mut self, name: &str, width: f64, t_rel: f64, latency_ns: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| IntervalHistogram::new(width))
            .record(t_rel, latency_ns);
    }

    /// Reads counter `name`, defaulting to zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads gauge `name`, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Merges another registry into `self` (counters sum, gauges max,
    /// histograms merge).
    pub fn merge(&mut self, other: &MetricsRegistry) -> Result<()> {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauge_max(k, *v);
        }
        for (k, v) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(v)?,
                None => {
                    self.histograms.insert(k.clone(), v.clone());
                }
            }
        }
        Ok(())
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_gauges_max_on_merge() {
        let mut a = MetricsRegistry::new();
        a.inc("ops", 3);
        a.gauge_max("backlog", 0.5);
        let mut b = MetricsRegistry::new();
        b.inc("ops", 4);
        b.inc("fails", 1);
        b.gauge_max("backlog", 0.25);
        a.merge(&b).unwrap();
        assert_eq!(a.counter("ops"), 7);
        assert_eq!(a.counter("fails"), 1);
        assert_eq!(a.counter("missing"), 0);
        assert_eq!(a.gauge("backlog"), Some(0.5));
    }

    #[test]
    fn interval_histogram_slices_by_time() {
        let mut h = IntervalHistogram::new(1.0);
        h.record(0.5, 100);
        h.record(1.5, 200);
        h.record(1.9, 300);
        assert_eq!(h.total.total(), 3);
        assert_eq!(h.slices.len(), 2);
        assert_eq!(h.slices[0].total(), 1);
        assert_eq!(h.slices[1].total(), 2);

        let mut other = IntervalHistogram::new(1.0);
        other.record(2.5, 400);
        h.merge(&other).unwrap();
        assert_eq!(h.total.total(), 4);
        assert_eq!(h.slices.len(), 3);
        assert!(h.merge(&IntervalHistogram::new(2.0)).is_err());
    }

    #[test]
    fn interval_overflow_collapses_into_last_slice() {
        let mut h = IntervalHistogram::new(0.001);
        h.record(1e9, 42);
        assert_eq!(h.slices.len(), MAX_INTERVAL_SLICES);
        assert_eq!(h.slices[MAX_INTERVAL_SLICES - 1].total(), 1);
    }

    #[test]
    fn registry_serializes_deterministically() {
        let mut r = MetricsRegistry::new();
        r.inc("z", 1);
        r.inc("a", 2);
        r.record("lat", 1.0, 0.1, 50);
        let json = serde_json::to_string(&r).unwrap();
        let back: MetricsRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // BTreeMap keys serialize sorted.
        assert!(json.find("\"a\"").unwrap() < json.find("\"z\"").unwrap());
    }
}
