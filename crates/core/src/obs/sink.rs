//! Event sinks: where a finished trace goes.
//!
//! Lanes buffer events in memory during the run (anything else would
//! entangle observation with worker scheduling); once the merged,
//! time-ordered [`TraceLog`] exists it can be replayed into any
//! [`EventSink`] — a bounded ring buffer for tests, or a JSON-lines
//! artifact writer for `target/lsbench-results/`.

use super::event::{TraceEvent, TraceLog};
use crate::report::write_artifact;
use crate::Result;
use std::collections::VecDeque;

/// A consumer of trace events.
pub trait EventSink {
    /// Accepts one event (in `(t, lane, seq)` order when replayed from a
    /// merged [`TraceLog`]).
    fn emit(&mut self, event: &TraceEvent);
    /// Finishes the sink (e.g. writes an artifact). Default: no-op.
    fn flush(&mut self) -> Result<()> {
        Ok(())
    }
}

impl TraceLog {
    /// Replays the merged trace into a sink, then flushes it.
    pub fn replay_into(&self, sink: &mut dyn EventSink) -> Result<()> {
        for e in &self.events {
            sink.emit(e);
        }
        sink.flush()
    }
}

/// A bounded in-memory sink keeping the most recent `capacity` events.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    /// Events evicted after the buffer filled.
    pub dropped: u64,
}

impl RingBufferSink {
    /// Creates a ring buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl EventSink for RingBufferSink {
    fn emit(&mut self, event: &TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(*event);
    }
}

/// A sink that renders events as JSON lines and writes them to
/// `target/lsbench-results/<file>` on flush.
pub struct JsonlSink {
    file: String,
    tags: Vec<(String, String)>,
    log: TraceLog,
    /// Path of the written artifact, set by [`EventSink::flush`].
    pub written: Option<std::path::PathBuf>,
}

impl JsonlSink {
    /// Creates a sink that will write `target/lsbench-results/<file>`,
    /// tagging every line with the given context fields.
    pub fn new(file: impl Into<String>, tags: &[(&str, &str)]) -> Self {
        JsonlSink {
            file: file.into(),
            tags: tags
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            log: TraceLog::default(),
            written: None,
        }
    }
}

impl EventSink for JsonlSink {
    fn emit(&mut self, event: &TraceEvent) {
        self.log.events.push(*event);
    }

    fn flush(&mut self) -> Result<()> {
        let tags: Vec<(&str, &str)> = self
            .tags
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let body = self.log.to_jsonl_tagged(&tags)?;
        let path = write_artifact(&self.file, &body)?;
        self.written = Some(path);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::event::RunEvent;
    use super::*;

    fn log3() -> TraceLog {
        TraceLog {
            events: (0..3)
                .map(|i| TraceEvent {
                    t: i as f64,
                    lane: None,
                    seq: i,
                    event: RunEvent::PhaseChange { phase: i as usize },
                })
                .collect(),
            dropped: 0,
        }
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let mut sink = RingBufferSink::new(2);
        log3().replay_into(&mut sink).unwrap();
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped, 1);
        let ts: Vec<f64> = sink.events().map(|e| e.t).collect();
        assert_eq!(ts, vec![1.0, 2.0]);
        assert!(!sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_artifact() {
        let mut sink = JsonlSink::new("obs_sink_test.jsonl", &[("sut", "t")]);
        log3().replay_into(&mut sink).unwrap();
        let path = sink.written.clone().expect("artifact written");
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 3);
        assert!(body.contains("\"sut\":\"t\""));
        std::fs::remove_file(path).ok();
    }
}
