//! Profiling spans: wall-clock scope timers with a rendered tree.
//!
//! Spans answer "where did the real time go?" — bulk-load, train,
//! steady-state, merge — and are intentionally kept *out* of the
//! deterministic trace: they measure host wall time, which varies run to
//! run, while [`TraceLog`](super::TraceLog) rides the virtual clock and
//! must not. `lsbench suite --trace` prints the rendered tree.

use std::time::Instant;

/// One timed scope, with nested children.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Scope label, e.g. `"train"` or `"steady-state"`.
    pub name: String,
    /// Elapsed wall-clock seconds.
    pub wall_s: f64,
    /// Scopes that opened and closed while this one was open.
    pub children: Vec<SpanNode>,
}

/// Token returned by [`SpanCollector::enter`]; pass it back to
/// [`SpanCollector::exit`] to close the scope. Dropping it without exiting
/// simply discards the span (no panic, no poisoning).
#[derive(Debug)]
#[must_use = "pass the timer back to SpanCollector::exit to record the span"]
pub struct ScopeTimer {
    depth: usize,
    start: Option<Instant>,
}

/// Collects a tree of wall-clock spans. Disabled collectors are inert:
/// `enter`/`exit` do no work and read no clocks.
#[derive(Debug, Default)]
pub struct SpanCollector {
    enabled: bool,
    /// Open scopes, outermost first: (name, children-so-far).
    stack: Vec<(String, Vec<SpanNode>)>,
    /// Completed top-level spans.
    roots: Vec<SpanNode>,
}

impl SpanCollector {
    /// Creates a collector; when `enabled` is false all methods are no-ops.
    pub fn new(enabled: bool) -> Self {
        SpanCollector {
            enabled,
            stack: Vec::new(),
            roots: Vec::new(),
        }
    }

    /// True when this collector records spans.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a scope. The returned timer must go back to [`exit`](Self::exit).
    pub fn enter(&mut self, name: &str) -> ScopeTimer {
        if !self.enabled {
            return ScopeTimer {
                depth: 0,
                start: None,
            };
        }
        self.stack.push((name.to_string(), Vec::new()));
        ScopeTimer {
            depth: self.stack.len(),
            start: Some(Instant::now()),
        }
    }

    /// Closes a scope opened by [`enter`](Self::enter). Scopes closed out of
    /// order unwind the stack down to the timer's depth.
    pub fn exit(&mut self, timer: ScopeTimer) {
        let Some(start) = timer.start else { return };
        let wall_s = start.elapsed().as_secs_f64();
        while self.stack.len() > timer.depth {
            // An inner scope was never exited; fold it in with zero time.
            let (name, children) = self.stack.pop().expect("stack non-empty");
            self.attach(SpanNode {
                name,
                wall_s: 0.0,
                children,
            });
        }
        if let Some((name, children)) = self.stack.pop() {
            self.attach(SpanNode {
                name,
                wall_s,
                children,
            });
        }
    }

    fn attach(&mut self, node: SpanNode) {
        match self.stack.last_mut() {
            Some((_, siblings)) => siblings.push(node),
            None => self.roots.push(node),
        }
    }

    /// Consumes the collector, returning completed top-level spans.
    pub fn finish(mut self) -> Vec<SpanNode> {
        while let Some((name, children)) = self.stack.pop() {
            self.attach(SpanNode {
                name,
                wall_s: 0.0,
                children,
            });
        }
        self.roots
    }
}

/// Renders a span tree as indented text, one scope per line:
///
/// ```text
/// suite                         1.234s
///   S1-specialization           0.456s
///     train                     0.123s
/// ```
pub fn render_spans(spans: &[SpanNode]) -> String {
    fn walk(out: &mut String, node: &SpanNode, depth: usize) {
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{}", node.name);
        out.push_str(&format!("{label:<40} {:>9.3}s\n", node.wall_s));
        for c in &node.children {
            walk(out, c, depth + 1);
        }
    }
    let mut out = String::new();
    for s in spans {
        walk(&mut out, s, 0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_build_a_tree() {
        let mut c = SpanCollector::new(true);
        let outer = c.enter("outer");
        let inner = c.enter("inner");
        c.exit(inner);
        c.exit(outer);
        let roots = c.finish();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "outer");
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].name, "inner");
        assert!(roots[0].wall_s >= roots[0].children[0].wall_s);
    }

    #[test]
    fn disabled_collector_is_inert() {
        let mut c = SpanCollector::new(false);
        let t = c.enter("x");
        c.exit(t);
        assert!(c.finish().is_empty());
    }

    #[test]
    fn unexited_scopes_fold_in_on_finish() {
        let mut c = SpanCollector::new(true);
        let _leak = c.enter("leaked");
        let roots = c.finish();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].wall_s, 0.0);
    }

    #[test]
    fn render_indents_children() {
        let spans = vec![SpanNode {
            name: "a".into(),
            wall_s: 1.0,
            children: vec![SpanNode {
                name: "b".into(),
                wall_s: 0.5,
                children: vec![],
            }],
        }];
        let text = render_spans(&spans);
        assert!(text.contains("a"));
        assert!(text.contains("  b"));
    }
}
