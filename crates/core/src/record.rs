//! Run records: everything a benchmark run produced.
//!
//! The metric families (Fig. 1a–1d) are all *derived* from one record
//! format: a vector of per-operation completions with timestamps, latencies
//! and phase labels, plus training information and the SUT's final metric
//! counters. Keeping the raw record (rather than aggregates) is what lets
//! the benchmark report distributions, transitions, and bands instead of a
//! single average (Lesson 2).

use crate::faults::FaultStats;
use lsbench_stats::timeseries::CumulativeCurve;
use lsbench_sut::sut::SutMetrics;
use serde::{Deserialize, Serialize};

/// One completed operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpRecord {
    /// Completion time (virtual seconds since run start).
    pub t_end: f64,
    /// Latency in virtual seconds.
    pub latency: f64,
    /// Scheduled phase index.
    pub phase: u16,
    /// Whether the operation succeeded.
    pub ok: bool,
    /// Whether the operation fell inside a gradual-transition window.
    pub in_transition: bool,
}

/// Training-phase outcome.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainInfo {
    /// Work units spent training offline.
    pub work: u64,
    /// Virtual seconds the training phase took.
    pub seconds: f64,
}

/// A complete run record for one SUT on one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// SUT display name.
    pub sut_name: String,
    /// Scenario name.
    pub scenario_name: String,
    /// Phase names, indexed by [`OpRecord::phase`].
    pub phase_names: Vec<String>,
    /// Per-operation records in completion order.
    pub ops: Vec<OpRecord>,
    /// Time each phase first became active: `(phase, time)`.
    pub phase_change_times: Vec<(usize, f64)>,
    /// Offline training outcome.
    pub train: TrainInfo,
    /// Virtual time when execution (post-training) started.
    pub exec_start: f64,
    /// Virtual time when execution finished.
    pub exec_end: f64,
    /// SUT metric counters at the end of the run.
    pub final_metrics: SutMetrics,
    /// Work-to-time conversion rate used (work units per second).
    pub work_units_per_second: f64,
    /// Fault-injection accounting (all zero for unfaulted runs).
    pub faults: FaultStats,
}

impl RunRecord {
    /// Number of completed operations.
    pub fn completed(&self) -> usize {
        self.ops.len()
    }

    /// Number of failed/unsupported operations.
    pub fn failures(&self) -> usize {
        self.ops.iter().filter(|o| !o.ok).count()
    }

    /// Wall span of the execution portion.
    pub fn exec_duration(&self) -> f64 {
        self.exec_end - self.exec_start
    }

    /// Average throughput over the execution portion (ops per virtual
    /// second) — the *traditional* metric, kept for comparison.
    pub fn mean_throughput(&self) -> f64 {
        if self.exec_duration() <= 0.0 {
            0.0
        } else {
            self.ops.len() as f64 / self.exec_duration()
        }
    }

    /// Latencies of operations in phase `p` (seconds).
    pub fn phase_latencies(&self, p: usize) -> Vec<f64> {
        self.ops
            .iter()
            .filter(|o| o.phase as usize == p)
            .map(|o| o.latency)
            .collect()
    }

    /// Latencies of all operations.
    pub fn all_latencies(&self) -> Vec<f64> {
        self.ops.iter().map(|o| o.latency).collect()
    }

    /// Completion-time curve of the execution portion.
    pub fn cumulative_curve(&self) -> CumulativeCurve {
        CumulativeCurve::from_timestamps(self.ops.iter().map(|o| o.t_end).collect())
            .expect("timestamps are finite and ordered")
    }

    /// Throughput measured over consecutive windows of `ops_per_window`
    /// completions within phase `p` (ops/second). Used by the Fig. 1a
    /// box plots: each window contributes one throughput sample.
    pub fn phase_throughput_samples(&self, p: usize, ops_per_window: usize) -> Vec<f64> {
        let times: Vec<f64> = self
            .ops
            .iter()
            .filter(|o| o.phase as usize == p)
            .map(|o| o.t_end)
            .collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i + ops_per_window <= times.len() {
            let span = times[i + ops_per_window - 1] - times[i];
            if span > 0.0 {
                out.push((ops_per_window - 1) as f64 / span);
            }
            i += ops_per_window;
        }
        out
    }

    /// Time the given phase became active, if it ever did.
    pub fn phase_start_time(&self, p: usize) -> Option<f64> {
        self.phase_change_times
            .iter()
            .find(|&&(phase, _)| phase == p)
            .map(|&(_, t)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic record: phase 0 at 1 op/sec for 10s, phase 1 at 5 ops/sec
    /// for 10s.
    pub(crate) fn synthetic() -> RunRecord {
        let mut ops = Vec::new();
        for i in 0..10 {
            ops.push(OpRecord {
                t_end: i as f64 + 1.0,
                latency: 1.0,
                phase: 0,
                ok: true,
                in_transition: false,
            });
        }
        for i in 0..50 {
            ops.push(OpRecord {
                t_end: 10.0 + (i as f64 + 1.0) * 0.2,
                latency: 0.2,
                phase: 1,
                ok: i % 10 != 0,
                in_transition: false,
            });
        }
        RunRecord {
            sut_name: "synthetic".to_string(),
            scenario_name: "test".to_string(),
            phase_names: vec!["slow".to_string(), "fast".to_string()],
            ops,
            phase_change_times: vec![(0, 0.0), (1, 10.0)],
            train: TrainInfo {
                work: 100,
                seconds: 0.1,
            },
            exec_start: 0.0,
            exec_end: 20.0,
            final_metrics: SutMetrics::default(),
            work_units_per_second: 1000.0,
            faults: FaultStats::default(),
        }
    }

    #[test]
    fn counters() {
        let r = synthetic();
        assert_eq!(r.completed(), 60);
        assert_eq!(r.failures(), 5);
        assert_eq!(r.exec_duration(), 20.0);
        assert!((r.mean_throughput() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn phase_latencies_split() {
        let r = synthetic();
        assert_eq!(r.phase_latencies(0).len(), 10);
        assert_eq!(r.phase_latencies(1).len(), 50);
        assert!(r.phase_latencies(0).iter().all(|&l| l == 1.0));
        assert!(r.phase_latencies(2).is_empty());
    }

    #[test]
    fn throughput_samples_reflect_phase_speed() {
        let r = synthetic();
        let slow = r.phase_throughput_samples(0, 5);
        let fast = r.phase_throughput_samples(1, 5);
        assert!(!slow.is_empty() && !fast.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean(&slow) - 1.0).abs() < 0.01, "slow = {slow:?}");
        assert!((mean(&fast) - 5.0).abs() < 0.1, "fast = {fast:?}");
    }

    #[test]
    fn cumulative_curve_total() {
        let r = synthetic();
        let c = r.cumulative_curve();
        assert_eq!(c.total(), 60);
        assert_eq!(c.completed_by(10.0), 10);
    }

    /// A saved record must round-trip *completely*: `final_metrics` used
    /// to be `#[serde(skip)]`, which silently zeroed the cost counters of
    /// any archived run. Equality here pins the lossless contract the
    /// results store depends on.
    #[test]
    fn serde_round_trips_the_complete_record() {
        let mut r = synthetic();
        r.final_metrics = SutMetrics {
            size_bytes: 4096,
            training_work: 1234,
            execution_work: 98765,
            model_count: 3,
            adaptations: 7,
            label_collection_work: 111,
        };
        r.faults.injected = 5;
        r.faults.retries = 2;
        let json = serde_json::to_string(&r).unwrap();
        let back: RunRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.final_metrics, r.final_metrics);
    }

    #[test]
    fn phase_start_lookup() {
        let r = synthetic();
        assert_eq!(r.phase_start_time(1), Some(10.0));
        assert_eq!(r.phase_start_time(9), None);
    }
}
