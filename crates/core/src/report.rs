//! Rendering benchmark results: ASCII figures, CSV series, JSON artifacts.
//!
//! §IV requires results to "remain comparable across many deployments with
//! wide-ranging designs", so every report renders three ways: a
//! human-readable plain-text figure (printed by the bench binaries), a CSV
//! series (for external plotting), and JSON (machine interchange).

use crate::metrics::adaptability::AdaptabilityReport;
use crate::metrics::cost::{CostReport, TrainingTradeoff};
use crate::metrics::sla::SlaReport;
use crate::metrics::specialization::SpecializationReport;
use crate::{BenchError, Result};
use serde::Serialize;

/// Serializes any report to pretty JSON.
pub fn to_json<T: Serialize>(report: &T) -> Result<String> {
    serde_json::to_string_pretty(report).map_err(|e| BenchError::Serialization(e.to_string()))
}

/// Width of the plot area in characters.
const PLOT_WIDTH: usize = 60;

fn bar(frac: f64, width: usize) -> String {
    let n = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    "█".repeat(n)
}

/// Renders a Fig. 1a-style box-plot chart: one row per distribution, sorted
/// by Φ, showing whiskers/quartiles/median as a text gauge.
pub fn render_specialization(report: &SpecializationReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Fig.1a  Specialization — {} (throughput per distribution, sorted by Φ)\n",
        report.sut_name
    ));
    let max = report
        .entries
        .iter()
        .map(|e| e.throughput.whisker_hi)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    for e in &report.entries {
        let b = &e.throughput;
        let pos = |v: f64| ((v / max) * (PLOT_WIDTH - 1) as f64).round() as usize;
        let (wl, q1, md, q3, wh) = (
            pos(b.whisker_lo),
            pos(b.five.q1),
            pos(b.five.median),
            pos(b.five.q3),
            pos(b.whisker_hi),
        );
        let mut row = vec![' '; PLOT_WIDTH];
        for cell in row.iter_mut().take(wh.min(PLOT_WIDTH - 1) + 1).skip(wl) {
            *cell = '-';
        }
        for cell in &mut row[q1..=q3.min(PLOT_WIDTH - 1)] {
            *cell = '=';
        }
        row[md.min(PLOT_WIDTH - 1)] = '#';
        let marker = if e.holdout { " [hold-out]" } else { "" };
        out.push_str(&format!(
            "  Φ={:<6.3} {:<22} |{}| med={:.0}{}\n",
            e.phi,
            e.phase,
            row.iter().collect::<String>(),
            b.five.median,
            marker
        ));
    }
    if let Some(r) = report.worst_to_best_ratio() {
        out.push_str(&format!("  worst/best median throughput ratio: {r:.3}\n"));
    }
    out
}

/// Renders a Fig. 1b-style cumulative-completions chart.
pub fn render_adaptability(reports: &[&AdaptabilityReport]) -> String {
    let mut out = String::new();
    out.push_str("Fig.1b  Cumulative queries over time\n");
    for r in reports {
        let total = r.curve.last().map(|&(_, v)| v).unwrap_or(0.0);
        out.push_str(&format!(
            "  {:<24} area-vs-ideal={:+.1} (normalized {:+.4})\n",
            r.sut_name, r.area_vs_ideal, r.normalized_area
        ));
        // A sparkline of completions over 32 buckets.
        let mut line = String::from("    ");
        for i in 0..32 {
            let idx = i * (r.curve.len() - 1) / 31;
            let frac = if total > 0.0 {
                r.curve[idx].1 / total
            } else {
                0.0
            };
            let glyph = match (frac * 8.0) as usize {
                0 => ' ',
                1 => '▁',
                2 => '▂',
                3 => '▃',
                4 => '▄',
                5 => '▅',
                6 => '▆',
                7 => '▇',
                _ => '█',
            };
            line.push(glyph);
        }
        out.push_str(&line);
        out.push('\n');
        for &(phase, rec) in &r.recovery_times {
            out.push_str(&format!(
                "    recovery after phase {phase} change: {rec:.3}s\n"
            ));
        }
    }
    out
}

/// Renders a Fig. 1c-style SLA band chart: per interval, a stacked bar of
/// within-SLA vs violated completions.
pub fn render_sla(report: &SlaReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Fig.1c  SLA bands — {} (threshold {:.4}s, interval {:.1}s, violations {:.2}%)\n",
        report.sut_name,
        report.threshold,
        report.interval,
        report.violation_fraction * 100.0
    ));
    let max_total = report
        .bands
        .iter()
        .map(|b| b.total())
        .max()
        .unwrap_or(1)
        .max(1);
    // Cap displayed intervals to keep figures readable.
    let step = (report.bands.len() / 40).max(1);
    for (i, b) in report.bands.iter().enumerate().step_by(step) {
        let within_frac = b.within as f64 / max_total as f64;
        let violated_frac = b.violated as f64 / max_total as f64;
        out.push_str(&format!(
            "  t={:<6.1} |{}{}| {}/{} over\n",
            i as f64 * report.interval,
            bar(within_frac, 40),
            "▒".repeat((violated_frac * 40.0).round() as usize),
            b.violated,
            b.total()
        ));
    }
    for &(phase, speed) in &report.adjustment_speed {
        out.push_str(&format!(
            "  adjustment speed after phase {phase} (Σ over-SLA of first {} ops): {speed:.4}s\n",
            report.adjustment_n
        ));
    }
    out
}

/// Renders a Fig. 1d-style cost table plus the DBA comparison.
pub fn render_cost(report: &CostReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Fig.1d  Cost — {} (throughput {:.0} ops/s)\n",
        report.sut_name, report.throughput
    ));
    out.push_str("  hardware  train-s     train-$      exec-s      exec-$     labels-$\n");
    for b in &report.breakdowns {
        out.push_str(&format!(
            "  {:<8} {:>9.4} {:>11.6} {:>11.4} {:>11.6} {:>11.6}\n",
            b.hardware,
            b.training.seconds,
            b.training.dollars,
            b.execution.seconds,
            b.execution.dollars,
            b.label_collection.dollars
        ));
    }
    if let Some(cpp) = report.cost_per_performance {
        out.push_str(&format!("  cost-per-performance: ${cpp:.9} per ops/s\n"));
    }
    out
}

/// Renders the learned-vs-DBA trade-off curve of Fig. 1d.
pub fn render_tradeoff(t: &TrainingTradeoff) -> String {
    let mut out = String::new();
    out.push_str("Fig.1d  Throughput per training cost vs. DBA step function\n");
    out.push_str("  learned: (training $, throughput)\n");
    for &(c, tput) in &t.learned_curve {
        out.push_str(&format!("    ${c:<12.6} -> {tput:>10.0} ops/s\n"));
    }
    out.push_str("  DBA steps: (cumulative $, throughput)\n");
    for &(c, tput) in &t.dba_steps {
        out.push_str(&format!("    ${c:<12.2} -> {tput:>10.0} ops/s\n"));
    }
    match t.cost_to_outperform {
        Some(c) => out.push_str(&format!(
            "  training cost to outperform the tuned traditional system: ${c:.6}\n"
        )),
        None => {
            out.push_str("  the learned system never outperforms the tuned traditional system\n")
        }
    }
    out
}

/// CSV of a `(x, y)` series with a header.
pub fn series_csv(header: (&str, &str), points: &[(f64, f64)]) -> String {
    let mut out = format!("{},{}\n", header.0, header.1);
    for &(x, y) in points {
        out.push_str(&format!("{x},{y}\n"));
    }
    out
}

/// Locates the workspace root: the topmost ancestor of the running
/// package's manifest dir (or the cwd) that contains a `Cargo.toml`.
pub(crate) fn workspace_root() -> std::path::PathBuf {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(std::path::PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let mut root = start.clone();
    let mut cur = start;
    while let Some(parent) = cur.parent() {
        if parent.join("Cargo.toml").exists() {
            root = parent.to_path_buf();
        }
        cur = parent.to_path_buf();
    }
    root
}

/// Writes `contents` to `dir/name`, creating `dir` if needed — the single
/// write path shared by [`write_artifact`] and the results store
/// ([`crate::results`]), so every artifact lands the same way.
pub(crate) fn write_artifact_to(
    dir: &std::path::Path,
    name: &str,
    contents: &str,
) -> Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)
        .map_err(|e| BenchError::Serialization(format!("mkdir failed: {e}")))?;
    let path = dir.join(name);
    std::fs::write(&path, contents)
        .map_err(|e| BenchError::Serialization(format!("write failed: {e}")))?;
    Ok(path)
}

/// Writes an artifact under `<workspace>/target/lsbench-results/`, creating
/// the directory if needed. Returns the path written.
pub fn write_artifact(name: &str, contents: &str) -> Result<std::path::PathBuf> {
    let dir = workspace_root().join("target").join("lsbench-results");
    write_artifact_to(&dir, name, contents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::sla::{Band, ColorBand};
    use lsbench_stats::descriptive::BoxPlot;

    fn spec_report() -> SpecializationReport {
        use crate::metrics::specialization::PhaseSpecialization;
        SpecializationReport {
            sut_name: "test".to_string(),
            entries: vec![
                PhaseSpecialization {
                    phase: "uniform".to_string(),
                    phi: 0.0,
                    throughput: BoxPlot::of(&[90.0, 100.0, 110.0, 105.0, 95.0]).unwrap(),
                    holdout: false,
                },
                PhaseSpecialization {
                    phase: "zipf".to_string(),
                    phi: 0.7,
                    throughput: BoxPlot::of(&[40.0, 60.0, 50.0, 45.0, 55.0]).unwrap(),
                    holdout: true,
                },
            ],
            ops_per_window: 10,
        }
    }

    #[test]
    fn specialization_renders() {
        let s = render_specialization(&spec_report());
        assert!(s.contains("uniform"));
        assert!(s.contains("zipf"));
        assert!(s.contains("[hold-out]"));
        assert!(s.contains("worst/best"));
    }

    #[test]
    fn adaptability_renders() {
        let r = AdaptabilityReport {
            sut_name: "x".to_string(),
            curve: (0..=32).map(|i| (i as f64, (i * i) as f64)).collect(),
            area_vs_ideal: -12.5,
            normalized_area: -0.1,
            recovery_times: vec![(1, 3.25)],
            phase_throughput: vec![10.0, 20.0],
        };
        let s = render_adaptability(&[&r]);
        assert!(s.contains("area-vs-ideal=-12.5"));
        assert!(s.contains("recovery after phase 1"));
    }

    #[test]
    fn sla_renders() {
        let r = SlaReport {
            sut_name: "x".to_string(),
            threshold: 0.01,
            interval: 1.0,
            bands: vec![
                Band {
                    within: 50,
                    violated: 0,
                },
                Band {
                    within: 20,
                    violated: 30,
                },
            ],
            color_bands: vec![ColorBand::default(); 2],
            violation_fraction: 0.3,
            adjustment_speed: vec![(1, 0.5)],
            adjustment_n: 100,
        };
        let s = render_sla(&r);
        assert!(s.contains("30.00%"));
        assert!(s.contains("adjustment speed"));
    }

    /// Golden pin of the `lsbench run` figure output: the exact bytes of
    /// the Fig. 1b and Fig. 1c renders for a fixed synthetic report. Any
    /// formatting change — spacing, glyph choice, precision — must be a
    /// deliberate edit to these strings, because downstream tooling greps
    /// this output.
    #[test]
    fn run_report_output_is_pinned() {
        let adapt = AdaptabilityReport {
            sut_name: "rmi".to_string(),
            curve: (0..=32)
                .map(|i| (i as f64 * 0.25, (i * i) as f64))
                .collect(),
            area_vs_ideal: -12.5,
            normalized_area: -0.0625,
            recovery_times: vec![(1, 3.25)],
            phase_throughput: vec![100.0, 200.0],
        };
        assert_eq!(
            render_adaptability(&[&adapt]),
            "Fig.1b  Cumulative queries over time\n\
             \x20 rmi                      area-vs-ideal=-12.5 (normalized -0.0625)\n\
             \x20               ▁▁▁▁▂▂▂▂▃▃▃▄▄▄▅▅▆▆▇█\n\
             \x20   recovery after phase 1 change: 3.250s\n"
        );

        let sla = SlaReport {
            sut_name: "rmi".to_string(),
            threshold: 0.01,
            interval: 1.0,
            bands: vec![
                Band {
                    within: 50,
                    violated: 0,
                },
                Band {
                    within: 20,
                    violated: 30,
                },
            ],
            color_bands: vec![ColorBand::default(); 2],
            violation_fraction: 0.3,
            adjustment_speed: vec![(1, 0.5)],
            adjustment_n: 100,
        };
        assert_eq!(
            render_sla(&sla),
            "Fig.1c  SLA bands — rmi (threshold 0.0100s, interval 1.0s, violations 30.00%)\n\
             \x20 t=0.0    |████████████████████████████████████████| 0/50 over\n\
             \x20 t=1.0    |████████████████▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒▒| 30/50 over\n\
             \x20 adjustment speed after phase 1 (Σ over-SLA of first 100 ops): 0.5000s\n"
        );
    }

    #[test]
    fn json_round_trips() {
        let j = to_json(&spec_report()).unwrap();
        assert!(j.contains("\"phi\""));
        let back: SpecializationReport = serde_json::from_str(&j).unwrap();
        assert_eq!(back, spec_report());
    }

    #[test]
    fn csv_format() {
        let csv = series_csv(("t", "v"), &[(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(csv, "t,v\n0,1\n1,2\n");
    }

    #[test]
    fn tradeoff_renders_both_outcomes() {
        let with = TrainingTradeoff {
            learned_curve: vec![(1.0, 100.0), (10.0, 5000.0)],
            dba_steps: vec![(0.0, 1000.0), (400.0, 2500.0)],
            cost_to_outperform: Some(10.0),
        };
        assert!(render_tradeoff(&with).contains("training cost to outperform"));
        let without = TrainingTradeoff {
            cost_to_outperform: None,
            ..with
        };
        assert!(render_tradeoff(&without).contains("never outperforms"));
    }
}
