//! The paired-comparison engine: two [`RunRecord`]s in, one
//! [`ComparisonReport`] out.
//!
//! Every headline number the paper proposes is comparative, and this module
//! computes each of them *pairwise* rather than by diffing two solo
//! reports:
//!
//! * Fig. 1b adaptability — the signed area between the two cumulative-query
//!   curves at full resolution ([`paired_area_difference`]), positive when
//!   the candidate is ahead.
//! * Fig. 1a specialization — per-phase windowed-throughput box-plot deltas
//!   ([`paired_phase_deltas`]): distribution-shape differences, not mean
//!   differences.
//! * Fig. 1c SLA bands — one threshold calibrated from the **baseline**
//!   record's p99 ([`paired_sla_reports`]), applied to both sides.
//! * Fig. 1d cost — dollars per completed query on a reference hardware
//!   profile, as a candidate/baseline ratio.
//! * Fault accounting — injected/retry/timeout/crash deltas, so chaos runs
//!   can be compared on equal footing.
//!
//! Deltas are absolute differences (candidate − baseline), never
//! percentages: absolute deltas negate exactly when the operands swap,
//! which the property suite pins down to the bit. The SLA and cost
//! sections are the documented exceptions — the threshold is calibrated
//! from whichever record is the baseline, and cost is a ratio — so only
//! the signed-delta subset is antisymmetric.

use crate::faults::FaultStats;
use crate::metrics::adaptability::paired_area_difference;
use crate::metrics::cost::cost_per_query;
use crate::metrics::sla::{paired_sla_reports, SlaPolicy};
use crate::metrics::specialization::{paired_phase_deltas, PhaseBoxDelta};
use crate::record::RunRecord;
use crate::results::SCHEMA_VERSION;
use crate::{BenchError, Result};
use lsbench_stats::descriptive::quantile;
use lsbench_sut::cost::HardwareProfile;
use serde::{Deserialize, Serialize};

/// Throughput window (completed ops per sample) for the Fig. 1a paired
/// box plots.
const OPS_PER_WINDOW: usize = 100;
/// SLA threshold = this multiplier × the baseline record's p99 latency.
const SLA_MULTIPLIER: f64 = 2.0;
/// Number of equal SLA band intervals each record's execution is split into.
const SLA_INTERVALS: f64 = 40.0;
/// N of the post-phase-change adjustment-speed metric.
const ADJUSTMENT_N: usize = 2_000;

/// One scalar compared across the two runs: both values plus their signed
/// absolute difference (candidate − baseline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalarDelta {
    /// The baseline run's value.
    pub baseline: f64,
    /// The candidate run's value.
    pub candidate: f64,
    /// `candidate - baseline` — negates exactly under operand swap.
    pub delta: f64,
}

impl ScalarDelta {
    /// Pairs two values with their signed difference.
    pub fn between(baseline: f64, candidate: f64) -> Self {
        ScalarDelta {
            baseline,
            candidate,
            delta: candidate - baseline,
        }
    }
}

/// The Fig. 1c section: both runs banded against the one threshold
/// calibrated from the baseline record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaComparison {
    /// The shared threshold in virtual seconds
    /// (`SLA_MULTIPLIER × baseline p99`).
    pub threshold: f64,
    /// Multiplier used for the calibration.
    pub multiplier: f64,
    /// Fraction of completions violating the SLA, per side.
    pub violation_fraction: ScalarDelta,
    /// Worst (largest) post-phase-change adjustment-speed value per side —
    /// Σ over-SLA latency across the first N queries after a distribution
    /// change; 0.0 when the scenario has no changes.
    pub worst_adjustment: ScalarDelta,
}

/// Fault/retry accounting deltas (candidate − baseline), so chaos runs are
/// compared with their injection budgets visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultDeltas {
    /// Injected fault delta.
    pub injected: i64,
    /// Retry delta.
    pub retries: i64,
    /// Timeout delta.
    pub timeouts: i64,
    /// Crash delta.
    pub crashes: i64,
    /// Delta of operations that ultimately failed.
    pub failed_ops: i64,
}

impl FaultDeltas {
    fn between(baseline: &RunRecord, candidate: &RunRecord) -> Self {
        let d = |b: u64, c: u64| c as i64 - b as i64;
        let fb: &FaultStats = &baseline.faults;
        let fc: &FaultStats = &candidate.faults;
        FaultDeltas {
            injected: d(fb.injected, fc.injected),
            retries: d(fb.retries, fc.retries),
            timeouts: d(fb.timeouts, fc.timeouts),
            crashes: d(fb.crashes, fc.crashes),
            failed_ops: d(baseline.failures() as u64, candidate.failures() as u64),
        }
    }

    /// True when every fault delta is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.injected == 0
            && self.retries == 0
            && self.timeouts == 0
            && self.crashes == 0
            && self.failed_ops == 0
    }
}

/// The Fig. 1d section: dollars per completed query on a reference
/// hardware profile, and the candidate/baseline ratio.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostComparison {
    /// Hardware profile the costs were computed on.
    pub hardware: String,
    /// Baseline dollars per completed query (`None` = no completions).
    pub baseline_cost_per_query: Option<f64>,
    /// Candidate dollars per completed query.
    pub candidate_cost_per_query: Option<f64>,
    /// `candidate / baseline` (`None` when the baseline cost is zero or
    /// either side completed nothing) — below 1.0 the candidate is cheaper.
    pub ratio: Option<f64>,
}

impl CostComparison {
    fn between(baseline: &RunRecord, candidate: &RunRecord, hw: &HardwareProfile) -> Self {
        let b = cost_per_query(baseline, hw);
        let c = cost_per_query(candidate, hw);
        let ratio = match (b, c) {
            (Some(b), Some(c)) if b > 0.0 => Some(c / b),
            _ => None,
        };
        CostComparison {
            hardware: hw.name.clone(),
            baseline_cost_per_query: b,
            candidate_cost_per_query: c,
            ratio,
        }
    }
}

/// The complete head-to-head report — everything `lsbench compare` prints
/// and everything `lsbench regress` gates on. Serializable (with the same
/// `schema_version` discipline as stored artifacts) so CI can archive it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// Schema version of this serialized report.
    pub schema_version: u32,
    /// Baseline SUT name.
    pub baseline: String,
    /// Candidate SUT name.
    pub candidate: String,
    /// Scenario name (the baseline record's; a mismatch with the candidate
    /// is surfaced in `notes`).
    pub scenario: String,
    /// Fig. 1b: signed area between the cumulative-query curves in
    /// query-seconds; positive = candidate completed work sooner.
    pub area_difference: f64,
    /// Mean throughput (ops/sec) per side.
    pub throughput: ScalarDelta,
    /// Median latency per side (virtual seconds).
    pub p50_latency: ScalarDelta,
    /// p99 latency per side (virtual seconds).
    pub p99_latency: ScalarDelta,
    /// Fig. 1a: per-phase throughput box-stat deltas (phases matched by
    /// name; window = `ops_per_window` completions).
    pub phases: Vec<PhaseBoxDelta>,
    /// Window size used for the phase box plots.
    pub ops_per_window: usize,
    /// Fig. 1c section.
    pub sla: SlaComparison,
    /// Fault accounting deltas.
    pub faults: FaultDeltas,
    /// Fig. 1d section.
    pub cost: CostComparison,
    /// Comparability caveats (scenario mismatch, differing op counts, …).
    /// Empty means the two runs were directly comparable.
    pub notes: Vec<String>,
}

/// Compares two run records head-to-head. The first argument is the
/// *baseline* (SLA calibration source, cost denominator); the second is
/// the *candidate*. Pure function of the two records: comparing loaded
/// artifacts gives bit-identical numbers to comparing in-process records.
pub fn compare(baseline: &RunRecord, candidate: &RunRecord) -> Result<ComparisonReport> {
    if baseline.ops.is_empty() || candidate.ops.is_empty() {
        return Err(BenchError::Metric(
            "cannot compare empty run records".to_string(),
        ));
    }

    let mut notes = Vec::new();
    if baseline.scenario_name != candidate.scenario_name {
        notes.push(format!(
            "scenario mismatch: baseline ran '{}', candidate ran '{}' — numbers are not \
             apples-to-apples",
            baseline.scenario_name, candidate.scenario_name
        ));
    }
    if baseline.ops.len() != candidate.ops.len() {
        notes.push(format!(
            "completion counts differ: baseline {} vs candidate {}",
            baseline.ops.len(),
            candidate.ops.len()
        ));
    }

    let area_difference = paired_area_difference(baseline, candidate)?;
    let phases = paired_phase_deltas(baseline, candidate, OPS_PER_WINDOW)?;

    let p = |record: &RunRecord, q: f64| -> Result<f64> {
        let lats = record.all_latencies();
        quantile(&lats, q).map_err(|e| BenchError::Metric(e.to_string()))
    };
    let policy = SlaPolicy::FromBaselineP99 {
        multiplier: SLA_MULTIPLIER,
    };
    let (sla_b, sla_c) =
        paired_sla_reports(baseline, candidate, &policy, SLA_INTERVALS, ADJUSTMENT_N)?;
    let worst = |r: &crate::metrics::sla::SlaReport| {
        r.adjustment_speed
            .iter()
            .map(|&(_, s)| s)
            .fold(0.0_f64, f64::max)
    };

    Ok(ComparisonReport {
        schema_version: SCHEMA_VERSION,
        baseline: baseline.sut_name.clone(),
        candidate: candidate.sut_name.clone(),
        scenario: baseline.scenario_name.clone(),
        area_difference,
        throughput: ScalarDelta::between(baseline.mean_throughput(), candidate.mean_throughput()),
        p50_latency: ScalarDelta::between(p(baseline, 0.5)?, p(candidate, 0.5)?),
        p99_latency: ScalarDelta::between(p(baseline, 0.99)?, p(candidate, 0.99)?),
        phases,
        ops_per_window: OPS_PER_WINDOW,
        sla: SlaComparison {
            threshold: sla_b.threshold,
            multiplier: SLA_MULTIPLIER,
            violation_fraction: ScalarDelta::between(
                sla_b.violation_fraction,
                sla_c.violation_fraction,
            ),
            worst_adjustment: ScalarDelta::between(worst(&sla_b), worst(&sla_c)),
        },
        faults: FaultDeltas::between(baseline, candidate),
        cost: CostComparison::between(baseline, candidate, &HardwareProfile::cpu()),
        notes,
    })
}

/// Renders the report as aligned, plain text — the `lsbench compare`
/// default output (pass `--json` for the serialized form instead).
pub fn render_comparison_report(r: &ComparisonReport) -> String {
    let mut out = String::new();
    let line = |out: &mut String, s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    line(
        &mut out,
        format!(
            "head-to-head: candidate '{}' vs baseline '{}' on '{}'",
            r.candidate, r.baseline, r.scenario
        ),
    );
    for note in &r.notes {
        line(&mut out, format!("  note: {note}"));
    }
    line(&mut out, String::new());

    line(&mut out, "adaptability (Fig. 1b)".to_string());
    let direction = if r.area_difference > 0.0 {
        "candidate ahead"
    } else if r.area_difference < 0.0 {
        "baseline ahead"
    } else {
        "dead heat"
    };
    line(
        &mut out,
        format!(
            "  area difference   {:>+16.6} query-seconds ({direction})",
            r.area_difference
        ),
    );

    line(&mut out, String::new());
    line(&mut out, "throughput and latency".to_string());
    let scalar = |out: &mut String, label: &str, s: &ScalarDelta| {
        line(
            out,
            format!(
                "  {label:<18} baseline {:>14.6}   candidate {:>14.6}   delta {:>+14.6}",
                s.baseline, s.candidate, s.delta
            ),
        );
    };
    scalar(&mut out, "mean ops/sec", &r.throughput);
    scalar(&mut out, "p50 latency (s)", &r.p50_latency);
    scalar(&mut out, "p99 latency (s)", &r.p99_latency);

    line(&mut out, String::new());
    line(
        &mut out,
        format!(
            "specialization (Fig. 1a), windowed throughput per phase ({} ops/window)",
            r.ops_per_window
        ),
    );
    if r.phases.is_empty() {
        line(
            &mut out,
            "  (no phase had enough completions on both sides to sample)".to_string(),
        );
    } else {
        line(
            &mut out,
            format!(
                "  {:<16} {:>14} {:>14} {:>14} {:>14}",
                "phase", "base median", "cand median", "d-median", "d-q3"
            ),
        );
        for ph in &r.phases {
            line(
                &mut out,
                format!(
                    "  {:<16} {:>14.3} {:>14.3} {:>+14.3} {:>+14.3}",
                    ph.phase,
                    ph.baseline.five.median,
                    ph.candidate.five.median,
                    ph.delta.median,
                    ph.delta.q3
                ),
            );
        }
    }

    line(&mut out, String::new());
    line(
        &mut out,
        format!(
            "SLA bands (Fig. 1c), threshold {:.6} s = {}x baseline p99",
            r.sla.threshold, r.sla.multiplier
        ),
    );
    scalar(&mut out, "violation frac", &r.sla.violation_fraction);
    scalar(&mut out, "worst adjustment", &r.sla.worst_adjustment);

    line(&mut out, String::new());
    line(
        &mut out,
        "fault accounting (candidate - baseline)".to_string(),
    );
    line(
        &mut out,
        format!(
            "  injected {:+}   retries {:+}   timeouts {:+}   crashes {:+}   failed ops {:+}",
            r.faults.injected,
            r.faults.retries,
            r.faults.timeouts,
            r.faults.crashes,
            r.faults.failed_ops
        ),
    );

    line(&mut out, String::new());
    line(
        &mut out,
        format!("cost (Fig. 1d, {} pricing)", r.cost.hardware),
    );
    let opt = |v: Option<f64>| match v {
        Some(v) => format!("{v:.3e}"),
        None => "n/a".to_string(),
    };
    line(
        &mut out,
        format!(
            "  $/query           baseline {:>14}   candidate {:>14}   ratio {}",
            opt(r.cost.baseline_cost_per_query),
            opt(r.cost.candidate_cost_per_query),
            match r.cost.ratio {
                Some(x) => format!("{x:.4}"),
                None => "n/a".to_string(),
            }
        ),
    );
    out
}

/// Renders the transport header `lsbench compare` prints above the
/// report when manifests are available: which process (or endpoint) each
/// side ran in, with an explicit warning when a remote run is being
/// paired against a local baseline — that comparison is legitimate (the
/// records are conformant by construction) but must never be silent.
pub fn render_transport_header(
    baseline: &crate::results::store::RunManifest,
    candidate: &crate::results::store::RunManifest,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "transport: baseline '{}' ran {}; candidate '{}' ran {}\n",
        baseline.sut, baseline.transport, candidate.sut, candidate.transport
    ));
    if baseline.transport != candidate.transport {
        out.push_str(
            "  WARNING: transports differ — remote runs share the local virtual clock but \
             cross a process boundary; fault/timeout accounting may include real network \
             effects\n",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{OpRecord, RunRecord, TrainInfo};
    use lsbench_sut::sut::SutMetrics;

    #[test]
    fn transport_header_warns_on_mixed_transports() {
        use crate::results::store::{RunManifest, Transport};
        let manifest = |sut: &str, transport: Transport| RunManifest {
            sut: sut.to_string(),
            scenario: "s".to_string(),
            spec: String::new(),
            concurrency: 1,
            crate_version: "0".to_string(),
            transport,
            clock: crate::scenario::ClockMode::Sim,
        };
        let local = manifest("btree", Transport::Local);
        let remote = manifest(
            "btree",
            Transport::Remote {
                endpoint: "127.0.0.1:7070".to_string(),
            },
        );
        let same = render_transport_header(&local, &local);
        assert!(same.contains("ran local"));
        assert!(!same.contains("WARNING"));
        let mixed = render_transport_header(&local, &remote);
        assert!(mixed.contains("remote(127.0.0.1:7070)"));
        assert!(mixed.contains("WARNING"));
    }

    /// Two-phase record: `n` ops per phase at the given per-phase speeds.
    fn two_phase(sut: &str, n: usize, speeds: [f64; 2], work: u64) -> RunRecord {
        let mut ops = Vec::new();
        let mut t = 0.0;
        let mut changes = vec![(0usize, 0.0)];
        for (phase, &speed) in speeds.iter().enumerate() {
            if phase > 0 {
                changes.push((phase, t));
            }
            for _ in 0..n {
                t += 1.0 / speed;
                ops.push(OpRecord {
                    t_end: t,
                    latency: 1.0 / speed,
                    phase: phase as u16,
                    ok: true,
                    in_transition: false,
                });
            }
        }
        RunRecord {
            sut_name: sut.to_string(),
            scenario_name: "cmp".to_string(),
            phase_names: vec!["p0".to_string(), "p1".to_string()],
            ops,
            phase_change_times: changes,
            train: TrainInfo { work, seconds: 1.0 },
            exec_start: 0.0,
            exec_end: t,
            final_metrics: SutMetrics {
                size_bytes: 1024,
                training_work: work,
                execution_work: work * 2,
                model_count: 1,
                adaptations: 0,
                label_collection_work: 0,
            },
            work_units_per_second: 1.0,
            faults: crate::faults::FaultStats::default(),
        }
    }

    #[test]
    fn self_comparison_is_all_zero() {
        let r = two_phase("a", 500, [100.0, 50.0], 1_000_000);
        let cmp = compare(&r, &r).unwrap();
        assert_eq!(cmp.area_difference, 0.0);
        assert_eq!(cmp.throughput.delta, 0.0);
        assert_eq!(cmp.p50_latency.delta, 0.0);
        assert_eq!(cmp.p99_latency.delta, 0.0);
        assert!(cmp.phases.iter().all(|p| p.delta.is_zero()));
        assert_eq!(cmp.sla.violation_fraction.delta, 0.0);
        assert_eq!(cmp.sla.worst_adjustment.delta, 0.0);
        assert!(cmp.faults.is_zero());
        assert_eq!(cmp.cost.ratio, Some(1.0));
        assert!(cmp.notes.is_empty());
    }

    #[test]
    fn signed_deltas_negate_under_swap() {
        let slow = two_phase("slow", 500, [100.0, 40.0], 2_000_000);
        let fast = two_phase("fast", 500, [200.0, 120.0], 1_000_000);
        let ab = compare(&slow, &fast).unwrap();
        let ba = compare(&fast, &slow).unwrap();
        assert_eq!(ab.area_difference, -ba.area_difference);
        assert_eq!(ab.throughput.delta, -ba.throughput.delta);
        assert_eq!(ab.p50_latency.delta, -ba.p50_latency.delta);
        assert_eq!(ab.p99_latency.delta, -ba.p99_latency.delta);
        for (x, y) in ab.phases.iter().zip(&ba.phases) {
            assert_eq!(x.delta.median, -y.delta.median);
            assert_eq!(x.delta.q1, -y.delta.q1);
            assert_eq!(x.delta.q3, -y.delta.q3);
        }
        assert_eq!(ab.faults.injected, -ba.faults.injected);
        // The faster candidate is ahead: positive area, positive throughput.
        assert!(ab.area_difference > 0.0);
        assert!(ab.throughput.delta > 0.0);
    }

    #[test]
    fn sla_threshold_is_calibrated_from_the_baseline_side() {
        let slow = two_phase("slow", 500, [100.0, 40.0], 1);
        let fast = two_phase("fast", 500, [200.0, 120.0], 1);
        let ab = compare(&slow, &fast).unwrap();
        let ba = compare(&fast, &slow).unwrap();
        // Different baselines → different thresholds, by design.
        assert!(ab.sla.threshold > ba.sla.threshold);
        assert_eq!(ab.sla.multiplier, SLA_MULTIPLIER);
    }

    #[test]
    fn notes_flag_scenario_mismatch() {
        let a = two_phase("a", 100, [100.0, 50.0], 1);
        let mut b = two_phase("b", 100, [100.0, 50.0], 1);
        b.scenario_name = "other".to_string();
        let cmp = compare(&a, &b).unwrap();
        assert!(cmp.notes.iter().any(|n| n.contains("scenario mismatch")));
    }

    #[test]
    fn report_serde_round_trips_and_renders() {
        let a = two_phase("a", 200, [100.0, 50.0], 5_000);
        let b = two_phase("b", 200, [150.0, 90.0], 3_000);
        let cmp = compare(&a, &b).unwrap();
        let json = serde_json::to_string_pretty(&cmp).unwrap();
        let back: ComparisonReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cmp);
        let text = render_comparison_report(&cmp);
        assert!(text.contains("head-to-head: candidate 'b' vs baseline 'a'"));
        assert!(text.contains("area difference"));
        assert!(text.contains("SLA bands"));
        assert!(text.contains("$/query"));
    }

    #[test]
    fn empty_records_are_rejected() {
        let a = two_phase("a", 100, [100.0, 50.0], 1);
        let mut empty = a.clone();
        empty.ops.clear();
        assert!(compare(&a, &empty).is_err());
        assert!(compare(&empty, &a).is_err());
    }
}
