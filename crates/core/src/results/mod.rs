//! The results archive and head-to-head comparison subsystem.
//!
//! The paper's headline metrics are inherently *comparative*: the Fig. 1b
//! adaptability score is the area difference between two systems'
//! cumulative-query curves, Fig. 1c SLA thresholds are calibrated from a
//! baseline system's latency statistics, and Fig. 1d cost only means
//! something relative to a non-learned competitor. That requires runs to
//! outlive the process that produced them. This module turns the harness
//! from a one-shot runner into a longitudinal benchmark:
//!
//! * [`store`] — a content-addressed, schema-versioned results store:
//!   [`RunArtifact`] pairs a reproduction [`RunManifest`] with the complete
//!   [`RunRecord`](crate::record::RunRecord); artifacts live under
//!   `.lsbench/results/` with file names derived from a stable hash of the
//!   manifest, and loading *refuses* unversioned or drifted artifacts
//!   ([`StoreError::Schema`], [`StoreError::ManifestMismatch`]) instead of
//!   best-effort parsing.
//! * [`mod@compare`] — the paired-comparison engine:
//!   [`compare`](compare::compare) derives the Fig. 1b area difference,
//!   per-phase Fig. 1a box-stat deltas, baseline-calibrated Fig. 1c SLA
//!   deltas, fault/retry accounting deltas, and Fig. 1d cost-per-query
//!   ratios from two records, rendered as aligned text and JSON.
//! * [`regress`] — CI gating: a [`RegressionPolicy`] loaded from a
//!   spec-style file (same positioned-error line parser as scenarios)
//!   evaluates a comparison into pass/fail plus `BENCH_summary.json`.
//!
//! Every artifact this module writes carries a `schema_version` field;
//! bump [`SCHEMA_VERSION`] whenever the serialized shape changes, so old
//! readers fail loudly rather than misread. Drift-sweep artifacts
//! ([`SweepArtifact`], under `sweep/`) version independently via
//! [`SWEEP_SCHEMA_VERSION`] — see its docs for why.

pub mod compare;
pub mod regress;
pub mod store;

pub use compare::{
    compare, render_comparison_report, render_transport_header, ComparisonReport, CostComparison,
    FaultDeltas, ScalarDelta, SlaComparison,
};
pub use regress::{
    evaluate_regression, parse_regression_policy, render_regression, write_bench_summary,
    PolicyViolation, RegressionPolicy, RegressionReport,
};
pub use store::{
    CapacityArtifact, CapacityManifest, ResultStore, RunArtifact, RunManifest, StoreEntry,
    StoreError, SuiteArtifact, SweepArtifact, SweepManifest, Transport, SWEEP_SCHEMA_VERSION,
};

/// Version of every serialized artifact schema in this module
/// ([`RunArtifact`], [`SuiteArtifact`], [`ComparisonReport`],
/// [`RegressionReport`]). Any change to the serialized shape of these
/// types — a field added, removed, renamed, or retyped — must bump this,
/// which the byte-exact golden fixture test enforces.
///
/// History: v1 = PR-5 initial archive; v2 = `RunManifest` gains the
/// `transport` field (local vs. remote endpoint); v3 = `RunArtifact`
/// gains the optional `engine` stats block
/// ([`EngineStats`](crate::runner::EngineStats)) and the store learns
/// capacity artifacts ([`CapacityArtifact`] under `capacity/`); v4 =
/// `RunManifest` gains the `clock` field (sim vs. wall — part of the
/// content address, so a wall run never collides with its sim twin) and
/// `RunArtifact` gains the optional `wall` stats block
/// ([`WallStats`](crate::runner::WallStats)).
pub const SCHEMA_VERSION: u32 = 4;
