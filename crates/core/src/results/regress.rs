//! The regression gate: a [`RegressionPolicy`] evaluated against a
//! [`ComparisonReport`], for CI.
//!
//! Policies live in spec-style files parsed with the same positioned-error
//! line parser as scenarios and fault plans — a typo'd knob or an
//! out-of-range limit is reported as `line N: key: reason`, never silently
//! ignored. Every knob is optional; an absent knob is simply not enforced,
//! so the empty file is the "always pass" policy.
//!
//! ```text
//! # candidate may trail the baseline by at most this area (query-seconds)
//! max_area_regression = 5000.0
//! # candidate p99 may exceed baseline p99 by at most this percentage
//! max_p99_regression_pct = 50.0
//! ```
//!
//! [`evaluate_regression`] turns a comparison plus a policy into a
//! [`RegressionReport`] listing every [`PolicyViolation`];
//! [`write_bench_summary`] serializes it as `BENCH_summary.json` for CI to
//! upload, and `lsbench regress` exits non-zero when any violation fired.

use crate::report::{to_json, workspace_root, write_artifact, write_artifact_to};
use crate::results::compare::ComparisonReport;
use crate::results::SCHEMA_VERSION;
use crate::spec::parse::{lex, Fields};
use crate::spec::SpecError;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Limits a candidate run must stay within relative to the baseline.
/// `None` = that dimension is not gated.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RegressionPolicy {
    /// Max allowed Fig. 1b area *regression* in query-seconds: fires when
    /// the candidate trails the baseline by more than this
    /// (`-area_difference > limit`).
    pub max_area_regression: Option<f64>,
    /// Max allowed p99 latency increase, in percent of the baseline p99.
    pub max_p99_regression_pct: Option<f64>,
    /// Max allowed mean-throughput drop, in percent of the baseline.
    pub max_throughput_regression_pct: Option<f64>,
    /// Max allowed absolute increase in the SLA violation fraction.
    pub max_sla_violation_increase: Option<f64>,
    /// Ceiling on the candidate/baseline cost-per-query ratio.
    pub max_cost_ratio: Option<f64>,
}

/// Parses a regression policy from spec-style text: root-level keys only,
/// closed schema, positioned errors. Negative limits (or a non-positive
/// cost ratio) are rejected at the offending line.
pub fn parse_regression_policy(text: &str) -> std::result::Result<RegressionPolicy, SpecError> {
    let sections = lex(text)?;
    let mut root: Option<Fields> = None;
    for section in sections {
        match section.header.as_str() {
            "" => root = Some(Fields::new(section)),
            other => {
                return Err(SpecError::new(
                    section.line,
                    other,
                    format!("a regression policy file allows only root-level keys, not '{other}'"),
                ))
            }
        }
    }
    let mut root = root.expect("root section always present");
    let non_negative = |v: Option<(f64, usize)>, key: &str| match v {
        Some((x, line)) if x < 0.0 => Err(SpecError::new(
            line,
            key,
            "limit must be non-negative".to_string(),
        )),
        Some((x, _)) => Ok(Some(x)),
        None => Ok(None),
    };
    let max_area_regression =
        non_negative(root.opt_f64("max_area_regression")?, "max_area_regression")?;
    let max_p99_regression_pct = non_negative(
        root.opt_f64("max_p99_regression_pct")?,
        "max_p99_regression_pct",
    )?;
    let max_throughput_regression_pct = non_negative(
        root.opt_f64("max_throughput_regression_pct")?,
        "max_throughput_regression_pct",
    )?;
    let max_sla_violation_increase = non_negative(
        root.opt_f64("max_sla_violation_increase")?,
        "max_sla_violation_increase",
    )?;
    let max_cost_ratio = match root.opt_f64("max_cost_ratio")? {
        Some((x, line)) if x <= 0.0 => {
            return Err(SpecError::new(
                line,
                "max_cost_ratio",
                "cost ratio limit must be positive".to_string(),
            ))
        }
        Some((x, _)) => Some(x),
        None => None,
    };
    root.finish()?;
    Ok(RegressionPolicy {
        max_area_regression,
        max_p99_regression_pct,
        max_throughput_regression_pct,
        max_sla_violation_increase,
        max_cost_ratio,
    })
}

/// One fired policy rule: which knob, its limit, and the measured value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyViolation {
    /// Policy knob that fired.
    pub rule: String,
    /// Configured limit.
    pub limit: f64,
    /// Measured value that exceeded it.
    pub actual: f64,
    /// Human-readable explanation.
    pub message: String,
}

/// The gate's verdict: the comparison, the policy, and every violation.
/// This is the payload of `BENCH_summary.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionReport {
    /// Schema version of this serialized report.
    pub schema_version: u32,
    /// Whether the candidate passed (no violations).
    pub passed: bool,
    /// The policy that was applied.
    pub policy: RegressionPolicy,
    /// Violations, in policy-knob order. Empty iff `passed`.
    pub violations: Vec<PolicyViolation>,
    /// The full head-to-head comparison the gate evaluated.
    pub comparison: ComparisonReport,
}

/// Evaluates a comparison against a policy. Only knobs set in the policy
/// are checked; percentage knobs are skipped when the baseline value is
/// zero (there is no meaningful percentage of nothing), and the cost knob
/// is skipped when no ratio could be computed.
pub fn evaluate_regression(
    comparison: &ComparisonReport,
    policy: &RegressionPolicy,
) -> RegressionReport {
    let mut violations = Vec::new();
    let mut check = |rule: &str, limit: Option<f64>, actual: Option<f64>, message: String| {
        if let (Some(limit), Some(actual)) = (limit, actual) {
            if actual > limit {
                violations.push(PolicyViolation {
                    rule: rule.to_string(),
                    limit,
                    actual,
                    message,
                });
            }
        }
    };

    let area_regression = -comparison.area_difference;
    check(
        "max_area_regression",
        policy.max_area_regression,
        Some(area_regression),
        format!(
            "candidate trails the baseline cumulative-query curve by {area_regression:.3} \
             query-seconds"
        ),
    );

    let p99_pct = if comparison.p99_latency.baseline > 0.0 {
        Some(comparison.p99_latency.delta / comparison.p99_latency.baseline * 100.0)
    } else {
        None
    };
    check(
        "max_p99_regression_pct",
        policy.max_p99_regression_pct,
        p99_pct,
        format!(
            "candidate p99 latency {:.6} s is {:.1}% above baseline {:.6} s",
            comparison.p99_latency.candidate,
            p99_pct.unwrap_or(0.0),
            comparison.p99_latency.baseline
        ),
    );

    let tput_pct = if comparison.throughput.baseline > 0.0 {
        Some(-comparison.throughput.delta / comparison.throughput.baseline * 100.0)
    } else {
        None
    };
    check(
        "max_throughput_regression_pct",
        policy.max_throughput_regression_pct,
        tput_pct,
        format!(
            "candidate throughput {:.1} ops/s is {:.1}% below baseline {:.1} ops/s",
            comparison.throughput.candidate,
            tput_pct.unwrap_or(0.0),
            comparison.throughput.baseline
        ),
    );

    check(
        "max_sla_violation_increase",
        policy.max_sla_violation_increase,
        Some(comparison.sla.violation_fraction.delta),
        format!(
            "SLA violation fraction rose from {:.4} to {:.4}",
            comparison.sla.violation_fraction.baseline, comparison.sla.violation_fraction.candidate
        ),
    );

    check(
        "max_cost_ratio",
        policy.max_cost_ratio,
        comparison.cost.ratio,
        format!(
            "candidate costs {:.4}x the baseline per query on {}",
            comparison.cost.ratio.unwrap_or(0.0),
            comparison.cost.hardware
        ),
    );

    RegressionReport {
        schema_version: SCHEMA_VERSION,
        passed: violations.is_empty(),
        policy: *policy,
        violations,
        comparison: comparison.clone(),
    }
}

/// Renders the verdict as plain text — the `lsbench regress` output.
pub fn render_regression(r: &RegressionReport) -> String {
    let mut out = format!(
        "regression gate: candidate '{}' vs baseline '{}' on '{}'\n",
        r.comparison.candidate, r.comparison.baseline, r.comparison.scenario
    );
    if r.passed {
        out.push_str("PASS: no policy violations\n");
    } else {
        out.push_str(&format!(
            "FAIL: {} policy violation{}\n",
            r.violations.len(),
            if r.violations.len() == 1 { "" } else { "s" }
        ));
        for v in &r.violations {
            out.push_str(&format!(
                "  {}: {:.4} > limit {:.4} — {}\n",
                v.rule, v.actual, v.limit, v.message
            ));
        }
    }
    out
}

/// Writes the verdict as `BENCH_summary.json`: once into the standard
/// artifact directory, and once at the workspace root where CI jobs pick
/// it up for upload. Returns the workspace-root path.
pub fn write_bench_summary(report: &RegressionReport) -> Result<PathBuf> {
    let json = to_json(report)?;
    write_artifact("BENCH_summary.json", &json)?;
    write_artifact_to(&workspace_root(), "BENCH_summary.json", &json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{OpRecord, RunRecord, TrainInfo};
    use crate::results::compare::compare;
    use lsbench_sut::sut::SutMetrics;

    fn record(sut: &str, speed: f64, work: u64) -> RunRecord {
        let mut ops = Vec::new();
        let mut t = 0.0;
        for _ in 0..300 {
            t += 1.0 / speed;
            ops.push(OpRecord {
                t_end: t,
                latency: 1.0 / speed,
                phase: 0,
                ok: true,
                in_transition: false,
            });
        }
        RunRecord {
            sut_name: sut.to_string(),
            scenario_name: "gate".to_string(),
            phase_names: vec!["p0".to_string()],
            ops,
            phase_change_times: vec![(0, 0.0)],
            train: TrainInfo { work, seconds: 1.0 },
            exec_start: 0.0,
            exec_end: t,
            final_metrics: SutMetrics {
                size_bytes: 0,
                training_work: work,
                execution_work: work,
                model_count: 1,
                adaptations: 0,
                label_collection_work: 0,
            },
            work_units_per_second: 1.0,
            faults: crate::faults::FaultStats::default(),
        }
    }

    #[test]
    fn policy_parses_with_positioned_errors() {
        let p = parse_regression_policy(
            "# comment\nmax_area_regression = 5000.0\nmax_cost_ratio = 2.0\n",
        )
        .unwrap();
        assert_eq!(p.max_area_regression, Some(5000.0));
        assert_eq!(p.max_cost_ratio, Some(2.0));
        assert_eq!(p.max_p99_regression_pct, None);

        let err = parse_regression_policy("max_area_regression = -1.0\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("non-negative"));

        let err = parse_regression_policy("bogus_knob = 1.0\n").unwrap_err();
        assert!(err.to_string().contains("unknown key 'bogus_knob'"));

        let err = parse_regression_policy("[sla]\nthreshold = 1.0\n").unwrap_err();
        assert!(err.to_string().contains("only root-level keys"));

        let err = parse_regression_policy("max_cost_ratio = 0\n").unwrap_err();
        assert!(err.to_string().contains("must be positive"));

        // Empty file = always-pass policy.
        assert_eq!(
            parse_regression_policy("").unwrap(),
            RegressionPolicy::default()
        );
    }

    #[test]
    fn empty_policy_always_passes() {
        let base = record("base", 100.0, 1_000);
        let cand = record("cand", 10.0, 9_000_000); // much worse everywhere
        let cmp = compare(&base, &cand).unwrap();
        let verdict = evaluate_regression(&cmp, &RegressionPolicy::default());
        assert!(verdict.passed);
        assert!(verdict.violations.is_empty());
    }

    #[test]
    fn violations_fire_and_render() {
        let base = record("base", 100.0, 1_000);
        let cand = record("cand", 50.0, 100_000); // 2x slower, 100x training
        let cmp = compare(&base, &cand).unwrap();
        let policy = RegressionPolicy {
            max_area_regression: Some(0.0),
            max_p99_regression_pct: Some(10.0),
            max_throughput_regression_pct: Some(10.0),
            max_sla_violation_increase: Some(1.0),
            max_cost_ratio: Some(1.5),
        };
        let verdict = evaluate_regression(&cmp, &policy);
        assert!(!verdict.passed);
        let rules: Vec<&str> = verdict.violations.iter().map(|v| v.rule.as_str()).collect();
        assert!(rules.contains(&"max_area_regression"));
        assert!(rules.contains(&"max_p99_regression_pct"));
        assert!(rules.contains(&"max_throughput_regression_pct"));
        assert!(rules.contains(&"max_cost_ratio"));
        assert!(!rules.contains(&"max_sla_violation_increase"));
        let text = render_regression(&verdict);
        assert!(text.starts_with("regression gate:"));
        assert!(text.contains("FAIL: 4 policy violations"));

        // The improved direction passes the same policy.
        let improved = evaluate_regression(&compare(&cand, &base).unwrap(), &policy);
        assert!(improved.passed);
        assert!(render_regression(&improved).contains("PASS"));
    }

    #[test]
    fn verdict_serde_round_trips() {
        let base = record("base", 100.0, 1_000);
        let cand = record("cand", 90.0, 2_000);
        let cmp = compare(&base, &cand).unwrap();
        let verdict = evaluate_regression(
            &cmp,
            &RegressionPolicy {
                max_throughput_regression_pct: Some(50.0),
                ..RegressionPolicy::default()
            },
        );
        let json = serde_json::to_string_pretty(&verdict).unwrap();
        let back: RegressionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, verdict);
    }
}
