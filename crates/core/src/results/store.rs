//! The content-addressed, schema-versioned results store.
//!
//! A saved run is a [`RunArtifact`]: a schema version, a reproduction
//! [`RunManifest`], the manifest's stable digest, and the complete
//! [`RunRecord`]. Artifacts are JSON files under a store directory
//! (default `<workspace>/.lsbench/results/`) whose names embed the
//! manifest digest, so the same run configuration always lands in the
//! same file and two stores can be merged by copying files.
//!
//! Loading is strict by design: an artifact without a `schema_version`, or
//! with the wrong one, is refused with [`StoreError::Schema`]; an artifact
//! whose stored digest does not match its manifest is refused with
//! [`StoreError::ManifestMismatch`]. There is no best-effort parsing — a
//! benchmark result that cannot be trusted end-to-end is worse than no
//! result.

use super::SCHEMA_VERSION;
use crate::capacity::CapacityReport;
use crate::record::RunRecord;
use crate::report::{workspace_root, write_artifact_to};
use crate::runner::{EngineStats, WallStats};
use crate::scenario::{ClockMode, Scenario};
use crate::spec::render_scenario;
use crate::suite::SuiteResult;
use crate::sweep::curves::SweepCurve;
use crate::BenchError;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Errors from the results store. Schema and digest drift get their own
/// variants so callers (and CI) can tell "this artifact is from another
/// era" apart from plain I/O trouble.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Filesystem operation failed.
    Io(String),
    /// The file is not valid artifact JSON.
    Parse(String),
    /// The artifact is unversioned or carries a different schema version.
    Schema {
        /// Version found in the file (`None` = no `schema_version` field).
        found: Option<u32>,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The stored digest does not match the digest recomputed from the
    /// stored manifest: the artifact was edited or corrupted after save.
    ManifestMismatch {
        /// Digest recorded in the artifact.
        stored: String,
        /// Digest recomputed from the manifest as loaded.
        computed: String,
    },
    /// No stored artifact matches the query.
    NotFound(String),
    /// More than one stored artifact matches the query.
    Ambiguous {
        /// The query that matched more than once.
        query: String,
        /// File names of all matches.
        matches: Vec<String>,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "store I/O error: {m}"),
            StoreError::Parse(m) => write!(f, "artifact parse error: {m}"),
            StoreError::Schema { found, expected } => match found {
                Some(v) => write!(
                    f,
                    "artifact schema version {v} (this build reads {expected}); refusing to parse"
                ),
                None => write!(
                    f,
                    "artifact has no schema_version field (this build reads {expected}); \
                     refusing unversioned artifacts"
                ),
            },
            StoreError::ManifestMismatch { stored, computed } => write!(
                f,
                "manifest digest mismatch: artifact says {stored} but its manifest hashes to \
                 {computed}; the artifact was modified after it was saved"
            ),
            StoreError::NotFound(q) => write!(f, "no stored artifact matches '{q}'"),
            StoreError::Ambiguous { query, matches } => write!(
                f,
                "'{query}' matches {} artifacts: {}",
                matches.len(),
                matches.join(", ")
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<StoreError> for BenchError {
    fn from(e: StoreError) -> Self {
        BenchError::Store(e.to_string())
    }
}

/// Where the run's SUT executed: in this process (the determinism
/// oracle) or behind a `lsbench serve` endpoint. Recorded in the
/// manifest so `lsbench compare` can never silently pair a remote run
/// against a local baseline — the transport surfaces in the report
/// header and in listings.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transport {
    /// In-process SUT on the virtual clock.
    #[default]
    Local,
    /// Out-of-process SUT over the wire protocol.
    Remote {
        /// The `host:port` the run connected to.
        endpoint: String,
    },
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Transport::Local => write!(f, "local"),
            Transport::Remote { endpoint } => write!(f, "remote({endpoint})"),
        }
    }
}

/// Everything needed to reproduce the run an artifact records: the SUT and
/// scenario names, the *rendered canonical spec text* of the scenario
/// (dataset seed, phases, transitions, arrival process, SLA policy, and
/// any attached fault plan all included — `parse ∘ render = id`), the
/// worker count, and the crate version that produced the record.
///
/// The manifest is what gets content-addressed: [`RunManifest::digest`] is
/// a stable hash over its canonical JSON encoding, and the artifact file
/// name embeds it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunManifest {
    /// SUT name as resolved by the registry.
    pub sut: String,
    /// Scenario name.
    pub scenario: String,
    /// Canonical spec text of the scenario ([`render_scenario`]), seeds
    /// and fault plan included.
    pub spec: String,
    /// Worker count the run used (1 = serial driver).
    pub concurrency: usize,
    /// `lsbench-core` version that wrote the artifact.
    pub crate_version: String,
    /// Where the SUT executed (local process vs. remote endpoint).
    pub transport: Transport,
    /// Which clock the run reported on (sim vs. wall). Part of the
    /// content address: a wall-clock run can never collide with (or be
    /// silently compared as) its sim twin. New in schema v4.
    pub clock: ClockMode,
}

impl RunManifest {
    /// Builds the manifest for a run of `scenario` (faults attached and
    /// all) by `sut` at `concurrency` workers, stamped with this crate's
    /// version. Transport defaults to [`Transport::Local`]; remote runs
    /// chain [`RunManifest::with_transport`]. Clock defaults to
    /// [`ClockMode::Sim`]; wall runs chain [`RunManifest::with_clock`].
    pub fn for_run(scenario: &Scenario, sut: &str, concurrency: usize) -> Self {
        RunManifest {
            sut: sut.to_string(),
            scenario: scenario.name.clone(),
            spec: render_scenario(scenario),
            concurrency,
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            transport: Transport::Local,
            clock: ClockMode::Sim,
        }
    }

    /// Stamps the transport the run used.
    pub fn with_transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Stamps the clock mode the run used.
    pub fn with_clock(mut self, clock: ClockMode) -> Self {
        self.clock = clock;
        self
    }

    /// Stable content digest: FNV-1a (64-bit) over the manifest's compact
    /// canonical JSON, in fixed-width hex. Field order is the struct
    /// declaration order and the JSON writer is deterministic, so equal
    /// manifests always hash equal — across runs, platforms, and worker
    /// counts.
    pub fn digest(&self) -> String {
        let canonical = serde_json::to_string(self).expect("manifest serialization is total");
        format!("{:016x}", fnv1a64(canonical.as_bytes()))
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and stable — exactly what a
/// content-addressed file name needs (collision resistance against
/// *accidents*, not adversaries).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A saved run: schema version, manifest digest, manifest, and the
/// complete run record. This is the unit the store saves and loads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunArtifact {
    /// Schema version ([`SCHEMA_VERSION`]) — checked before anything else
    /// on load.
    pub schema_version: u32,
    /// [`RunManifest::digest`] at save time — revalidated on load.
    pub digest: String,
    /// The reproduction manifest.
    pub manifest: RunManifest,
    /// The complete run record (lossless: `final_metrics` included).
    pub record: RunRecord,
    /// Engine statistics (merged latency histogram, completion intervals,
    /// thread/lane counts) when the run went through the concurrent
    /// engine; `None` for serial-driver runs. New in schema v3.
    pub engine: Option<EngineStats>,
    /// Host wall-clock statistics when the run used `clock = wall`;
    /// `None` for sim runs. Lives beside the record, never inside it, so
    /// a wall artifact's `record` is bit-identical to its sim twin's.
    /// New in schema v4.
    pub wall: Option<WallStats>,
}

impl RunArtifact {
    /// Packages a manifest and record into a versioned, digested artifact.
    /// Engine stats start absent; chain [`RunArtifact::with_engine`] for
    /// engine-path runs and [`RunArtifact::with_wall`] for wall-clock runs.
    pub fn new(manifest: RunManifest, record: RunRecord) -> Self {
        RunArtifact {
            schema_version: SCHEMA_VERSION,
            digest: manifest.digest(),
            manifest,
            record,
            engine: None,
            wall: None,
        }
    }

    /// Stamps the engine statistics of the run that produced the record.
    /// The digest stays manifest-only, so stamping stats never changes
    /// which file the artifact stores under.
    pub fn with_engine(mut self, engine: Option<EngineStats>) -> Self {
        self.engine = engine;
        self
    }

    /// Stamps the wall-clock statistics of the run that produced the
    /// record. Digest unaffected, same as [`RunArtifact::with_engine`].
    pub fn with_wall(mut self, wall: Option<WallStats>) -> Self {
        self.wall = wall;
        self
    }

    /// The file name this artifact stores under:
    /// `<scenario>-<sut>-t<workers>-<digest>.json` (slugged), so listings
    /// read well while the digest keeps the name content-addressed.
    pub fn file_name(&self) -> String {
        format!(
            "{}-{}-t{}-{}.json",
            slug(&self.manifest.scenario),
            slug(&self.manifest.sut),
            self.manifest.concurrency,
            self.digest
        )
    }

    /// Pretty JSON encoding (trailing newline included).
    pub fn to_json(&self) -> Result<String, StoreError> {
        serde_json::to_string_pretty(self)
            .map(|mut s| {
                s.push('\n');
                s
            })
            .map_err(|e| StoreError::Parse(e.to_string()))
    }

    /// Strict decode: checks `schema_version` *before* interpreting the
    /// rest, then revalidates the stored digest against the manifest.
    pub fn from_json(text: &str) -> Result<Self, StoreError> {
        check_schema_version(text)?;
        let artifact: RunArtifact =
            serde_json::from_str(text).map_err(|e| StoreError::Parse(e.to_string()))?;
        let computed = artifact.manifest.digest();
        if computed != artifact.digest {
            return Err(StoreError::ManifestMismatch {
                stored: artifact.digest,
                computed,
            });
        }
        Ok(artifact)
    }
}

/// Everything needed to reproduce a capacity search: the SUT and scenario
/// names, the rendered canonical spec text of the *base* scenario (before
/// per-probe arrival-rate substitution), the SLA target string as given on
/// the command line, the open-loop client/worker counts, the crate
/// version, and the transport. Content-addressed exactly like
/// [`RunManifest`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityManifest {
    /// SUT name as resolved by the registry.
    pub sut: String,
    /// Scenario name.
    pub scenario: String,
    /// Canonical spec text of the base scenario ([`render_scenario`]).
    pub spec: String,
    /// The SLA target as given (`pNN:MS`, e.g. `p99:5`).
    pub sla: String,
    /// Simulated open-loop clients per probe.
    pub clients: usize,
    /// Worker threads per probe.
    pub workers: usize,
    /// `lsbench-core` version that wrote the artifact.
    pub crate_version: String,
    /// Where the SUT executed (local process vs. remote endpoint).
    pub transport: Transport,
}

impl CapacityManifest {
    /// Builds the manifest for a capacity search of `scenario` by `sut`
    /// under `sla`, stamped with this crate's version. Transport defaults
    /// to [`Transport::Local`]; chain [`CapacityManifest::with_transport`]
    /// for remote searches.
    pub fn for_search(
        scenario: &Scenario,
        sut: &str,
        sla: &str,
        clients: usize,
        workers: usize,
    ) -> Self {
        CapacityManifest {
            sut: sut.to_string(),
            scenario: scenario.name.clone(),
            spec: render_scenario(scenario),
            sla: sla.to_string(),
            clients,
            workers,
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            transport: Transport::Local,
        }
    }

    /// Stamps the transport the search used.
    pub fn with_transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Stable content digest, same construction as [`RunManifest::digest`].
    pub fn digest(&self) -> String {
        let canonical = serde_json::to_string(self).expect("manifest serialization is total");
        format!("{:016x}", fnv1a64(canonical.as_bytes()))
    }
}

/// A saved capacity search: schema version, manifest digest, manifest,
/// and the full [`CapacityReport`] (every probe point plus the knee).
/// Stored under the `capacity/` subdirectory of a results store so run
/// and capacity artifacts never shadow each other in listings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityArtifact {
    /// Schema version ([`SCHEMA_VERSION`]) — checked before anything else
    /// on load.
    pub schema_version: u32,
    /// [`CapacityManifest::digest`] at save time — revalidated on load.
    pub digest: String,
    /// The reproduction manifest.
    pub manifest: CapacityManifest,
    /// The search result: probe points and the SLA knee.
    pub report: CapacityReport,
}

impl CapacityArtifact {
    /// Packages a manifest and report into a versioned, digested artifact.
    pub fn new(manifest: CapacityManifest, report: CapacityReport) -> Self {
        CapacityArtifact {
            schema_version: SCHEMA_VERSION,
            digest: manifest.digest(),
            manifest,
            report,
        }
    }

    /// The file name this artifact stores under (inside `capacity/`):
    /// `<scenario>-<sut>-<sla>-<digest>.json` (slugged).
    pub fn file_name(&self) -> String {
        format!(
            "{}-{}-{}-{}.json",
            slug(&self.manifest.scenario),
            slug(&self.manifest.sut),
            slug(&self.manifest.sla),
            self.digest
        )
    }

    /// Pretty JSON encoding (trailing newline included).
    pub fn to_json(&self) -> Result<String, StoreError> {
        serde_json::to_string_pretty(self)
            .map(|mut s| {
                s.push('\n');
                s
            })
            .map_err(|e| StoreError::Parse(e.to_string()))
    }

    /// Strict decode: checks `schema_version` *before* interpreting the
    /// rest, then revalidates the stored digest against the manifest.
    pub fn from_json(text: &str) -> Result<Self, StoreError> {
        check_schema_version(text)?;
        let artifact: CapacityArtifact =
            serde_json::from_str(text).map_err(|e| StoreError::Parse(e.to_string()))?;
        let computed = artifact.manifest.digest();
        if computed != artifact.digest {
            return Err(StoreError::ManifestMismatch {
                stored: artifact.digest,
                computed,
            });
        }
        Ok(artifact)
    }
}

/// Version of the serialized [`SweepArtifact`] schema. Sweep artifacts
/// version independently of the run-artifact family ([`SCHEMA_VERSION`]):
/// they live in their own `sweep/` subdirectory, are never cross-read by
/// the run loaders, and started life after v4, so coupling the two would
/// only force pointless migrations. History: v1 = this format's debut
/// (manifest: scenario, base spec text, SUTs, axis, α grid, transport,
/// clock; payload: per-SUT metric curves).
pub const SWEEP_SCHEMA_VERSION: u32 = 1;

/// Everything needed to reproduce a drift sweep: the scenario name, the
/// rendered canonical spec text of the *base* scenario (rung derivation
/// is deterministic from it), the SUT list, the axis as given on the
/// command line plus the expanded α grid, the crate version, transport,
/// and clock. Content-addressed exactly like [`RunManifest`].
///
/// Deliberately absent: worker/thread counts. Lanes are decided by the
/// scenario's execution mode and results never depend on executing
/// thread count, so the same sweep at 1 or 4 workers must produce the
/// same digest — and byte-identical artifacts (the determinism tests pin
/// this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepManifest {
    /// Scenario name.
    pub scenario: String,
    /// Canonical spec text of the base scenario ([`render_scenario`]).
    pub spec: String,
    /// SUT names, in run order.
    pub suts: Vec<String>,
    /// The drift axis as given (`lo..hixN`, e.g. `0..1x5`).
    pub axis: String,
    /// The expanded monotone α grid, one entry per rung.
    pub alphas: Vec<f64>,
    /// `lsbench-core` version that wrote the artifact.
    pub crate_version: String,
    /// Where the SUTs executed (local process vs. remote endpoint).
    pub transport: Transport,
    /// Which clock the rungs reported on (sim vs. wall).
    pub clock: ClockMode,
}

impl SweepManifest {
    /// Builds the manifest for a sweep of `scenario` by `suts` over
    /// `axis`/`alphas`, stamped with this crate's version. Transport
    /// defaults to [`Transport::Local`] and clock to [`ClockMode::Sim`];
    /// chain [`SweepManifest::with_transport`] /
    /// [`SweepManifest::with_clock`] otherwise.
    pub fn for_sweep(scenario: &Scenario, suts: &[String], axis: &str, alphas: &[f64]) -> Self {
        SweepManifest {
            scenario: scenario.name.clone(),
            spec: render_scenario(scenario),
            suts: suts.to_vec(),
            axis: axis.to_string(),
            alphas: alphas.to_vec(),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            transport: Transport::Local,
            clock: ClockMode::Sim,
        }
    }

    /// Stamps the transport the sweep used.
    pub fn with_transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Stamps the clock mode the sweep used.
    pub fn with_clock(mut self, clock: ClockMode) -> Self {
        self.clock = clock;
        self
    }

    /// Stable content digest, same construction as [`RunManifest::digest`].
    pub fn digest(&self) -> String {
        let canonical = serde_json::to_string(self).expect("manifest serialization is total");
        format!("{:016x}", fnv1a64(canonical.as_bytes()))
    }
}

/// A saved drift sweep: schema version ([`SWEEP_SCHEMA_VERSION`]),
/// manifest digest, manifest, and one metric curve per SUT. Stored under
/// the `sweep/` subdirectory of a results store so sweep, capacity, and
/// run artifacts never shadow each other in listings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepArtifact {
    /// Schema version ([`SWEEP_SCHEMA_VERSION`]) — checked before
    /// anything else on load.
    pub schema_version: u32,
    /// [`SweepManifest::digest`] at save time — revalidated on load.
    pub digest: String,
    /// The reproduction manifest.
    pub manifest: SweepManifest,
    /// Per-SUT metric-vs-α curves, in manifest SUT order.
    pub curves: Vec<SweepCurve>,
}

impl SweepArtifact {
    /// Packages a manifest and curves into a versioned, digested artifact.
    pub fn new(manifest: SweepManifest, curves: Vec<SweepCurve>) -> Self {
        SweepArtifact {
            schema_version: SWEEP_SCHEMA_VERSION,
            digest: manifest.digest(),
            manifest,
            curves,
        }
    }

    /// The file name this artifact stores under (inside `sweep/`):
    /// `<scenario>-sweep-<axis>-<digest>.json` (slugged).
    pub fn file_name(&self) -> String {
        format!(
            "{}-sweep-{}-{}.json",
            slug(&self.manifest.scenario),
            slug(&self.manifest.axis),
            self.digest
        )
    }

    /// Pretty JSON encoding (trailing newline included).
    pub fn to_json(&self) -> Result<String, StoreError> {
        serde_json::to_string_pretty(self)
            .map(|mut s| {
                s.push('\n');
                s
            })
            .map_err(|e| StoreError::Parse(e.to_string()))
    }

    /// Strict decode: checks `schema_version` against
    /// [`SWEEP_SCHEMA_VERSION`] *before* interpreting the rest, then
    /// revalidates the stored digest against the manifest.
    pub fn from_json(text: &str) -> Result<Self, StoreError> {
        check_schema_version_expecting(text, SWEEP_SCHEMA_VERSION)?;
        let artifact: SweepArtifact =
            serde_json::from_str(text).map_err(|e| StoreError::Parse(e.to_string()))?;
        let computed = artifact.manifest.digest();
        if computed != artifact.digest {
            return Err(StoreError::ManifestMismatch {
                stored: artifact.digest,
                computed,
            });
        }
        Ok(artifact)
    }
}

/// The versioned envelope for `lsbench suite` JSON output: the same
/// `schema_version` discipline as [`RunArtifact`], wrapped around the
/// cross-SUT [`SuiteResult`] list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteArtifact {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// One result per SUT, in run order.
    pub results: Vec<SuiteResult>,
}

impl SuiteArtifact {
    /// Wraps suite results in the versioned envelope.
    pub fn new(results: Vec<SuiteResult>) -> Self {
        SuiteArtifact {
            schema_version: SCHEMA_VERSION,
            results,
        }
    }

    /// Strict decode: refuses unversioned or version-drifted suite JSON.
    pub fn from_json(text: &str) -> Result<Self, StoreError> {
        check_schema_version(text)?;
        serde_json::from_str(text).map_err(|e| StoreError::Parse(e.to_string()))
    }
}

/// Reads the `schema_version` field of a JSON object without interpreting
/// anything else, so version drift is reported as such rather than as a
/// confusing field-level parse error.
fn check_schema_version(text: &str) -> Result<(), StoreError> {
    check_schema_version_expecting(text, SCHEMA_VERSION)
}

/// [`check_schema_version`], parameterized over the expected version —
/// artifact families that version independently (sweeps vs. runs) share
/// the same strict-refusal machinery.
fn check_schema_version_expecting(text: &str, expected: u32) -> Result<(), StoreError> {
    let value: serde::Value =
        serde_json::from_str(text).map_err(|e| StoreError::Parse(e.to_string()))?;
    let entries = value
        .as_object()
        .ok_or_else(|| StoreError::Parse("artifact is not a JSON object".to_string()))?;
    let found = match serde::Value::get(entries, "schema_version") {
        serde::Value::UInt(v) if *v <= u32::MAX as u64 => Some(*v as u32),
        serde::Value::Null => None,
        other => {
            return Err(StoreError::Parse(format!(
                "schema_version must be an integer, got {other:?}"
            )))
        }
    };
    match found {
        Some(v) if v == expected => Ok(()),
        other => Err(StoreError::Schema {
            found: other,
            expected,
        }),
    }
}

/// Lowercases and maps every non-alphanumeric run to a single `-` so SUT
/// and scenario names are safe in file names.
fn slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut dash = true; // suppress a leading dash
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            dash = false;
        } else if !dash {
            out.push('-');
            dash = true;
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    if out.is_empty() {
        out.push('x');
    }
    out
}

/// One row of [`ResultStore::list`]: enough to identify an artifact
/// without holding its full record.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    /// Full path of the artifact file.
    pub path: PathBuf,
    /// File name (the stable identity within a store).
    pub file: String,
    /// Manifest digest.
    pub digest: String,
    /// SUT name from the manifest.
    pub sut: String,
    /// Scenario name from the manifest.
    pub scenario: String,
    /// Worker count from the manifest.
    pub concurrency: usize,
    /// Completed operations in the stored record.
    pub completed: usize,
    /// Where the SUT executed.
    pub transport: Transport,
}

/// A directory of [`RunArtifact`] files with save/load/list/find.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) a store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::Io(format!("cannot create {}: {e}", dir.display())))?;
        Ok(ResultStore { dir })
    }

    /// The default store location: `<workspace>/.lsbench/results/`.
    pub fn default_dir() -> PathBuf {
        workspace_root().join(".lsbench").join("results")
    }

    /// Opens the default store ([`ResultStore::default_dir`]).
    pub fn open_default() -> Result<Self, StoreError> {
        Self::open(Self::default_dir())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Saves an artifact under its content-addressed file name, routed
    /// through the same write path as every other lsbench artifact.
    /// Saving the same manifest again overwrites the same file.
    pub fn save(&self, artifact: &RunArtifact) -> Result<PathBuf, StoreError> {
        let json = artifact.to_json()?;
        write_artifact_to(&self.dir, &artifact.file_name(), &json)
            .map_err(|e| StoreError::Io(e.to_string()))
    }

    /// Loads and strictly validates the artifact at `path` (any path, not
    /// necessarily inside a store).
    pub fn load_path(path: &Path) -> Result<RunArtifact, StoreError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| StoreError::Io(format!("cannot read {}: {e}", path.display())))?;
        RunArtifact::from_json(&text).map_err(|e| annotate_with_path(e, path))
    }

    /// Loads an artifact by identifier: an existing file path, a digest
    /// (or unique digest prefix), or a unique substring of the entry's
    /// `sut`/`scenario`/file name.
    pub fn load(&self, id: &str) -> Result<RunArtifact, StoreError> {
        let as_path = Path::new(id);
        if as_path.is_file() {
            return Self::load_path(as_path);
        }
        let entry = self.find(id)?;
        Self::load_path(&entry.path)
    }

    /// Lists every artifact in the store, sorted by file name. Strict like
    /// everything else here: one invalid artifact fails the listing with
    /// an error naming the file, because a store with unreadable entries
    /// should be repaired, not skimmed.
    pub fn list(&self) -> Result<Vec<StoreEntry>, StoreError> {
        let read = std::fs::read_dir(&self.dir)
            .map_err(|e| StoreError::Io(format!("cannot read {}: {e}", self.dir.display())))?;
        let mut paths: Vec<PathBuf> = read
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        let mut out = Vec::with_capacity(paths.len());
        for path in paths {
            let artifact = Self::load_path(&path)?;
            out.push(StoreEntry {
                file: path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default(),
                digest: artifact.digest,
                sut: artifact.manifest.sut,
                scenario: artifact.manifest.scenario,
                concurrency: artifact.manifest.concurrency,
                completed: artifact.record.ops.len(),
                transport: artifact.manifest.transport,
                path,
            });
        }
        Ok(out)
    }

    /// The capacity subdirectory of this store. [`ResultStore::list`]
    /// only looks at files directly in the store directory, so capacity
    /// artifacts never appear in (or break) run listings.
    pub fn capacity_dir(&self) -> PathBuf {
        self.dir.join("capacity")
    }

    /// Saves a capacity artifact under its content-addressed file name in
    /// the `capacity/` subdirectory. Saving the same manifest again
    /// overwrites the same file.
    pub fn save_capacity(&self, artifact: &CapacityArtifact) -> Result<PathBuf, StoreError> {
        let dir = self.capacity_dir();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::Io(format!("cannot create {}: {e}", dir.display())))?;
        let json = artifact.to_json()?;
        write_artifact_to(&dir, &artifact.file_name(), &json)
            .map_err(|e| StoreError::Io(e.to_string()))
    }

    /// Loads and strictly validates the capacity artifact at `path`.
    pub fn load_capacity_path(path: &Path) -> Result<CapacityArtifact, StoreError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| StoreError::Io(format!("cannot read {}: {e}", path.display())))?;
        CapacityArtifact::from_json(&text).map_err(|e| annotate_with_path(e, path))
    }

    /// Lists every capacity artifact file in the store, sorted by name.
    /// An empty (or absent) `capacity/` directory lists as empty.
    pub fn list_capacity(&self) -> Result<Vec<PathBuf>, StoreError> {
        let dir = self.capacity_dir();
        if !dir.is_dir() {
            return Ok(Vec::new());
        }
        let read = std::fs::read_dir(&dir)
            .map_err(|e| StoreError::Io(format!("cannot read {}: {e}", dir.display())))?;
        let mut paths: Vec<PathBuf> = read
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        Ok(paths)
    }

    /// The sweep subdirectory of this store. Like `capacity/`,
    /// [`ResultStore::list`] never looks inside it, so sweep artifacts
    /// never appear in (or break) run listings.
    pub fn sweep_dir(&self) -> PathBuf {
        self.dir.join("sweep")
    }

    /// Saves a sweep artifact under its content-addressed file name in
    /// the `sweep/` subdirectory. Saving the same manifest again
    /// overwrites the same file.
    pub fn save_sweep(&self, artifact: &SweepArtifact) -> Result<PathBuf, StoreError> {
        let dir = self.sweep_dir();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::Io(format!("cannot create {}: {e}", dir.display())))?;
        let json = artifact.to_json()?;
        write_artifact_to(&dir, &artifact.file_name(), &json)
            .map_err(|e| StoreError::Io(e.to_string()))
    }

    /// Loads and strictly validates the sweep artifact at `path`.
    pub fn load_sweep_path(path: &Path) -> Result<SweepArtifact, StoreError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| StoreError::Io(format!("cannot read {}: {e}", path.display())))?;
        SweepArtifact::from_json(&text).map_err(|e| annotate_with_path(e, path))
    }

    /// Lists every sweep artifact file in the store, sorted by name. An
    /// empty (or absent) `sweep/` directory lists as empty.
    pub fn list_sweep(&self) -> Result<Vec<PathBuf>, StoreError> {
        let dir = self.sweep_dir();
        if !dir.is_dir() {
            return Ok(Vec::new());
        }
        let read = std::fs::read_dir(&dir)
            .map_err(|e| StoreError::Io(format!("cannot read {}: {e}", dir.display())))?;
        let mut paths: Vec<PathBuf> = read
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        Ok(paths)
    }

    /// Finds the unique entry matching `query`: first by digest prefix,
    /// then by substring over `sut`, `scenario`, and file name. Zero
    /// matches is [`StoreError::NotFound`]; several are
    /// [`StoreError::Ambiguous`] with the candidates listed.
    pub fn find(&self, query: &str) -> Result<StoreEntry, StoreError> {
        let entries = self.list()?;
        let by_digest: Vec<&StoreEntry> = entries
            .iter()
            .filter(|e| !query.is_empty() && e.digest.starts_with(query))
            .collect();
        let matches: Vec<&StoreEntry> = if by_digest.is_empty() {
            entries
                .iter()
                .filter(|e| {
                    e.sut.contains(query) || e.scenario.contains(query) || e.file.contains(query)
                })
                .collect()
        } else {
            by_digest
        };
        match matches.as_slice() {
            [] => Err(StoreError::NotFound(query.to_string())),
            [one] => Ok((*one).clone()),
            many => Err(StoreError::Ambiguous {
                query: query.to_string(),
                matches: many.iter().map(|e| e.file.clone()).collect(),
            }),
        }
    }
}

/// Prefixes schema/digest/parse errors with the offending file path.
fn annotate_with_path(e: StoreError, path: &Path) -> StoreError {
    match e {
        StoreError::Parse(m) => StoreError::Parse(format!("{}: {m}", path.display())),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultStats;
    use crate::record::{OpRecord, TrainInfo};
    use lsbench_sut::sut::SutMetrics;

    fn tiny_record(sut: &str) -> RunRecord {
        RunRecord {
            sut_name: sut.to_string(),
            scenario_name: "store-test".to_string(),
            phase_names: vec!["p0".to_string()],
            ops: vec![OpRecord {
                t_end: 0.5,
                latency: 0.5,
                phase: 0,
                ok: true,
                in_transition: false,
            }],
            phase_change_times: vec![(0, 0.0)],
            train: TrainInfo::default(),
            exec_start: 0.0,
            exec_end: 0.5,
            final_metrics: SutMetrics::default(),
            work_units_per_second: 1.0,
            faults: FaultStats::default(),
        }
    }

    fn manifest(sut: &str) -> RunManifest {
        RunManifest {
            sut: sut.to_string(),
            scenario: "store-test".to_string(),
            spec: "name = \"store-test\"\n".to_string(),
            concurrency: 1,
            crate_version: "0.0.0-test".to_string(),
            transport: Transport::Local,
            clock: ClockMode::Sim,
        }
    }

    fn temp_store(tag: &str) -> (ResultStore, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("lsbench-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (ResultStore::open(&dir).unwrap(), dir)
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let m = manifest("a");
        assert_eq!(m.digest(), m.clone().digest());
        assert_eq!(m.digest().len(), 16);
        let mut other = manifest("a");
        other.concurrency = 4;
        assert_ne!(m.digest(), other.digest());
    }

    #[test]
    fn save_load_round_trips_and_is_idempotent() {
        let (store, dir) = temp_store("roundtrip");
        let artifact = RunArtifact::new(manifest("btree"), tiny_record("btree"));
        let p1 = store.save(&artifact).unwrap();
        let p2 = store.save(&artifact).unwrap();
        assert_eq!(p1, p2, "same manifest → same file");
        let back = store.load(&artifact.digest).unwrap();
        assert_eq!(back, artifact);
        // Also loadable by digest prefix, substring, and path.
        assert_eq!(store.load(&artifact.digest[..6]).unwrap(), artifact);
        assert_eq!(store.load("btree").unwrap(), artifact);
        assert_eq!(store.load(p1.to_str().unwrap()).unwrap(), artifact);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn list_and_find_disambiguate() {
        let (store, dir) = temp_store("find");
        let a = RunArtifact::new(manifest("btree"), tiny_record("btree"));
        let b = RunArtifact::new(manifest("rmi"), tiny_record("rmi"));
        store.save(&a).unwrap();
        store.save(&b).unwrap();
        let entries = store.list().unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|e| e.scenario == "store-test"));
        assert_eq!(store.find("rmi").unwrap().sut, "rmi");
        assert!(matches!(
            store.find("store-test"),
            Err(StoreError::Ambiguous { .. })
        ));
        assert!(matches!(
            store.find("nonexistent"),
            Err(StoreError::NotFound(_))
        ));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn transport_is_recorded_listed_and_content_addressed() {
        let (store, dir) = temp_store("transport");
        let remote = manifest("btree").with_transport(Transport::Remote {
            endpoint: "127.0.0.1:9999".to_string(),
        });
        let artifact = RunArtifact::new(remote.clone(), tiny_record("btree"));
        store.save(&artifact).unwrap();
        let entries = store.list().unwrap();
        assert_eq!(
            entries[0].transport,
            Transport::Remote {
                endpoint: "127.0.0.1:9999".to_string()
            }
        );
        assert_eq!(entries[0].transport.to_string(), "remote(127.0.0.1:9999)");
        assert_eq!(Transport::default().to_string(), "local");
        // The transport participates in the content address: a remote run
        // can never collide with its local twin.
        assert_ne!(manifest("btree").digest(), remote.digest());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn unversioned_artifacts_are_refused() {
        let artifact = RunArtifact::new(manifest("x"), tiny_record("x"));
        let json = artifact.to_json().unwrap();
        let stripped = json.replacen("\"schema_version\": 4,\n", "", 1);
        assert_ne!(json, stripped, "fixture must actually strip the field");
        match RunArtifact::from_json(&stripped) {
            Err(StoreError::Schema {
                found: None,
                expected,
            }) => {
                assert_eq!(expected, SCHEMA_VERSION)
            }
            other => panic!("expected unversioned refusal, got {other:?}"),
        }
    }

    #[test]
    fn version_drift_is_refused() {
        let artifact = RunArtifact::new(manifest("x"), tiny_record("x"));
        let json = artifact.to_json().unwrap().replacen(
            "\"schema_version\": 4",
            "\"schema_version\": 999",
            1,
        );
        assert!(matches!(
            RunArtifact::from_json(&json),
            Err(StoreError::Schema {
                found: Some(999),
                ..
            })
        ));
    }

    #[test]
    fn manifest_tampering_is_refused() {
        let artifact = RunArtifact::new(manifest("x"), tiny_record("x"));
        let json =
            artifact
                .to_json()
                .unwrap()
                .replacen("\"sut\": \"x\"", "\"sut\": \"tampered\"", 1);
        assert!(matches!(
            RunArtifact::from_json(&json),
            Err(StoreError::ManifestMismatch { .. })
        ));
    }

    #[test]
    fn capacity_artifacts_round_trip_in_their_own_subdirectory() {
        use crate::capacity::{CapacityPoint, CapacityReport, SlaTarget};
        let (store, dir) = temp_store("capacity");
        let manifest = CapacityManifest {
            sut: "btree".to_string(),
            scenario: "store-test".to_string(),
            spec: "name = \"store-test\"\n".to_string(),
            sla: "p99:5".to_string(),
            clients: 1000,
            workers: 4,
            crate_version: "0.0.0-test".to_string(),
            transport: Transport::Local,
        };
        let report = CapacityReport {
            sla: SlaTarget {
                quantile: 0.99,
                threshold_seconds: 0.005,
            },
            points: vec![CapacityPoint {
                rate: 100.0,
                latency_seconds: 0.001,
                throughput: 99.0,
                completed: 1000,
                met: true,
            }],
            knee_rate: 100.0,
            saturated: false,
        };
        let artifact = CapacityArtifact::new(manifest.clone(), report);
        let p1 = store.save_capacity(&artifact).unwrap();
        let p2 = store.save_capacity(&artifact).unwrap();
        assert_eq!(p1, p2, "same manifest → same file");
        assert!(p1.starts_with(store.capacity_dir()));
        let back = ResultStore::load_capacity_path(&p1).unwrap();
        assert_eq!(back, artifact);
        assert_eq!(store.list_capacity().unwrap(), vec![p1]);
        // Capacity artifacts never leak into the run listing, and run
        // listings never fail because a capacity artifact exists.
        assert!(store.list().unwrap().is_empty());
        // Tampering with the manifest is refused just like run artifacts.
        let tampered =
            artifact
                .to_json()
                .unwrap()
                .replacen("\"sla\": \"p99:5\"", "\"sla\": \"p50:5\"", 1);
        assert!(matches!(
            CapacityArtifact::from_json(&tampered),
            Err(StoreError::ManifestMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sweep_artifacts_round_trip_in_their_own_subdirectory() {
        use crate::sweep::curves::{SweepCurve, SweepPoint};
        let (store, dir) = temp_store("sweep");
        let manifest = SweepManifest {
            scenario: "store-test".to_string(),
            spec: "name = \"store-test\"\n".to_string(),
            suts: vec!["btree".to_string(), "rmi".to_string()],
            axis: "0..1x2".to_string(),
            alphas: vec![0.0, 1.0],
            crate_version: "0.0.0-test".to_string(),
            transport: Transport::Local,
            clock: ClockMode::Sim,
        };
        let curves = vec![SweepCurve {
            sut: "btree".to_string(),
            points: vec![SweepPoint {
                alpha: 0.0,
                adaptability_area: -0.01,
                adjustment_speed: 0.5,
                sla_violation_rate: 0.1,
                specialization_spread: 1.25,
            }],
        }];
        let artifact = SweepArtifact::new(manifest.clone(), curves);
        assert_eq!(artifact.schema_version, SWEEP_SCHEMA_VERSION);
        let p1 = store.save_sweep(&artifact).unwrap();
        let p2 = store.save_sweep(&artifact).unwrap();
        assert_eq!(p1, p2, "same manifest → same file");
        assert!(p1.starts_with(store.sweep_dir()));
        let back = ResultStore::load_sweep_path(&p1).unwrap();
        assert_eq!(back, artifact);
        assert_eq!(store.list_sweep().unwrap(), vec![p1]);
        // Sweep artifacts never leak into (or break) run listings.
        assert!(store.list().unwrap().is_empty());
        // Tampering with the manifest is refused just like run artifacts.
        let tampered =
            artifact
                .to_json()
                .unwrap()
                .replacen("\"axis\": \"0..1x2\"", "\"axis\": \"0..1x9\"", 1);
        assert!(matches!(
            SweepArtifact::from_json(&tampered),
            Err(StoreError::ManifestMismatch { .. })
        ));
        // A run-schema version (4) in a sweep artifact is version drift,
        // not a pass: the families version independently.
        let drifted = artifact.to_json().unwrap().replacen(
            "\"schema_version\": 1",
            "\"schema_version\": 4",
            1,
        );
        assert!(matches!(
            SweepArtifact::from_json(&drifted),
            Err(StoreError::Schema {
                found: Some(4),
                expected: SWEEP_SCHEMA_VERSION,
            })
        ));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn clock_mode_is_content_addressed_and_wall_stats_stamp_cleanly() {
        let sim = manifest("btree");
        let wall = manifest("btree").with_clock(ClockMode::Wall);
        // The clock participates in the content address: a wall-clock run
        // can never collide with (or silently replace) its sim twin.
        assert_ne!(sim.digest(), wall.digest());
        let plain = RunArtifact::new(wall.clone(), tiny_record("btree"));
        let stamped =
            RunArtifact::new(wall, tiny_record("btree")).with_wall(Some(WallStats::coarse(1.5, 3)));
        assert_eq!(plain.digest, stamped.digest, "digest is manifest-only");
        assert!(plain.wall.is_none());
        let json = stamped.to_json().unwrap();
        let back = RunArtifact::from_json(&json).unwrap();
        assert_eq!(back, stamped, "wall stats survive the store losslessly");
        assert_eq!(back.wall.as_ref().unwrap().ops, 3);
        assert_eq!(back.manifest.clock, ClockMode::Wall);
    }

    #[test]
    fn engine_stats_are_stamped_without_changing_the_digest() {
        use crate::runner::EngineStats;
        use lsbench_stats::{IntervalCounts, LatencyHistogram};
        let plain = RunArtifact::new(manifest("btree"), tiny_record("btree"));
        let mut latency = LatencyHistogram::new();
        latency.record(500_000_000);
        let stamped = RunArtifact::new(manifest("btree"), tiny_record("btree")).with_engine(Some(
            EngineStats {
                latency,
                completions: IntervalCounts::new(0.0, 0.5).unwrap(),
                threads: 4,
                lanes: 1000,
            },
        ));
        assert_eq!(plain.digest, stamped.digest, "digest is manifest-only");
        assert_eq!(plain.file_name(), stamped.file_name());
        assert!(plain.engine.is_none());
        let json = stamped.to_json().unwrap();
        let back = RunArtifact::from_json(&json).unwrap();
        assert_eq!(back, stamped, "engine stats survive the store losslessly");
    }

    #[test]
    fn suite_envelope_round_trips_and_is_strict() {
        let result = SuiteResult {
            sut_name: "btree".to_string(),
            summaries: vec![],
        };
        let envelope = SuiteArtifact::new(vec![result]);
        let json = serde_json::to_string_pretty(&envelope).unwrap();
        let back = SuiteArtifact::from_json(&json).unwrap();
        assert_eq!(back, envelope);
        assert!(matches!(
            SuiteArtifact::from_json("{\"results\": []}"),
            Err(StoreError::Schema { found: None, .. })
        ));
    }
}
