//! The unified run facade.
//!
//! Historically each execution mode had its own entry point —
//! [`run_kv_scenario`](crate::driver::run_kv_scenario) for serial runs,
//! [`run_concurrent_kv_scenario`](crate::engine::run_concurrent_kv_scenario)
//! for shared-SUT concurrency,
//! [`run_sharded_kv_scenario`](crate::engine::run_sharded_kv_scenario) for
//! key-range sharding,
//! [`run_open_loop_kv_scenario`](crate::engine::run_open_loop_kv_scenario)
//! for multiplexed open-loop client populations, and
//! [`run_holdout`](crate::holdout::run_holdout) for the out-of-sample pass
//! — and every caller chose a code path by hand. [`Runner`] collapses
//! them: describe *what* to run with [`RunOptions`] (an explicit
//! [`ExecutionMode`], operation cap, hold-out, observability) and the
//! runner picks the path:
//!
//! ```text
//! Runner::new(&mut sut).config(opts).run(&scenario)?          // one SUT
//! Runner::from_factory(|data| build(data)).run(&scenario)?    // per-shard SUTs
//! ```
//!
//! * [`ExecutionMode::Serial`] → the serial driver.
//! * [`ExecutionMode::SharedLock`] → the concurrent engine in shared-mutex
//!   mode (a factory builds one SUT from the full dataset first).
//! * [`ExecutionMode::Sharded`] → the dataset is key-range-sharded and each
//!   lane owns one factory-built shard. With a single borrowed SUT there is
//!   nothing to shard, so this degrades to shared-mutex mode (the historic
//!   `with_concurrency` behavior).
//! * [`ExecutionMode::OpenLoop`] → the event-heap scheduler multiplexes
//!   `clients` simulated open-loop clients onto `workers` threads
//!   ([`crate::engine::sched`]); the scenario must carry an
//!   [`ArrivalSpec`](crate::scenario::ArrivalSpec).
//!
//! Every path reports through the same [`RunOutcome`]: the merged
//! [`RunRecord`], optional engine statistics, optional hold-out
//! comparison, and whatever the observability layer collected.

use crate::driver::{run_kv_scenario_observed, run_kv_scenario_timed, DriverConfig};
use crate::engine::{
    run_concurrent_kv_scenario_observed, run_open_loop_kv_scenario_observed,
    run_sharded_kv_scenario_observed, shard_dataset, EngineConfig, EngineReport,
};
use crate::holdout::{one_shot_scenario, HoldoutReport};
use crate::obs::{MetricsRegistry, ObsConfig, RunObserver, SpanNode, TraceLog};
use crate::record::RunRecord;
use crate::scenario::{ClockMode, Scenario};
use crate::{BenchError, Result};
use lsbench_stats::{IntervalCounts, LatencyHistogram};
use lsbench_sut::sut::SystemUnderTest;
use lsbench_workload::dataset::Dataset;
use lsbench_workload::ops::Operation;
use serde::{Deserialize, Serialize};

/// A boxed key-value system under test, as produced by SUT factories and
/// the [`SutRegistry`](crate::sut_registry::SutRegistry).
pub type BoxedKvSut = Box<dyn SystemUnderTest<Operation> + Send>;

/// How a run executes: which concurrency model drives the scenario.
///
/// This replaces the old implicit `concurrency: usize` selection (where
/// `1` meant serial and anything larger meant "the engine, shared or
/// sharded depending on how the runner was built"). Each variant names
/// its model explicitly, so call sites say what they mean and the
/// open-loop client population is a first-class axis instead of being
/// conflated with worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// One operation at a time on one virtual clock (the serial driver).
    #[default]
    Serial,
    /// `workers` closed-loop lanes share one SUT behind a mutex
    /// ([`crate::engine::run_concurrent_kv_scenario`]).
    SharedLock {
        /// Logical lanes (and default worker threads).
        workers: usize,
    },
    /// The key space is split into `workers` range shards, each owned by
    /// one lane ([`crate::engine::run_sharded_kv_scenario`]).
    Sharded {
        /// Number of shards/lanes (and default worker threads).
        workers: usize,
    },
    /// `clients` simulated open-loop clients are multiplexed onto
    /// `workers` threads by the event-heap scheduler
    /// ([`crate::engine::run_open_loop_kv_scenario`]). Requires the
    /// scenario to define an arrival process.
    OpenLoop {
        /// Simulated open-loop client population (may be millions).
        clients: usize,
        /// Worker threads the clients are multiplexed onto. Never affects
        /// results, only wall-clock speed.
        workers: usize,
    },
}

impl ExecutionMode {
    /// Rejects degenerate parameters (zero workers or clients).
    pub fn validate(&self) -> Result<()> {
        let ok = match *self {
            ExecutionMode::Serial => true,
            ExecutionMode::SharedLock { workers } | ExecutionMode::Sharded { workers } => {
                workers >= 1
            }
            ExecutionMode::OpenLoop { clients, workers } => clients >= 1 && workers >= 1,
        };
        if ok {
            Ok(())
        } else {
            Err(BenchError::InvalidScenario(
                "ExecutionMode workers and clients must be at least 1".to_string(),
            ))
        }
    }

    /// Short human-readable label (`serial`, `shared`, `sharded`,
    /// `open-loop`) used by CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            ExecutionMode::Serial => "serial",
            ExecutionMode::SharedLock { .. } => "shared",
            ExecutionMode::Sharded { .. } => "sharded",
            ExecutionMode::OpenLoop { .. } => "open-loop",
        }
    }
}

/// How a run executes, independent of the scenario.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// The execution mode (serial, shared-lock, sharded, or open-loop).
    pub mode: ExecutionMode,
    /// Physical worker-thread override for engine runs; `None` = the
    /// mode's `workers`. Never affects results, only wall-clock speed.
    pub threads: Option<usize>,
    /// Cap on executed operations.
    pub max_ops: u64,
    /// Operations per engine channel batch (and per scheduler event
    /// batch in open-loop mode).
    pub batch_size: usize,
    /// Engine completion-counter interval width (virtual seconds).
    pub completion_interval: f64,
    /// Also run the scenario's hold-out workload once after the main run
    /// and report the generalization ratio (§V-A).
    pub holdout: bool,
    /// What to observe (see [`ObsConfig`]); `ObsConfig::default()` collects
    /// metrics only, [`ObsConfig::traced`] adds the event trace and spans.
    pub obs: ObsConfig,
    /// Which clock the run reports on. [`ClockMode::Sim`] (the default)
    /// is the deterministic conformance oracle; [`ClockMode::Wall`]
    /// additionally captures host wall-clock timings into
    /// [`RunOutcome::wall`] without perturbing the virtual record.
    pub clock: ClockMode,
}

impl Default for RunOptions {
    fn default() -> Self {
        let engine = EngineConfig::default();
        RunOptions {
            mode: ExecutionMode::Serial,
            threads: None,
            max_ops: u64::MAX,
            batch_size: engine.batch_size,
            completion_interval: engine.completion_interval,
            holdout: false,
            obs: ObsConfig::default(),
            clock: ClockMode::Sim,
        }
    }
}

impl RunOptions {
    /// Options running in the given [`ExecutionMode`].
    pub fn with_mode(mode: ExecutionMode) -> Self {
        RunOptions {
            mode,
            ..RunOptions::default()
        }
    }

    /// Legacy constructor from a bare lane count: `n <= 1` is serial,
    /// anything larger maps to [`ExecutionMode::Sharded`] (which the
    /// runner degrades to shared-mutex when it only holds one SUT — the
    /// exact historic routing).
    #[deprecated(
        since = "0.1.0",
        note = "name the concurrency model explicitly with `RunOptions::with_mode(ExecutionMode::...)`"
    )]
    pub fn with_concurrency(n: usize) -> Self {
        let mode = if n <= 1 {
            ExecutionMode::Serial
        } else {
            ExecutionMode::Sharded { workers: n }
        };
        RunOptions::with_mode(mode)
    }

    fn engine_config(&self) -> EngineConfig {
        let (default_threads, lanes) = match self.mode {
            ExecutionMode::Serial => (1, 1),
            ExecutionMode::SharedLock { workers } | ExecutionMode::Sharded { workers } => {
                (workers, workers)
            }
            ExecutionMode::OpenLoop { clients, workers } => (workers, clients),
        };
        EngineConfig {
            threads: self.threads.unwrap_or(default_threads).max(1),
            lanes,
            max_ops: self.max_ops,
            batch_size: self.batch_size,
            completion_interval: self.completion_interval,
        }
    }

    fn driver_config(&self) -> DriverConfig {
        DriverConfig {
            max_ops: self.max_ops,
            mode: ExecutionMode::Serial,
            clock: self.clock,
            ..DriverConfig::default()
        }
    }
}

/// Concurrent-engine statistics carried through [`RunOutcome`] when the
/// run went through the engine, and stamped into archived
/// [`RunArtifact`](crate::results::RunArtifact)s (schema v3) so capacity
/// runs can report scheduler occupancy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Merged log-bucketed latency histogram (nanoseconds, virtual).
    pub latency: LatencyHistogram,
    /// Completions per fixed-width interval.
    pub completions: IntervalCounts,
    /// Worker threads used.
    pub threads: usize,
    /// Logical lanes used (the client count in open-loop mode).
    pub lanes: usize,
}

impl EngineStats {
    fn from_report(report: &EngineReport) -> Self {
        EngineStats {
            latency: report.latency.clone(),
            completions: report.completions.clone(),
            threads: report.threads,
            lanes: report.lanes,
        }
    }
}

/// Host wall-clock statistics for a run executed with [`ClockMode::Wall`],
/// carried through [`RunOutcome::wall`] and stamped into archived
/// [`RunArtifact`](crate::results::RunArtifact)s (schema v4).
///
/// Wall data lives *beside* the virtual record, never inside it: the
/// work-unit [`RunRecord`] of a wall run is bit-identical to the sim run
/// of the same scenario, which is what keeps the virtual clock the
/// conformance oracle (pinned by `tests/determinism.rs` and
/// `tests/rank_agreement.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WallStats {
    /// Wall seconds from the end of training to the last completion.
    pub elapsed_seconds: f64,
    /// Operations measured.
    pub ops: u64,
    /// `ops / elapsed_seconds` (0 when elapsed rounds to zero).
    pub throughput: f64,
    /// Coordinated-omission-safe per-op wall latency histogram
    /// (nanoseconds): each op is charged its full dispatch-batch
    /// duration. Empty for engine-path runs, which report only the
    /// coarse elapsed/throughput pair.
    pub latency: LatencyHistogram,
}

impl WallStats {
    /// Packages a finished capture; computes throughput defensively.
    pub fn new(elapsed_seconds: f64, ops: u64, latency: LatencyHistogram) -> Self {
        let throughput = if elapsed_seconds > 0.0 {
            ops as f64 / elapsed_seconds
        } else {
            0.0
        };
        WallStats {
            elapsed_seconds,
            ops,
            throughput,
            latency,
        }
    }

    /// Coarse capture for engine-path runs: elapsed and throughput only,
    /// no per-op histogram (the engine's own latency histogram is virtual
    /// and lives in [`EngineStats`]).
    pub fn coarse(elapsed_seconds: f64, ops: u64) -> Self {
        WallStats::new(elapsed_seconds, ops, LatencyHistogram::new())
    }
}

/// Everything one [`Runner::run`] produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// The merged run record (same shape for every execution path).
    pub record: RunRecord,
    /// Engine statistics when the run used the concurrent engine.
    pub engine: Option<EngineStats>,
    /// Host wall-clock statistics when the run used [`ClockMode::Wall`].
    pub wall: Option<WallStats>,
    /// Hold-out record and generalization comparison when
    /// [`RunOptions::holdout`] was set.
    pub holdout: Option<(RunRecord, HoldoutReport)>,
    /// Deterministic event trace when [`ObsConfig::trace`] was on.
    pub trace: Option<TraceLog>,
    /// Counters, gauges, and latency histograms from the run.
    pub metrics: MetricsRegistry,
    /// Wall-clock profiling spans when [`ObsConfig::spans`] was on.
    pub spans: Vec<SpanNode>,
}

/// A boxed per-shard SUT constructor, as held by [`Runner::from_factory`].
type SutFactory<'a> = Box<dyn FnMut(&Dataset) -> Result<BoxedKvSut> + 'a>;

/// The system(s) under test a [`Runner`] drives.
enum RunnerSut<'a> {
    /// One caller-built SUT, already loaded with the scenario's dataset.
    Single(&'a mut (dyn SystemUnderTest<Operation> + Send)),
    /// A constructor invoked per shard (or once, for the non-sharded
    /// modes) with the freshly built dataset.
    Factory(SutFactory<'a>),
}

/// The unified run facade. See the [module docs](self) for routing rules.
pub struct Runner<'a> {
    sut: RunnerSut<'a>,
    opts: RunOptions,
}

impl<'a> Runner<'a> {
    /// A runner over one caller-built SUT (already loaded with the
    /// scenario's dataset). The shared-lock and open-loop modes drive it
    /// directly; `Sharded` degrades to shared-lock (one SUT cannot be
    /// range-split).
    pub fn new(sut: &'a mut (dyn SystemUnderTest<Operation> + Send)) -> Self {
        Runner {
            sut: RunnerSut::Single(sut),
            opts: RunOptions::default(),
        }
    }

    /// A runner that builds its SUT(s) from the scenario's dataset: once
    /// per key-range shard in `Sharded` mode, once otherwise.
    pub fn from_factory<F>(factory: F) -> Self
    where
        F: FnMut(&Dataset) -> Result<BoxedKvSut> + 'a,
    {
        Runner {
            sut: RunnerSut::Factory(Box::new(factory)),
            opts: RunOptions::default(),
        }
    }

    /// Sets the run options (builder style).
    pub fn config(mut self, opts: RunOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Runs the scenario, routing to the serial driver, the shared-SUT
    /// engine, the sharded engine, or the open-loop scheduler based on
    /// the configured [`ExecutionMode`].
    pub fn run(&mut self, scenario: &Scenario) -> Result<RunOutcome> {
        self.opts.mode.validate()?;
        let opts = self.opts;
        let mut obs = RunObserver::new(opts.obs);
        // Engine paths have no per-op wall recorder; when clock=wall they
        // get a coarse elapsed/throughput capture measured from here (so
        // the window includes dataset build for factory runs — coarse by
        // name and by nature; the serial driver owns precise capture).
        let coarse_start = (opts.clock == ClockMode::Wall).then(std::time::Instant::now);
        let coarse = |started: Option<std::time::Instant>, record: &RunRecord| {
            started.map(|t0| WallStats::coarse(t0.elapsed().as_secs_f64(), record.ops.len() as u64))
        };
        let (record, engine, holdout, wall) = match (&mut self.sut, opts.mode) {
            (RunnerSut::Single(sut), ExecutionMode::Serial) => {
                let span = obs.spans.enter("run");
                let (record, wall) =
                    run_kv_scenario_timed(*sut, scenario, opts.driver_config(), &mut obs)?;
                obs.spans.exit(span);
                let holdout = run_serial_holdout(&mut obs, *sut, scenario, opts, &record)?;
                (record, None, holdout, wall)
            }
            (
                RunnerSut::Single(sut),
                ExecutionMode::SharedLock { .. } | ExecutionMode::Sharded { .. },
            ) => {
                let span = obs.spans.enter("run");
                let report = run_concurrent_kv_scenario_observed(
                    *sut,
                    scenario,
                    &opts.engine_config(),
                    &mut obs,
                )?;
                obs.spans.exit(span);
                let wall = coarse(coarse_start, &report.record);
                let holdout = run_serial_holdout(&mut obs, *sut, scenario, opts, &report.record)?;
                let stats = EngineStats::from_report(&report);
                (report.record, Some(stats), holdout, wall)
            }
            (RunnerSut::Single(sut), ExecutionMode::OpenLoop { .. }) => {
                let span = obs.spans.enter("run");
                let report = run_open_loop_kv_scenario_observed(
                    *sut,
                    scenario,
                    &opts.engine_config(),
                    &mut obs,
                )?;
                obs.spans.exit(span);
                let wall = coarse(coarse_start, &report.record);
                let holdout = run_serial_holdout(&mut obs, *sut, scenario, opts, &report.record)?;
                let stats = EngineStats::from_report(&report);
                (report.record, Some(stats), holdout, wall)
            }
            (RunnerSut::Factory(factory), ExecutionMode::Serial) => {
                let span = obs.spans.enter("bulk-load");
                let data = scenario.dataset.build()?;
                let mut sut = factory(&data)?;
                obs.spans.exit(span);
                let span = obs.spans.enter("run");
                let (record, wall) =
                    run_kv_scenario_timed(sut.as_mut(), scenario, opts.driver_config(), &mut obs)?;
                obs.spans.exit(span);
                let holdout = run_serial_holdout(&mut obs, sut.as_mut(), scenario, opts, &record)?;
                (record, None, holdout, wall)
            }
            (RunnerSut::Factory(factory), ExecutionMode::SharedLock { .. }) => {
                let span = obs.spans.enter("bulk-load");
                let data = scenario.dataset.build()?;
                let mut sut = factory(&data)?;
                obs.spans.exit(span);
                let span = obs.spans.enter("run");
                let report = run_concurrent_kv_scenario_observed(
                    sut.as_mut(),
                    scenario,
                    &opts.engine_config(),
                    &mut obs,
                )?;
                obs.spans.exit(span);
                let wall = coarse(coarse_start, &report.record);
                let holdout =
                    run_serial_holdout(&mut obs, sut.as_mut(), scenario, opts, &report.record)?;
                let stats = EngineStats::from_report(&report);
                (report.record, Some(stats), holdout, wall)
            }
            (RunnerSut::Factory(factory), ExecutionMode::OpenLoop { .. }) => {
                let span = obs.spans.enter("bulk-load");
                let data = scenario.dataset.build()?;
                let mut sut = factory(&data)?;
                obs.spans.exit(span);
                let span = obs.spans.enter("run");
                let report = run_open_loop_kv_scenario_observed(
                    sut.as_mut(),
                    scenario,
                    &opts.engine_config(),
                    &mut obs,
                )?;
                obs.spans.exit(span);
                let wall = coarse(coarse_start, &report.record);
                let holdout =
                    run_serial_holdout(&mut obs, sut.as_mut(), scenario, opts, &report.record)?;
                let stats = EngineStats::from_report(&report);
                (report.record, Some(stats), holdout, wall)
            }
            (RunnerSut::Factory(factory), ExecutionMode::Sharded { workers }) => {
                let span = obs.spans.enter("bulk-load");
                let data = scenario.dataset.build()?;
                let (router, shards) = shard_dataset(&data, workers)?;
                let mut suts = shards.iter().map(factory).collect::<Result<Vec<_>>>()?;
                obs.spans.exit(span);
                let config = opts.engine_config();
                let span = obs.spans.enter("run");
                let report = run_sharded_kv_scenario_observed(
                    &mut suts, &router, scenario, &config, &mut obs,
                )?;
                obs.spans.exit(span);
                let wall = coarse(coarse_start, &report.record);
                let holdout = if opts.holdout {
                    let span = obs.spans.enter("holdout");
                    let one_shot = one_shot_scenario(scenario)?;
                    let hold = run_sharded_kv_scenario_observed(
                        &mut suts,
                        &router,
                        &one_shot,
                        &config,
                        &mut RunObserver::disabled(),
                    )?;
                    obs.spans.exit(span);
                    let cmp = HoldoutReport::new(&report.record, &hold.record)?;
                    Some((hold.record, cmp))
                } else {
                    None
                };
                let stats = EngineStats::from_report(&report);
                (report.record, Some(stats), holdout, wall)
            }
        };
        let report = obs.finish()?;
        Ok(RunOutcome {
            record,
            engine,
            holdout,
            wall,
            trace: report.trace,
            metrics: report.metrics,
            spans: report.spans,
        })
    }
}

/// Shared serial hold-out pass: runs the one-shot scenario on the same SUT
/// (no adaptation opportunity), with observation disabled so the main
/// run's trace stays a trace of the main run.
fn run_serial_holdout(
    obs: &mut RunObserver,
    sut: &mut (dyn SystemUnderTest<Operation> + Send),
    scenario: &Scenario,
    opts: RunOptions,
    main: &RunRecord,
) -> Result<Option<(RunRecord, HoldoutReport)>> {
    if !opts.holdout {
        return Ok(None);
    }
    let span = obs.spans.enter("holdout");
    let one_shot = one_shot_scenario(scenario)?;
    let hold = run_kv_scenario_observed(
        sut,
        &one_shot,
        DriverConfig::default(),
        &mut RunObserver::disabled(),
    )?;
    obs.spans.exit(span);
    let cmp = HoldoutReport::new(main, &hold)?;
    Ok(Some((hold, cmp)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_kv_scenario;
    use crate::engine::run_sharded_kv_scenario;
    use lsbench_sut::kv::BTreeSut;
    use lsbench_workload::keygen::KeyDistribution;
    use lsbench_workload::ops::OperationMix;
    use lsbench_workload::phases::{PhasedWorkload, WorkloadPhase};

    fn scenario() -> Scenario {
        Scenario::two_phase_shift(
            "runner-shift",
            KeyDistribution::Uniform,
            KeyDistribution::Normal {
                center: 0.1,
                std_frac: 0.02,
            },
            5_000,
            1_000,
            42,
        )
        .unwrap()
    }

    fn factory(data: &Dataset) -> Result<BoxedKvSut> {
        Ok(Box::new(
            BTreeSut::build(data).map_err(|e| BenchError::Sut(e.to_string()))?,
        ))
    }

    #[test]
    fn serial_runner_matches_direct_driver_call() {
        let s = scenario();
        let data = s.dataset.build().unwrap();
        let mut direct_sut = BTreeSut::build(&data).unwrap();
        let direct = run_kv_scenario(&mut direct_sut, &s, DriverConfig::default()).unwrap();
        let mut runner_sut = BTreeSut::build(&data).unwrap();
        let outcome = Runner::new(&mut runner_sut).run(&s).unwrap();
        assert_eq!(outcome.record.ops, direct.ops);
        assert_eq!(outcome.record.exec_end, direct.exec_end);
        assert!(outcome.engine.is_none());
        assert!(outcome.trace.is_none());
        // Default observation still collects metrics.
        assert_eq!(
            outcome.metrics.counter("ops_completed"),
            direct.completed() as u64
        );
    }

    #[test]
    fn factory_sharded_mode_matches_direct_sharded_call() {
        let s = scenario();
        let data = s.dataset.build().unwrap();
        let (router, shards) = shard_dataset(&data, 4).unwrap();
        let mut suts: Vec<BoxedKvSut> = shards.iter().map(|d| factory(d).unwrap()).collect();
        let direct =
            run_sharded_kv_scenario(&mut suts, &router, &s, &EngineConfig::with_concurrency(4))
                .unwrap();
        let outcome = Runner::from_factory(factory)
            .config(RunOptions::with_mode(ExecutionMode::Sharded { workers: 4 }))
            .run(&s)
            .unwrap();
        assert_eq!(outcome.record.ops, direct.record.ops);
        let stats = outcome.engine.expect("engine stats for concurrent run");
        assert_eq!(stats.lanes, 4);
        assert_eq!(stats.latency, direct.latency);
    }

    #[test]
    fn shared_lock_mode_uses_engine() {
        let s = scenario();
        let data = s.dataset.build().unwrap();
        let mut sut = BTreeSut::build(&data).unwrap();
        let outcome = Runner::new(&mut sut)
            .config(RunOptions::with_mode(ExecutionMode::SharedLock {
                workers: 2,
            }))
            .run(&s)
            .unwrap();
        assert_eq!(outcome.engine.as_ref().unwrap().lanes, 2);
        assert_eq!(outcome.record.completed(), 2_000);
    }

    #[test]
    fn deprecated_concurrency_shim_keeps_historic_routing() {
        // `with_concurrency(n)` on a single borrowed SUT historically ran
        // the shared-mutex engine with `n` lanes; the shim must preserve
        // that (via Sharded-degrades-to-shared).
        let s = scenario();
        let data = s.dataset.build().unwrap();
        let mut sut = BTreeSut::build(&data).unwrap();
        #[allow(deprecated)]
        let opts = RunOptions::with_concurrency(2);
        assert_eq!(opts.mode, ExecutionMode::Sharded { workers: 2 });
        let legacy = Runner::new(&mut sut).config(opts).run(&s).unwrap();
        let mut sut2 = BTreeSut::build(&data).unwrap();
        let explicit = Runner::new(&mut sut2)
            .config(RunOptions::with_mode(ExecutionMode::SharedLock {
                workers: 2,
            }))
            .run(&s)
            .unwrap();
        assert_eq!(legacy.record.ops, explicit.record.ops);
        #[allow(deprecated)]
        let serial = RunOptions::with_concurrency(1);
        assert_eq!(serial.mode, ExecutionMode::Serial);
    }

    #[test]
    fn holdout_option_reports_generalization() {
        let mut s = scenario();
        s.holdout = Some(
            PhasedWorkload::single(
                WorkloadPhase::new(
                    "holdout",
                    KeyDistribution::Uniform,
                    (0, 10_000_000),
                    OperationMix::ycsb_c(),
                    500,
                ),
                99,
            )
            .unwrap(),
        );
        let opts = RunOptions {
            holdout: true,
            ..RunOptions::default()
        };
        let outcome = Runner::from_factory(factory).config(opts).run(&s).unwrap();
        let (hold, cmp) = outcome.holdout.expect("hold-out requested");
        assert_eq!(hold.completed(), 500);
        assert!(cmp.generalization_ratio > 0.0);
        // Hold-out ops don't pollute the main run's metrics.
        assert_eq!(outcome.metrics.counter("ops_completed"), 2_000);
    }

    #[test]
    fn traced_run_produces_trace_and_spans() {
        let s = scenario();
        let opts = RunOptions {
            obs: ObsConfig::traced(),
            ..RunOptions::default()
        };
        let outcome = Runner::from_factory(factory).config(opts).run(&s).unwrap();
        let trace = outcome.trace.expect("trace requested");
        assert_eq!(trace.count_kind("run_end"), 1);
        assert_eq!(trace.phase_boundaries(), outcome.record.phase_change_times);
        let names: Vec<&str> = outcome.spans.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, ["bulk-load", "run"]);
    }

    #[test]
    fn degenerate_modes_rejected() {
        let s = scenario();
        for mode in [
            ExecutionMode::SharedLock { workers: 0 },
            ExecutionMode::Sharded { workers: 0 },
            ExecutionMode::OpenLoop {
                clients: 0,
                workers: 1,
            },
            ExecutionMode::OpenLoop {
                clients: 1,
                workers: 0,
            },
        ] {
            assert!(mode.validate().is_err(), "{mode:?} should be invalid");
            let opts = RunOptions::with_mode(mode);
            assert!(Runner::from_factory(factory).config(opts).run(&s).is_err());
        }
    }

    #[test]
    fn open_loop_mode_requires_arrival_spec() {
        let s = scenario(); // closed loop: no arrival section
        let opts = RunOptions::with_mode(ExecutionMode::OpenLoop {
            clients: 4,
            workers: 2,
        });
        assert!(Runner::from_factory(factory).config(opts).run(&s).is_err());
    }
}
