//! Benchmark scenarios.
//!
//! A [`Scenario`] bundles everything one benchmark run needs (§V-B:
//! "settings for configuring execution with different workload and data
//! distributions as well as setting the training time and associated
//! resource overhead"):
//!
//! * the initial **dataset** (distribution, size, key range, seed),
//! * the **phased workload** (distributions, mixes, transitions, order),
//! * the offline **training budget** in work units,
//! * the **SLA policy** (explicit threshold or calibrate-from-baseline),
//! * optional **hold-out phases** executed exactly once for out-of-sample
//!   measurement (§V-A).

use crate::faults::FaultPlan;
use crate::metrics::sla::SlaPolicy;
use crate::{BenchError, Result};
use lsbench_workload::arrival::{ArrivalProcess, LoadModulation};
use lsbench_workload::dataset::Dataset;
use lsbench_workload::keygen::KeyDistribution;
use lsbench_workload::ops::OperationMix;
use lsbench_workload::phases::{PhasedWorkload, TransitionKind, WorkloadPhase};
use serde::{Deserialize, Serialize};

/// Open-loop arrival specification: operations arrive on their own
/// schedule regardless of completions, so queueing delay becomes part of
/// query latency. This is how the benchmark models §III-A's "temporary
/// bursts in query load" and "diurnal query patterns".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSpec {
    /// The arrival process (Poisson or uniform; closed-loop is expressed by
    /// leaving [`Scenario::arrival`] as `None`).
    pub process: ArrivalProcess,
    /// Time-varying load modulation.
    pub modulation: LoadModulation,
    /// Seed for the arrival process.
    pub seed: u64,
}

/// Open-loop client population: how many simulated clients the event-heap
/// scheduler ([`crate::engine::sched`]) multiplexes onto the worker pool.
/// Spelled as the `[open_loop]` section in `.spec` files; requires an
/// arrival process ([`Scenario::arrival`]) since open-loop clients issue
/// operations on the arrival schedule, not on completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpenLoopSpec {
    /// Number of simulated open-loop clients (may be millions; per-client
    /// state is four scalars).
    pub clients: u64,
}

/// The execution mode a scenario asks for (`mode = "..."` in the spec
/// `[run]` table). This is a *preference*: worker/client counts come from
/// the run options and [`OpenLoopSpec`], so the spec stays portable
/// across machines. `None` lets the caller (CLI flags, run options)
/// decide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModePreference {
    /// The serial driver.
    Serial,
    /// Shared-mutex concurrent lanes.
    Shared,
    /// Key-range-sharded concurrent lanes.
    Sharded,
    /// The open-loop event-heap scheduler (requires `[open_loop]` and
    /// `[arrival]`).
    OpenLoop,
}

impl ModePreference {
    /// Parses the spec-file spelling (`serial`, `shared`, `sharded`,
    /// `open-loop`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "serial" => Some(ModePreference::Serial),
            "shared" => Some(ModePreference::Shared),
            "sharded" => Some(ModePreference::Sharded),
            "open-loop" => Some(ModePreference::OpenLoop),
            _ => None,
        }
    }

    /// The spec-file spelling this parses back from.
    pub fn as_str(&self) -> &'static str {
        match self {
            ModePreference::Serial => "serial",
            ModePreference::Shared => "shared",
            ModePreference::Sharded => "sharded",
            ModePreference::OpenLoop => "open-loop",
        }
    }
}

/// The measurement clock a scenario asks for (`clock = "..."` in the spec
/// `[run]` table). Like [`ModePreference`] this is a *preference*: `None`
/// lets the caller (CLI flags, run options) decide.
///
/// * [`Sim`](ClockMode::Sim) — the deterministic virtual clock: work units
///   converted to seconds at `work_units_per_second`. The conformance
///   oracle; records are bit-identical across machines and repeats.
/// * [`Wall`](ClockMode::Wall) — real elapsed time measured around the
///   batched dispatch, reported *alongside* the work-unit record (which
///   stays bit-identical to a sim run of the same scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ClockMode {
    /// Deterministic virtual clock (the default).
    #[default]
    Sim,
    /// Wall-clock measurement alongside the work-unit accounting.
    Wall,
}

impl ClockMode {
    /// Parses the spec-file spelling (`sim`, `wall`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sim" => Some(ClockMode::Sim),
            "wall" => Some(ClockMode::Wall),
            _ => None,
        }
    }

    /// The spec-file spelling this parses back from.
    pub fn as_str(&self) -> &'static str {
        match self {
            ClockMode::Sim => "sim",
            ClockMode::Wall => "wall",
        }
    }
}

/// How online adaptation (retraining) work consumes resources (§V-B:
/// "the fraction of system resources to dedicate for online training").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OnlineTrainMode {
    /// Retraining runs in the foreground: the full burst stalls the next
    /// query (one large latency spike).
    Foreground,
    /// Retraining runs in the background on `fraction` of the resources
    /// (processor sharing): queries slow to `1 − fraction` speed until the
    /// backlog drains — a longer, shallower throughput dip instead of a
    /// spike.
    Background {
        /// Fraction of resources dedicated to training, in `(0, 1)`.
        fraction: f64,
    },
}

/// Specification of the initial dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Key distribution to draw from.
    pub distribution: KeyDistribution,
    /// Key range `[lo, hi)`.
    pub key_range: (u64, u64),
    /// Number of unique keys.
    pub size: usize,
    /// Generation seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Materializes the dataset.
    pub fn build(&self) -> Result<Dataset> {
        Dataset::generate(
            self.distribution.clone(),
            self.key_range.0,
            self.key_range.1,
            self.size,
            self.seed,
        )
        .map_err(|e| BenchError::Workload(e.to_string()))
    }
}

/// A complete benchmark scenario.
///
/// Prefer constructing scenarios through [`Scenario::builder`] (or the
/// ready-made [`Scenario::two_phase_shift`] /
/// [`Scenario::specialization_sweep`] presets): the builder fills in the
/// standard defaults and validates on [`ScenarioBuilder::build`], so an
/// inconsistent scenario fails at construction instead of mid-run. The
/// fields stay public for inspection and targeted tweaks of a built
/// scenario, but populating the struct literally is a deprecated pattern —
/// it silently compiles with nonsense (zero rates, empty datasets) that
/// the builder rejects. The deprecated [`raw`](Scenario::raw) marker field
/// makes the compiler say so: a struct literal has to name it and earns a
/// deprecation warning, while builder-made scenarios never touch it.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name for reports.
    pub name: String,
    /// Initial database.
    pub dataset: DatasetSpec,
    /// The phased execution workload.
    pub workload: PhasedWorkload,
    /// Offline training budget in work units (0 = skip training phase).
    pub train_budget: u64,
    /// SLA policy for Fig. 1c metrics.
    pub sla: SlaPolicy,
    /// Virtual work units per second (converts work to time).
    pub work_units_per_second: f64,
    /// Offer the SUT a maintenance slot every this many operations.
    pub maintenance_every: u64,
    /// Optional hold-out workload, executed once after the main run (§V-A).
    pub holdout: Option<PhasedWorkload>,
    /// `None` = closed loop (next op issued on completion); `Some` = open
    /// loop, where latency includes queueing behind earlier operations.
    pub arrival: Option<ArrivalSpec>,
    /// Open-loop client population for the event-heap scheduler
    /// (`[open_loop]` spec section). Requires `arrival`.
    pub open_loop: Option<OpenLoopSpec>,
    /// Preferred execution mode (`mode` key in the spec `[run]` table);
    /// `None` lets the caller decide.
    pub mode: Option<ModePreference>,
    /// Preferred measurement clock (`clock` key in the spec `[run]`
    /// table); `None` lets the caller decide (default: sim).
    pub clock: Option<ClockMode>,
    /// How online retraining work is scheduled against queries.
    pub online_train: OnlineTrainMode,
    /// Optional deterministic fault-injection plan (`[[fault]]` spec
    /// blocks or the `--faults` CLI flag). `None` = unfaulted run taking
    /// the exact unperturbed code path.
    pub faults: Option<FaultPlan>,
    /// Deprecation marker for raw struct-literal construction: a literal
    /// must name this field (`raw: ()`), which trips the deprecation lint
    /// and points at [`Scenario::builder`]. Carries no data.
    #[deprecated(
        since = "0.1.0",
        note = "construct scenarios with `Scenario::builder(..)` (validates on build) or a \
                `scenarios/*.spec` file instead of a raw struct literal"
    )]
    pub raw: (),
}

impl Scenario {
    /// Starts a [`ScenarioBuilder`] with the standard defaults (YCSB-C
    /// friendly rates, unlimited training budget, calibrated SLA). Dataset
    /// and workload must be supplied before [`ScenarioBuilder::build`].
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder::new(name)
    }

    /// Validates the scenario.
    pub fn validate(&self) -> Result<()> {
        if self.work_units_per_second <= 0.0 {
            return Err(BenchError::InvalidScenario(
                "work_units_per_second must be positive".to_string(),
            ));
        }
        if self.maintenance_every == 0 {
            return Err(BenchError::InvalidScenario(
                "maintenance_every must be positive".to_string(),
            ));
        }
        if self.dataset.size == 0 {
            return Err(BenchError::InvalidScenario(
                "dataset size must be positive".to_string(),
            ));
        }
        if let OnlineTrainMode::Background { fraction } = self.online_train {
            if !(0.0 < fraction && fraction < 1.0) {
                return Err(BenchError::InvalidScenario(
                    "background training fraction must be in (0, 1)".to_string(),
                ));
            }
        }
        if let Some(a) = &self.arrival {
            a.process
                .validate()
                .and_then(|()| a.modulation.validate())
                .map_err(|e| BenchError::InvalidScenario(e.to_string()))?;
            if matches!(a.process, ArrivalProcess::ClosedLoop) {
                return Err(BenchError::InvalidScenario(
                    "closed loop is expressed by arrival = None".to_string(),
                ));
            }
        }
        if let Some(open_loop) = &self.open_loop {
            if open_loop.clients == 0 {
                return Err(BenchError::InvalidScenario(
                    "open_loop clients must be at least 1".to_string(),
                ));
            }
            if self.arrival.is_none() {
                return Err(BenchError::InvalidScenario(
                    "[open_loop] requires an [arrival] section: open-loop clients issue \
                     operations on the arrival schedule"
                        .to_string(),
                ));
            }
        }
        if self.mode == Some(ModePreference::OpenLoop) && self.arrival.is_none() {
            return Err(BenchError::InvalidScenario(
                "mode = \"open-loop\" requires an [arrival] section".to_string(),
            ));
        }
        if let Some(plan) = &self.faults {
            plan.validate(self.workload.phases())
                .map_err(BenchError::InvalidScenario)?;
        }
        Ok(())
    }

    /// A ready-made two-phase shift scenario: `ops_per_phase` operations of
    /// reads on `first`, then an abrupt switch to `second` — the canonical
    /// adaptability experiment behind Fig. 1b/1c.
    pub fn two_phase_shift(
        name: impl Into<String>,
        first: KeyDistribution,
        second: KeyDistribution,
        dataset_size: usize,
        ops_per_phase: u64,
        seed: u64,
    ) -> Result<Scenario> {
        let key_range = (0u64, 10_000_000u64);
        let workload = PhasedWorkload::new(
            vec![
                WorkloadPhase::new(
                    first.name().to_string(),
                    first.clone(),
                    key_range,
                    OperationMix::ycsb_c(),
                    ops_per_phase,
                ),
                WorkloadPhase::new(
                    second.name().to_string(),
                    second,
                    key_range,
                    OperationMix::ycsb_c(),
                    ops_per_phase,
                ),
            ],
            vec![TransitionKind::Abrupt],
            seed,
        )
        .map_err(|e| BenchError::Workload(e.to_string()))?;
        Scenario::builder(name)
            .dataset(first, key_range, dataset_size, seed ^ 0xDA7A)
            .workload(workload)
            .build()
    }

    /// A multi-distribution specialization scenario: one phase per given
    /// distribution, all with the same mix — the Fig. 1a experiment.
    pub fn specialization_sweep(
        name: impl Into<String>,
        distributions: Vec<KeyDistribution>,
        dataset_size: usize,
        ops_per_phase: u64,
        mix: OperationMix,
        seed: u64,
    ) -> Result<Scenario> {
        if distributions.is_empty() {
            return Err(BenchError::InvalidScenario(
                "need at least one distribution".to_string(),
            ));
        }
        let key_range = (0u64, 10_000_000u64);
        let phases: Vec<WorkloadPhase> = distributions
            .iter()
            .map(|d| WorkloadPhase::new(d.name(), d.clone(), key_range, mix.clone(), ops_per_phase))
            .collect();
        let transitions = vec![TransitionKind::Abrupt; phases.len() - 1];
        let workload = PhasedWorkload::new(phases, transitions, seed)
            .map_err(|e| BenchError::Workload(e.to_string()))?;
        Scenario::builder(name)
            .dataset(
                KeyDistribution::Uniform,
                key_range,
                dataset_size,
                seed ^ 0xDA7A,
            )
            .workload(workload)
            .build()
    }
}

/// Builder for [`Scenario`] with validate-on-build.
///
/// Defaults mirror the [`Scenario::two_phase_shift`] preset: unlimited
/// offline training budget, SLA calibrated at 4× the baseline p99, one
/// million work units per second, a maintenance slot every 64 operations,
/// closed-loop arrivals, and foreground online training. Only the dataset
/// and the workload are mandatory.
///
/// ```
/// # use lsbench_core::scenario::{DatasetSpec, Scenario};
/// # use lsbench_workload::keygen::KeyDistribution;
/// # use lsbench_workload::ops::OperationMix;
/// # use lsbench_workload::phases::{PhasedWorkload, WorkloadPhase};
/// let workload = PhasedWorkload::single(
///     WorkloadPhase::new("steady", KeyDistribution::Uniform, (0, 1_000_000),
///                        OperationMix::ycsb_c(), 1_000),
///     7,
/// ).unwrap();
/// let scenario = Scenario::builder("example")
///     .dataset(KeyDistribution::Uniform, (0, 1_000_000), 10_000, 7)
///     .workload(workload)
///     .train_budget(50_000)
///     .build()
///     .unwrap();
/// assert_eq!(scenario.name, "example");
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    dataset: Option<DatasetSpec>,
    workload: Option<PhasedWorkload>,
    train_budget: u64,
    sla: SlaPolicy,
    work_units_per_second: f64,
    maintenance_every: u64,
    holdout: Option<PhasedWorkload>,
    arrival: Option<ArrivalSpec>,
    open_loop: Option<OpenLoopSpec>,
    mode: Option<ModePreference>,
    clock: Option<ClockMode>,
    online_train: OnlineTrainMode,
    faults: Option<FaultPlan>,
}

impl ScenarioBuilder {
    /// A builder with the standard defaults; equivalent to
    /// [`Scenario::builder`].
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioBuilder {
            name: name.into(),
            dataset: None,
            workload: None,
            train_budget: u64::MAX,
            sla: SlaPolicy::FromBaselineP99 { multiplier: 4.0 },
            work_units_per_second: 1_000_000.0,
            maintenance_every: 64,
            holdout: None,
            arrival: None,
            open_loop: None,
            mode: None,
            clock: None,
            online_train: OnlineTrainMode::Foreground,
            faults: None,
        }
    }

    /// Sets the initial dataset (required) from its parts.
    pub fn dataset(
        mut self,
        distribution: KeyDistribution,
        key_range: (u64, u64),
        size: usize,
        seed: u64,
    ) -> Self {
        self.dataset = Some(DatasetSpec {
            distribution,
            key_range,
            size,
            seed,
        });
        self
    }

    /// Sets the initial dataset (required) from a prepared spec.
    pub fn dataset_spec(mut self, spec: DatasetSpec) -> Self {
        self.dataset = Some(spec);
        self
    }

    /// Sets the phased execution workload (required).
    pub fn workload(mut self, workload: PhasedWorkload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Sets the offline training budget in work units (0 = skip training;
    /// default unlimited).
    pub fn train_budget(mut self, budget: u64) -> Self {
        self.train_budget = budget;
        self
    }

    /// Sets the SLA policy (default: 4× the calibrated baseline p99).
    pub fn sla(mut self, sla: SlaPolicy) -> Self {
        self.sla = sla;
        self
    }

    /// Sets the virtual work rate in work units per second (default 10⁶).
    pub fn work_units_per_second(mut self, rate: f64) -> Self {
        self.work_units_per_second = rate;
        self
    }

    /// Offers the SUT a maintenance slot every `n` operations (default 64).
    pub fn maintenance_every(mut self, n: u64) -> Self {
        self.maintenance_every = n;
        self
    }

    /// Adds a hold-out workload executed once after the main run (§V-A).
    pub fn holdout(mut self, workload: PhasedWorkload) -> Self {
        self.holdout = Some(workload);
        self
    }

    /// Switches to open-loop arrivals (default: closed loop).
    pub fn arrival(mut self, arrival: ArrivalSpec) -> Self {
        self.arrival = Some(arrival);
        self
    }

    /// Declares an open-loop client population for the event-heap
    /// scheduler (default: none). Requires [`ScenarioBuilder::arrival`].
    pub fn open_loop(mut self, clients: u64) -> Self {
        self.open_loop = Some(OpenLoopSpec { clients });
        self
    }

    /// Sets the scenario's preferred execution mode (default: caller
    /// decides).
    pub fn mode(mut self, mode: ModePreference) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Sets the scenario's preferred measurement clock (default: caller
    /// decides, which means the deterministic virtual clock).
    pub fn clock(mut self, clock: ClockMode) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Sets how online retraining work is scheduled (default: foreground).
    pub fn online_train(mut self, mode: OnlineTrainMode) -> Self {
        self.online_train = mode;
        self
    }

    /// Attaches a deterministic fault-injection plan (default: none). The
    /// plan is validated against the workload's phases on build.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Assembles and validates the scenario. Errors if the dataset or
    /// workload is missing, or if any field fails [`Scenario::validate`].
    #[allow(deprecated)] // the builder is the one sanctioned literal constructor
    pub fn build(self) -> Result<Scenario> {
        let dataset = self.dataset.ok_or_else(|| {
            BenchError::InvalidScenario(format!("scenario '{}' has no dataset", self.name))
        })?;
        let workload = self.workload.ok_or_else(|| {
            BenchError::InvalidScenario(format!("scenario '{}' has no workload", self.name))
        })?;
        let scenario = Scenario {
            name: self.name,
            dataset,
            workload,
            train_budget: self.train_budget,
            sla: self.sla,
            work_units_per_second: self.work_units_per_second,
            maintenance_every: self.maintenance_every,
            holdout: self.holdout,
            arrival: self.arrival,
            open_loop: self.open_loop,
            mode: self.mode,
            clock: self.clock,
            online_train: self.online_train,
            faults: self.faults,
            raw: (),
        };
        scenario.validate()?;
        Ok(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_spec_builds() {
        let spec = DatasetSpec {
            distribution: KeyDistribution::Uniform,
            key_range: (0, 100_000),
            size: 5000,
            seed: 1,
        };
        let d = spec.build().unwrap();
        assert_eq!(d.len(), 5000);
    }

    #[test]
    fn two_phase_shift_valid() {
        let s = Scenario::two_phase_shift(
            "shift",
            KeyDistribution::Uniform,
            KeyDistribution::Zipf { theta: 1.1 },
            1000,
            500,
            7,
        )
        .unwrap();
        s.validate().unwrap();
        assert_eq!(s.workload.phases().len(), 2);
        assert_eq!(s.workload.total_ops(), 1000);
    }

    #[test]
    fn specialization_sweep_valid() {
        let s = Scenario::specialization_sweep(
            "sweep",
            vec![
                KeyDistribution::Uniform,
                KeyDistribution::Zipf { theta: 0.8 },
                KeyDistribution::Zipf { theta: 1.4 },
            ],
            1000,
            200,
            OperationMix::ycsb_c(),
            3,
        )
        .unwrap();
        s.validate().unwrap();
        assert_eq!(s.workload.phases().len(), 3);
    }

    #[test]
    fn builder_applies_defaults_and_validates() {
        let workload = PhasedWorkload::single(
            WorkloadPhase::new(
                "steady",
                KeyDistribution::Uniform,
                (0, 1_000_000),
                OperationMix::ycsb_c(),
                500,
            ),
            3,
        )
        .unwrap();
        let s = Scenario::builder("built")
            .dataset(KeyDistribution::Uniform, (0, 1_000_000), 1_000, 3)
            .workload(workload.clone())
            .build()
            .unwrap();
        assert_eq!(s.maintenance_every, 64);
        assert_eq!(s.work_units_per_second, 1_000_000.0);
        assert!(s.arrival.is_none());

        // Missing pieces fail at build, not mid-run.
        assert!(Scenario::builder("no-dataset")
            .workload(workload.clone())
            .build()
            .is_err());
        assert!(Scenario::builder("no-workload")
            .dataset(KeyDistribution::Uniform, (0, 1_000), 10, 1)
            .build()
            .is_err());
        // Invalid settings are rejected by validate-on-build.
        assert!(Scenario::builder("bad-rate")
            .dataset(KeyDistribution::Uniform, (0, 1_000), 10, 1)
            .workload(workload)
            .work_units_per_second(0.0)
            .build()
            .is_err());
    }

    #[test]
    fn open_loop_spec_requires_arrival_and_clients() {
        let base = Scenario::two_phase_shift(
            "ol",
            KeyDistribution::Uniform,
            KeyDistribution::Uniform,
            100,
            10,
            1,
        )
        .unwrap();
        let mut s = base.clone();
        s.open_loop = Some(OpenLoopSpec { clients: 100 });
        assert!(s.validate().is_err(), "open_loop without arrival");
        s.arrival = Some(ArrivalSpec {
            process: ArrivalProcess::Poisson { rate: 1_000.0 },
            modulation: LoadModulation::Constant,
            seed: 1,
        });
        s.validate().unwrap();
        s.open_loop = Some(OpenLoopSpec { clients: 0 });
        assert!(s.validate().is_err(), "zero clients");
        let mut m = base.clone();
        m.mode = Some(ModePreference::OpenLoop);
        assert!(m.validate().is_err(), "open-loop mode without arrival");
        m.mode = Some(ModePreference::Sharded);
        m.validate().unwrap();
        assert_eq!(
            ModePreference::parse("open-loop"),
            Some(ModePreference::OpenLoop)
        );
        assert_eq!(ModePreference::parse("bogus"), None);
        assert_eq!(ModePreference::Shared.as_str(), "shared");
    }

    #[test]
    fn fault_plans_are_validated() {
        use crate::faults::{FaultPlan, FaultSpec};
        let mut s = Scenario::two_phase_shift(
            "faulted",
            KeyDistribution::Uniform,
            KeyDistribution::Uniform,
            100,
            10,
            1,
        )
        .unwrap();
        s.faults = Some(FaultPlan {
            seed: 1,
            policy: Default::default(),
            faults: vec![FaultSpec::TransientErrors {
                phase: None,
                rate: 0.1,
            }],
        });
        s.validate().unwrap();
        s.faults = Some(FaultPlan {
            seed: 1,
            policy: Default::default(),
            faults: vec![FaultSpec::Stall {
                phase: 0,
                from_op: 5,
                ops: 10,
                duration: 0.1,
            }],
        });
        assert!(s.validate().is_err(), "stall window crosses phase boundary");
    }

    #[test]
    fn validation_rejects_bad_config() {
        let mut s = Scenario::two_phase_shift(
            "s",
            KeyDistribution::Uniform,
            KeyDistribution::Uniform,
            100,
            10,
            1,
        )
        .unwrap();
        s.work_units_per_second = 0.0;
        assert!(s.validate().is_err());
        s.work_units_per_second = 1.0;
        s.maintenance_every = 0;
        assert!(s.validate().is_err());
        s.maintenance_every = 10;
        s.dataset.size = 0;
        assert!(s.validate().is_err());
        assert!(
            Scenario::specialization_sweep("x", vec![], 10, 10, OperationMix::ycsb_c(), 1).is_err()
        );
    }
}
