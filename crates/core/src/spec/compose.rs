//! Drift composers: high-level phase generators that expand to concrete
//! phase lists.
//!
//! NeurBench-style parameterized drift: instead of hand-writing N phases,
//! a spec states the *shape* of the drift (`diurnal`, `burst`,
//! `gradual_shift`, `growing_skew`) and the composer unrolls it into
//! [`WorkloadPhase`]s joined by [`TransitionKind`]s. Expansion happens at
//! parse time and is pure arithmetic over a virtual clock (step midpoints),
//! so a composed scenario is indistinguishable from one whose phases were
//! written out by hand — the run-time driver never knows composers exist.
//! See DESIGN.md ("Parse-time composer expansion") for why.
//!
//! Composers return plain `String` reasons on invalid parameters; the
//! parser attaches the source position to produce a
//! [`SpecError`](super::SpecError).

use lsbench_workload::keygen::KeyDistribution;
use lsbench_workload::ops::OperationMix;
use lsbench_workload::phases::{TransitionKind, WorkloadPhase};

/// An expanded composer: the concrete phases and the transitions *between*
/// them (`transitions.len() == phases.len() - 1`).
pub type Expansion = (Vec<WorkloadPhase>, Vec<TransitionKind>);

/// Linear interpolation position of step `i` among `steps` (0 at the first
/// step, 1 at the last; 0 for a single step).
fn lerp_t(i: u64, steps: u64) -> f64 {
    if steps <= 1 {
        0.0
    } else {
        i as f64 / (steps - 1) as f64
    }
}

fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Internal transitions for a composer: abrupt by default, or gradual with
/// the given `smooth` window.
fn internal_transitions(count: usize, smooth: Option<f64>) -> Vec<TransitionKind> {
    let kind = match smooth {
        Some(window) => TransitionKind::Gradual { window },
        None => TransitionKind::Abrupt,
    };
    vec![kind; count]
}

fn check_steps(steps: u64, min: u64) -> Result<(), String> {
    if steps < min {
        Err(format!("needs at least {min} steps, got {steps}"))
    } else if steps > 100_000 {
        Err(format!("{steps} steps is unreasonably many (max 100000)"))
    } else {
        Ok(())
    }
}

fn check_ops(ops_per_step: u64) -> Result<(), String> {
    if ops_per_step == 0 {
        Err("ops_per_step must be positive".to_string())
    } else {
        Ok(())
    }
}

/// `diurnal { period, amplitude }`: a day/night load cycle.
///
/// Expands to `steps` phases over one shared distribution whose open-loop
/// [`concurrency_burst`](WorkloadPhase::concurrency_burst) follows a
/// sinusoid sampled at each step's virtual midpoint:
/// `1 + amplitude · sin(2π · (i + 0.5) / period)`. With `amplitude < 1`
/// the factor stays positive, so every expanded phase validates.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalComposer {
    /// Phase-name prefix (phases are `{name}-0`, `{name}-1`, …).
    pub name: String,
    /// Number of phases to expand to.
    pub steps: u64,
    /// Operations per expanded phase.
    pub ops_per_step: u64,
    /// Cycle length in steps (one full sinusoid per `period` steps).
    pub period: f64,
    /// Relative swing of the load factor, in `[0, 1)`.
    pub amplitude: f64,
    /// Key distribution shared by every step.
    pub distribution: KeyDistribution,
    /// Key range shared by every step.
    pub key_range: (u64, u64),
    /// Operation mix shared by every step.
    pub mix: OperationMix,
}

impl DiurnalComposer {
    /// Expands the composer. See the type-level docs for the schedule.
    pub fn expand(&self) -> Result<Expansion, String> {
        check_steps(self.steps, 1)?;
        check_ops(self.ops_per_step)?;
        if !(self.period > 0.0 && self.period.is_finite()) {
            return Err("period must be positive and finite".to_string());
        }
        if !(0.0..1.0).contains(&self.amplitude) {
            return Err("amplitude must be in [0, 1)".to_string());
        }
        let phases = (0..self.steps)
            .map(|i| {
                let t = (i as f64 + 0.5) / self.period;
                let factor = 1.0 + self.amplitude * (2.0 * std::f64::consts::PI * t).sin();
                WorkloadPhase::new(
                    format!("{}-{i}", self.name),
                    self.distribution.clone(),
                    self.key_range,
                    self.mix.clone(),
                    self.ops_per_step,
                )
                .with_concurrency_burst(factor)
            })
            .collect::<Vec<_>>();
        let transitions = internal_transitions(phases.len() - 1, None);
        Ok((phases, transitions))
    }
}

/// `burst { at, factor, width }`: a flash crowd.
///
/// Expands to `steps` phases; the `width` phases starting at step `at`
/// carry `concurrency_burst = factor`, the rest run at 1.0.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstComposer {
    /// Phase-name prefix.
    pub name: String,
    /// Number of phases to expand to.
    pub steps: u64,
    /// Operations per expanded phase.
    pub ops_per_step: u64,
    /// First step of the burst (0-based).
    pub at: u64,
    /// Burst duration in steps.
    pub width: u64,
    /// Load multiplier during the burst.
    pub factor: f64,
    /// Key distribution shared by every step.
    pub distribution: KeyDistribution,
    /// Key range shared by every step.
    pub key_range: (u64, u64),
    /// Operation mix shared by every step.
    pub mix: OperationMix,
}

impl BurstComposer {
    /// Expands the composer. See the type-level docs for the schedule.
    pub fn expand(&self) -> Result<Expansion, String> {
        check_steps(self.steps, 1)?;
        check_ops(self.ops_per_step)?;
        if self.width == 0 {
            return Err("width must be at least 1 step".to_string());
        }
        if self
            .at
            .checked_add(self.width)
            .is_none_or(|e| e > self.steps)
        {
            return Err(format!(
                "burst [{}, {}) runs past the last step ({})",
                self.at,
                self.at.saturating_add(self.width),
                self.steps
            ));
        }
        if !(self.factor > 0.0 && self.factor.is_finite()) {
            return Err("factor must be positive and finite".to_string());
        }
        let phases = (0..self.steps)
            .map(|i| {
                let in_burst = i >= self.at && i < self.at + self.width;
                WorkloadPhase::new(
                    format!("{}-{i}", self.name),
                    self.distribution.clone(),
                    self.key_range,
                    self.mix.clone(),
                    self.ops_per_step,
                )
                .with_concurrency_burst(if in_burst { self.factor } else { 1.0 })
            })
            .collect::<Vec<_>>();
        let transitions = internal_transitions(phases.len() - 1, None);
        Ok((phases, transitions))
    }
}

/// Interpolates two same-shape distributions at `t ∈ [0, 1]`.
///
/// Every numeric parameter is lerped; the integer `clusters` parameter is
/// lerped and rounded. Mismatched shapes are an error — a jump between
/// shapes is what `transition = "gradual"` on an explicit phase is for.
pub fn interpolate_distribution(
    from: &KeyDistribution,
    to: &KeyDistribution,
    t: f64,
) -> Result<KeyDistribution, String> {
    use KeyDistribution as D;
    match (from, to) {
        (D::Uniform, D::Uniform) => Ok(D::Uniform),
        (D::Zipf { theta: a }, D::Zipf { theta: b }) => Ok(D::Zipf {
            theta: lerp(*a, *b, t),
        }),
        (
            D::Normal {
                center: c1,
                std_frac: s1,
            },
            D::Normal {
                center: c2,
                std_frac: s2,
            },
        ) => Ok(D::Normal {
            center: lerp(*c1, *c2, t),
            std_frac: lerp(*s1, *s2, t),
        }),
        (D::LogNormal { mu: m1, sigma: s1 }, D::LogNormal { mu: m2, sigma: s2 }) => {
            Ok(D::LogNormal {
                mu: lerp(*m1, *m2, t),
                sigma: lerp(*s1, *s2, t),
            })
        }
        (
            D::Hotspot {
                hot_span: h1,
                hot_fraction: f1,
            },
            D::Hotspot {
                hot_span: h2,
                hot_fraction: f2,
            },
        ) => Ok(D::Hotspot {
            hot_span: lerp(*h1, *h2, t),
            hot_fraction: lerp(*f1, *f2, t),
        }),
        (
            D::Clustered {
                clusters: c1,
                cluster_std_frac: s1,
            },
            D::Clustered {
                clusters: c2,
                cluster_std_frac: s2,
            },
        ) => Ok(D::Clustered {
            clusters: lerp(*c1 as f64, *c2 as f64, t).round().max(1.0) as usize,
            cluster_std_frac: lerp(*s1, *s2, t),
        }),
        (D::SequentialNoise { noise_frac: n1 }, D::SequentialNoise { noise_frac: n2 }) => {
            Ok(D::SequentialNoise {
                noise_frac: lerp(*n1, *n2, t),
            })
        }
        _ => Err(format!(
            "cannot interpolate '{}' into '{}' (shapes must match; use an explicit phase with \
             transition = \"gradual\" for cross-shape drift)",
            from.canonical_name(),
            to.canonical_name()
        )),
    }
}

/// `gradual_shift { from, to, steps }`: piecewise drift between two
/// same-shape distributions.
///
/// Expands to `steps` phases whose distribution parameters are linearly
/// interpolated from `from` (step 0) to `to` (last step). Joins between
/// steps are abrupt by default — many small abrupt steps approximate a
/// continuous drift — or gradual with the `smooth` window.
#[derive(Debug, Clone, PartialEq)]
pub struct GradualShiftComposer {
    /// Phase-name prefix.
    pub name: String,
    /// Number of phases to expand to (at least 2).
    pub steps: u64,
    /// Operations per expanded phase.
    pub ops_per_step: u64,
    /// Starting distribution.
    pub from: KeyDistribution,
    /// Final distribution (same shape as `from`).
    pub to: KeyDistribution,
    /// Gradual window for the joins between steps (`None` = abrupt).
    pub smooth: Option<f64>,
    /// Key range shared by every step.
    pub key_range: (u64, u64),
    /// Operation mix shared by every step.
    pub mix: OperationMix,
}

impl GradualShiftComposer {
    /// Expands the composer. See the type-level docs for the schedule.
    pub fn expand(&self) -> Result<Expansion, String> {
        check_steps(self.steps, 2)?;
        check_ops(self.ops_per_step)?;
        let phases = (0..self.steps)
            .map(|i| {
                let d = interpolate_distribution(&self.from, &self.to, lerp_t(i, self.steps))?;
                Ok(WorkloadPhase::new(
                    format!("{}-{i}", self.name),
                    d,
                    self.key_range,
                    self.mix.clone(),
                    self.ops_per_step,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let transitions = internal_transitions(phases.len() - 1, self.smooth);
        Ok((phases, transitions))
    }
}

/// `growing_skew { start_theta, end_theta }`: access skew that tightens
/// (or relaxes) over time.
///
/// Expands to `steps` zipfian phases with `theta` linearly interpolated —
/// the canonical "a hot set emerges" drift for learned structures.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowingSkewComposer {
    /// Phase-name prefix.
    pub name: String,
    /// Number of phases to expand to (at least 2).
    pub steps: u64,
    /// Operations per expanded phase.
    pub ops_per_step: u64,
    /// Zipf theta of the first step.
    pub start_theta: f64,
    /// Zipf theta of the last step.
    pub end_theta: f64,
    /// Gradual window for the joins between steps (`None` = abrupt).
    pub smooth: Option<f64>,
    /// Key range shared by every step.
    pub key_range: (u64, u64),
    /// Operation mix shared by every step.
    pub mix: OperationMix,
}

impl GrowingSkewComposer {
    /// Expands the composer. See the type-level docs for the schedule.
    pub fn expand(&self) -> Result<Expansion, String> {
        check_steps(self.steps, 2)?;
        check_ops(self.ops_per_step)?;
        for (label, theta) in [
            ("start_theta", self.start_theta),
            ("end_theta", self.end_theta),
        ] {
            if !(theta > 0.0 && theta.is_finite()) {
                return Err(format!("{label} must be positive and finite"));
            }
        }
        let phases = (0..self.steps)
            .map(|i| {
                let theta = lerp(self.start_theta, self.end_theta, lerp_t(i, self.steps));
                WorkloadPhase::new(
                    format!("{}-{i}", self.name),
                    KeyDistribution::Zipf { theta },
                    self.key_range,
                    self.mix.clone(),
                    self.ops_per_step,
                )
            })
            .collect::<Vec<_>>();
        let transitions = internal_transitions(phases.len() - 1, self.smooth);
        Ok((phases, transitions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RANGE: (u64, u64) = (0, 1_000_000);

    #[test]
    fn diurnal_cycle_is_sinusoidal_and_positive() {
        let c = DiurnalComposer {
            name: "day".to_string(),
            steps: 12,
            ops_per_step: 100,
            period: 12.0,
            amplitude: 0.9,
            distribution: KeyDistribution::Uniform,
            key_range: RANGE,
            mix: OperationMix::ycsb_c(),
        };
        let (phases, transitions) = c.expand().unwrap();
        assert_eq!(phases.len(), 12);
        assert_eq!(transitions.len(), 11);
        assert!(phases.iter().all(|p| p.concurrency_burst > 0.0));
        // First half of the cycle is above baseline, second half below.
        assert!(phases[2].concurrency_burst > 1.5);
        assert!(phases[8].concurrency_burst < 0.5);
        // Deterministic: same inputs, same expansion.
        assert_eq!(c.expand().unwrap(), (phases, transitions));
    }

    #[test]
    fn burst_window_carries_factor() {
        let c = BurstComposer {
            name: "crowd".to_string(),
            steps: 6,
            ops_per_step: 50,
            at: 2,
            width: 2,
            factor: 8.0,
            distribution: KeyDistribution::Zipf { theta: 0.99 },
            key_range: RANGE,
            mix: OperationMix::ycsb_b(),
        };
        let (phases, _) = c.expand().unwrap();
        let factors: Vec<f64> = phases.iter().map(|p| p.concurrency_burst).collect();
        assert_eq!(factors, [1.0, 1.0, 8.0, 8.0, 1.0, 1.0]);
        // Out-of-range burst rejected.
        let bad = BurstComposer { at: 5, ..c };
        assert!(bad.expand().is_err());
    }

    #[test]
    fn gradual_shift_interpolates_and_rejects_shape_jumps() {
        let c = GradualShiftComposer {
            name: "drift".to_string(),
            steps: 5,
            ops_per_step: 10,
            from: KeyDistribution::Normal {
                center: 0.1,
                std_frac: 0.05,
            },
            to: KeyDistribution::Normal {
                center: 0.9,
                std_frac: 0.01,
            },
            smooth: Some(0.5),
            key_range: RANGE,
            mix: OperationMix::ycsb_c(),
        };
        let (phases, transitions) = c.expand().unwrap();
        let KeyDistribution::Normal { center, .. } = phases[2].distribution else {
            panic!("shape preserved");
        };
        assert_eq!(center, 0.5);
        assert!(transitions
            .iter()
            .all(|t| *t == TransitionKind::Gradual { window: 0.5 }));
        let bad = GradualShiftComposer {
            to: KeyDistribution::Uniform,
            ..c
        };
        assert!(bad.expand().unwrap_err().contains("cannot interpolate"));
    }

    #[test]
    fn growing_skew_hits_both_endpoints() {
        let c = GrowingSkewComposer {
            name: "skew".to_string(),
            steps: 9,
            ops_per_step: 10,
            start_theta: 0.6,
            end_theta: 1.4,
            smooth: None,
            key_range: RANGE,
            mix: OperationMix::ycsb_c(),
        };
        let (phases, transitions) = c.expand().unwrap();
        let thetas: Vec<f64> = phases
            .iter()
            .map(|p| match p.distribution {
                KeyDistribution::Zipf { theta } => theta,
                _ => panic!("all phases zipf"),
            })
            .collect();
        assert_eq!(thetas[0], 0.6);
        assert_eq!(thetas[8], 1.4);
        assert!(thetas.windows(2).all(|w| w[0] < w[1]));
        assert!(transitions.iter().all(|t| *t == TransitionKind::Abrupt));
    }
}
