//! Drift composers: high-level phase generators that expand to concrete
//! phase lists.
//!
//! NeurBench-style parameterized drift: instead of hand-writing N phases,
//! a spec states the *shape* of the drift and the composer unrolls it into
//! [`WorkloadPhase`]s joined by [`TransitionKind`]s (the canonical table
//! of all seven composer blocks lives in the [`spec`](crate::spec)
//! module docs). Expansion happens at parse time and is pure arithmetic
//! over a virtual clock (step midpoints), so a composed scenario is
//! indistinguishable from one whose phases were written out by hand — the
//! run-time driver never knows composers exist. See DESIGN.md
//! ("Parse-time composer expansion") for why.
//!
//! Every composer in this file expands through the shared
//! [`DriftAxis`] primitive from the sweep subsystem
//! ([`crate::sweep::drift`]): the composer states the α = 0 and α = 1
//! endpoint phases and a per-step intensity schedule, and the axis does
//! the interpolation. The axis's interior arithmetic is the same
//! `a + (b − a) · t` the composers used before the refactor and its
//! endpoints are clamped to exact clones, so existing spec expansions are
//! preserved bit for bit (DESIGN.md §13).
//!
//! Composers return plain `String` reasons on invalid parameters; the
//! parser attaches the source position to produce a
//! [`SpecError`](super::SpecError).

use crate::sweep::drift::{lerp_t, DriftAxis};
use lsbench_workload::keygen::KeyDistribution;
use lsbench_workload::ops::OperationMix;
use lsbench_workload::phases::{TransitionKind, WorkloadPhase};

/// Re-exported from [`crate::sweep::drift`], where the interpolation
/// arithmetic moved when the composers were refactored onto [`DriftAxis`].
pub use crate::sweep::drift::interpolate_distribution;

/// An expanded composer: the concrete phases and the transitions *between*
/// them (`transitions.len() == phases.len() - 1`).
pub type Expansion = (Vec<WorkloadPhase>, Vec<TransitionKind>);

/// Internal transitions for a composer: abrupt by default, or gradual with
/// the given `smooth` window.
fn internal_transitions(count: usize, smooth: Option<f64>) -> Vec<TransitionKind> {
    let kind = match smooth {
        Some(window) => TransitionKind::Gradual { window },
        None => TransitionKind::Abrupt,
    };
    vec![kind; count]
}

fn check_steps(steps: u64, min: u64) -> Result<(), String> {
    if steps < min {
        Err(format!("needs at least {min} steps, got {steps}"))
    } else if steps > 100_000 {
        Err(format!("{steps} steps is unreasonably many (max 100000)"))
    } else {
        Ok(())
    }
}

fn check_ops(ops_per_step: u64) -> Result<(), String> {
    if ops_per_step == 0 {
        Err("ops_per_step must be positive".to_string())
    } else {
        Ok(())
    }
}

/// `diurnal { period, amplitude }`: a day/night load cycle.
///
/// Expands to `steps` phases over one shared distribution whose open-loop
/// [`concurrency_burst`](WorkloadPhase::concurrency_burst) follows a
/// sinusoid sampled at each step's virtual midpoint:
/// `1 + amplitude · sin(2π · (i + 0.5) / period)`. With `amplitude < 1`
/// the factor stays positive, so every expanded phase validates.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalComposer {
    /// Phase-name prefix (phases are `{name}-0`, `{name}-1`, …).
    pub name: String,
    /// Number of phases to expand to.
    pub steps: u64,
    /// Operations per expanded phase.
    pub ops_per_step: u64,
    /// Cycle length in steps (one full sinusoid per `period` steps).
    pub period: f64,
    /// Relative swing of the load factor, in `[0, 1)`.
    pub amplitude: f64,
    /// Key distribution shared by every step.
    pub distribution: KeyDistribution,
    /// Key range shared by every step.
    pub key_range: (u64, u64),
    /// Operation mix shared by every step.
    pub mix: OperationMix,
}

impl DiurnalComposer {
    /// Expands the composer. See the type-level docs for the schedule.
    pub fn expand(&self) -> Result<Expansion, String> {
        check_steps(self.steps, 1)?;
        check_ops(self.ops_per_step)?;
        if !(self.period > 0.0 && self.period.is_finite()) {
            return Err("period must be positive and finite".to_string());
        }
        if !(0.0..1.0).contains(&self.amplitude) {
            return Err("amplitude must be in [0, 1)".to_string());
        }
        // Diurnal drift is pure load-shape drift: the distribution endpoint
        // is degenerate (base ≡ target) and the sinusoid modulates the
        // concurrency lever on top of the axis's α = 0 template.
        let template = WorkloadPhase::new(
            self.name.clone(),
            self.distribution.clone(),
            self.key_range,
            self.mix.clone(),
            self.ops_per_step,
        );
        let axis = DriftAxis::new(template.clone(), template)
            .expect("a degenerate axis between identical shapes always builds");
        let phases = (0..self.steps)
            .map(|i| {
                let t = (i as f64 + 0.5) / self.period;
                let factor = 1.0 + self.amplitude * (2.0 * std::f64::consts::PI * t).sin();
                let mut p = axis.at(0.0).with_concurrency_burst(factor);
                p.name = format!("{}-{i}", self.name);
                p
            })
            .collect::<Vec<_>>();
        let transitions = internal_transitions(phases.len() - 1, None);
        Ok((phases, transitions))
    }
}

/// `burst { at, factor, width }`: a flash crowd.
///
/// Expands to `steps` phases; the `width` phases starting at step `at`
/// carry `concurrency_burst = factor`, the rest run at 1.0.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstComposer {
    /// Phase-name prefix.
    pub name: String,
    /// Number of phases to expand to.
    pub steps: u64,
    /// Operations per expanded phase.
    pub ops_per_step: u64,
    /// First step of the burst (0-based).
    pub at: u64,
    /// Burst duration in steps.
    pub width: u64,
    /// Load multiplier during the burst.
    pub factor: f64,
    /// Key distribution shared by every step.
    pub distribution: KeyDistribution,
    /// Key range shared by every step.
    pub key_range: (u64, u64),
    /// Operation mix shared by every step.
    pub mix: OperationMix,
}

impl BurstComposer {
    /// Expands the composer. See the type-level docs for the schedule.
    pub fn expand(&self) -> Result<Expansion, String> {
        check_steps(self.steps, 1)?;
        check_ops(self.ops_per_step)?;
        if self.width == 0 {
            return Err("width must be at least 1 step".to_string());
        }
        if self
            .at
            .checked_add(self.width)
            .is_none_or(|e| e > self.steps)
        {
            return Err(format!(
                "burst [{}, {}) runs past the last step ({})",
                self.at,
                self.at.saturating_add(self.width),
                self.steps
            ));
        }
        if !(self.factor > 0.0 && self.factor.is_finite()) {
            return Err("factor must be positive and finite".to_string());
        }
        // A flash crowd is a two-point axis — calm (α = 0) vs. surge
        // (α = 1) — sampled only at its exact endpoints per step.
        let calm = WorkloadPhase::new(
            self.name.clone(),
            self.distribution.clone(),
            self.key_range,
            self.mix.clone(),
            self.ops_per_step,
        );
        let surge = calm.clone().with_concurrency_burst(self.factor);
        let axis = DriftAxis::new(calm, surge)
            .expect("a burst axis between identical shapes always builds");
        let phases = (0..self.steps)
            .map(|i| {
                let in_burst = i >= self.at && i < self.at + self.width;
                let mut p = axis.at(if in_burst { 1.0 } else { 0.0 });
                p.name = format!("{}-{i}", self.name);
                p
            })
            .collect::<Vec<_>>();
        let transitions = internal_transitions(phases.len() - 1, None);
        Ok((phases, transitions))
    }
}

/// `gradual_shift { from, to, steps }`: piecewise drift between two
/// same-shape distributions.
///
/// Expands to `steps` phases whose distribution parameters are linearly
/// interpolated from `from` (step 0) to `to` (last step). Joins between
/// steps are abrupt by default — many small abrupt steps approximate a
/// continuous drift — or gradual with the `smooth` window.
#[derive(Debug, Clone, PartialEq)]
pub struct GradualShiftComposer {
    /// Phase-name prefix.
    pub name: String,
    /// Number of phases to expand to (at least 2).
    pub steps: u64,
    /// Operations per expanded phase.
    pub ops_per_step: u64,
    /// Starting distribution.
    pub from: KeyDistribution,
    /// Final distribution (same shape as `from`).
    pub to: KeyDistribution,
    /// Gradual window for the joins between steps (`None` = abrupt).
    pub smooth: Option<f64>,
    /// Key range shared by every step.
    pub key_range: (u64, u64),
    /// Operation mix shared by every step.
    pub mix: OperationMix,
}

impl GradualShiftComposer {
    /// Expands the composer. See the type-level docs for the schedule.
    pub fn expand(&self) -> Result<Expansion, String> {
        check_steps(self.steps, 2)?;
        check_ops(self.ops_per_step)?;
        let endpoint = |d: &KeyDistribution| {
            WorkloadPhase::new(
                self.name.clone(),
                d.clone(),
                self.key_range,
                self.mix.clone(),
                self.ops_per_step,
            )
        };
        let axis = DriftAxis::new(endpoint(&self.from), endpoint(&self.to))?;
        let phases = (0..self.steps)
            .map(|i| {
                let mut p = axis.at(lerp_t(i, self.steps));
                p.name = format!("{}-{i}", self.name);
                p
            })
            .collect::<Vec<_>>();
        let transitions = internal_transitions(phases.len() - 1, self.smooth);
        Ok((phases, transitions))
    }
}

/// `growing_skew { start_theta, end_theta }`: access skew that tightens
/// (or relaxes) over time.
///
/// Expands to `steps` zipfian phases with `theta` linearly interpolated —
/// the canonical "a hot set emerges" drift for learned structures.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowingSkewComposer {
    /// Phase-name prefix.
    pub name: String,
    /// Number of phases to expand to (at least 2).
    pub steps: u64,
    /// Operations per expanded phase.
    pub ops_per_step: u64,
    /// Zipf theta of the first step.
    pub start_theta: f64,
    /// Zipf theta of the last step.
    pub end_theta: f64,
    /// Gradual window for the joins between steps (`None` = abrupt).
    pub smooth: Option<f64>,
    /// Key range shared by every step.
    pub key_range: (u64, u64),
    /// Operation mix shared by every step.
    pub mix: OperationMix,
}

impl GrowingSkewComposer {
    /// Expands the composer. See the type-level docs for the schedule.
    pub fn expand(&self) -> Result<Expansion, String> {
        check_steps(self.steps, 2)?;
        check_ops(self.ops_per_step)?;
        for (label, theta) in [
            ("start_theta", self.start_theta),
            ("end_theta", self.end_theta),
        ] {
            if !(theta > 0.0 && theta.is_finite()) {
                return Err(format!("{label} must be positive and finite"));
            }
        }
        let endpoint = |theta: f64| {
            WorkloadPhase::new(
                self.name.clone(),
                KeyDistribution::Zipf { theta },
                self.key_range,
                self.mix.clone(),
                self.ops_per_step,
            )
        };
        let axis = DriftAxis::new(endpoint(self.start_theta), endpoint(self.end_theta))
            .expect("two zipf endpoints always share a shape");
        let phases = (0..self.steps)
            .map(|i| {
                let mut p = axis.at(lerp_t(i, self.steps));
                p.name = format!("{}-{i}", self.name);
                p
            })
            .collect::<Vec<_>>();
        let transitions = internal_transitions(phases.len() - 1, self.smooth);
        Ok((phases, transitions))
    }
}

/// `drift { alpha, from, to, steps }`: the sweep subsystem's α axis
/// exposed directly in spec files.
///
/// Expands to `steps` phases that ramp the drift intensity linearly from
/// 0 (the `from` distribution, exactly) up to `alpha` — step `i` sits at
/// `α_i = alpha · i / (steps − 1)` on the [`DriftAxis`] between `from`
/// and `to`. `alpha = 1` reproduces `[[gradual_shift]]` bit for bit;
/// smaller values stop the drift partway, which is what a ladder of
/// `[[drift]]` specs at increasing `alpha` sweeps over.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftComposer {
    /// Phase-name prefix.
    pub name: String,
    /// Number of phases to expand to (at least 2).
    pub steps: u64,
    /// Operations per expanded phase.
    pub ops_per_step: u64,
    /// Starting distribution (the α = 0 anchor).
    pub from: KeyDistribution,
    /// Full-drift distribution (reached only when `alpha = 1`).
    pub to: KeyDistribution,
    /// Drift intensity the last step reaches, in `[0, 1]`.
    pub alpha: f64,
    /// Gradual window for the joins between steps (`None` = abrupt).
    pub smooth: Option<f64>,
    /// Key range shared by every step.
    pub key_range: (u64, u64),
    /// Operation mix shared by every step.
    pub mix: OperationMix,
}

impl DriftComposer {
    /// Expands the composer. See the type-level docs for the schedule.
    pub fn expand(&self) -> Result<Expansion, String> {
        check_steps(self.steps, 2)?;
        check_ops(self.ops_per_step)?;
        if !(self.alpha.is_finite() && (0.0..=1.0).contains(&self.alpha)) {
            return Err(format!("alpha must be in [0, 1], got {}", self.alpha));
        }
        let endpoint = |d: &KeyDistribution| {
            WorkloadPhase::new(
                self.name.clone(),
                d.clone(),
                self.key_range,
                self.mix.clone(),
                self.ops_per_step,
            )
        };
        let axis = DriftAxis::new(endpoint(&self.from), endpoint(&self.to))?;
        let phases = (0..self.steps)
            .map(|i| {
                let mut p = axis.at(self.alpha * lerp_t(i, self.steps));
                p.name = format!("{}-{i}", self.name);
                p
            })
            .collect::<Vec<_>>();
        let transitions = internal_transitions(phases.len() - 1, self.smooth);
        Ok((phases, transitions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RANGE: (u64, u64) = (0, 1_000_000);

    #[test]
    fn diurnal_cycle_is_sinusoidal_and_positive() {
        let c = DiurnalComposer {
            name: "day".to_string(),
            steps: 12,
            ops_per_step: 100,
            period: 12.0,
            amplitude: 0.9,
            distribution: KeyDistribution::Uniform,
            key_range: RANGE,
            mix: OperationMix::ycsb_c(),
        };
        let (phases, transitions) = c.expand().unwrap();
        assert_eq!(phases.len(), 12);
        assert_eq!(transitions.len(), 11);
        assert!(phases.iter().all(|p| p.concurrency_burst > 0.0));
        // First half of the cycle is above baseline, second half below.
        assert!(phases[2].concurrency_burst > 1.5);
        assert!(phases[8].concurrency_burst < 0.5);
        // Deterministic: same inputs, same expansion.
        assert_eq!(c.expand().unwrap(), (phases, transitions));
    }

    #[test]
    fn burst_window_carries_factor() {
        let c = BurstComposer {
            name: "crowd".to_string(),
            steps: 6,
            ops_per_step: 50,
            at: 2,
            width: 2,
            factor: 8.0,
            distribution: KeyDistribution::Zipf { theta: 0.99 },
            key_range: RANGE,
            mix: OperationMix::ycsb_b(),
        };
        let (phases, _) = c.expand().unwrap();
        let factors: Vec<f64> = phases.iter().map(|p| p.concurrency_burst).collect();
        assert_eq!(factors, [1.0, 1.0, 8.0, 8.0, 1.0, 1.0]);
        // Out-of-range burst rejected.
        let bad = BurstComposer { at: 5, ..c };
        assert!(bad.expand().is_err());
    }

    #[test]
    fn gradual_shift_interpolates_and_rejects_shape_jumps() {
        let c = GradualShiftComposer {
            name: "drift".to_string(),
            steps: 5,
            ops_per_step: 10,
            from: KeyDistribution::Normal {
                center: 0.1,
                std_frac: 0.05,
            },
            to: KeyDistribution::Normal {
                center: 0.9,
                std_frac: 0.01,
            },
            smooth: Some(0.5),
            key_range: RANGE,
            mix: OperationMix::ycsb_c(),
        };
        let (phases, transitions) = c.expand().unwrap();
        let KeyDistribution::Normal { center, .. } = phases[2].distribution else {
            panic!("shape preserved");
        };
        assert_eq!(center, 0.5);
        assert!(transitions
            .iter()
            .all(|t| *t == TransitionKind::Gradual { window: 0.5 }));
        let bad = GradualShiftComposer {
            to: KeyDistribution::Uniform,
            ..c
        };
        assert!(bad.expand().unwrap_err().contains("cannot interpolate"));
    }

    #[test]
    fn growing_skew_hits_both_endpoints() {
        let c = GrowingSkewComposer {
            name: "skew".to_string(),
            steps: 9,
            ops_per_step: 10,
            start_theta: 0.6,
            end_theta: 1.4,
            smooth: None,
            key_range: RANGE,
            mix: OperationMix::ycsb_c(),
        };
        let (phases, transitions) = c.expand().unwrap();
        let thetas: Vec<f64> = phases
            .iter()
            .map(|p| match p.distribution {
                KeyDistribution::Zipf { theta } => theta,
                _ => panic!("all phases zipf"),
            })
            .collect();
        assert_eq!(thetas[0], 0.6);
        assert_eq!(thetas[8], 1.4);
        assert!(thetas.windows(2).all(|w| w[0] < w[1]));
        assert!(transitions.iter().all(|t| *t == TransitionKind::Abrupt));
    }

    fn drift_composer(alpha: f64) -> DriftComposer {
        DriftComposer {
            name: "d".to_string(),
            steps: 5,
            ops_per_step: 10,
            from: KeyDistribution::Zipf { theta: 0.5 },
            to: KeyDistribution::Zipf { theta: 1.3 },
            alpha,
            smooth: None,
            key_range: RANGE,
            mix: OperationMix::ycsb_c(),
        }
    }

    #[test]
    fn drift_at_zero_alpha_never_leaves_the_base_distribution() {
        let (phases, _) = drift_composer(0.0).expand().unwrap();
        assert!(phases
            .iter()
            .all(|p| p.distribution == KeyDistribution::Zipf { theta: 0.5 }));
    }

    #[test]
    fn drift_at_full_alpha_matches_gradual_shift_exactly() {
        let d = drift_composer(1.0);
        let g = GradualShiftComposer {
            name: d.name.clone(),
            steps: d.steps,
            ops_per_step: d.ops_per_step,
            from: d.from.clone(),
            to: d.to.clone(),
            smooth: d.smooth,
            key_range: d.key_range,
            mix: d.mix.clone(),
        };
        assert_eq!(d.expand().unwrap(), g.expand().unwrap());
    }

    #[test]
    fn drift_partial_alpha_stops_partway_and_hits_its_endpoint_exactly() {
        let (phases, _) = drift_composer(0.5).expand().unwrap();
        let theta_of = |p: &WorkloadPhase| match p.distribution {
            KeyDistribution::Zipf { theta } => theta,
            _ => panic!("all phases zipf"),
        };
        assert_eq!(theta_of(&phases[0]), 0.5);
        // The last step sits at α = 0.5 on the axis: lerp(0.5, 1.3, 0.5).
        assert!((theta_of(&phases[4]) - 0.9).abs() < 1e-12);
        let thetas: Vec<f64> = phases.iter().map(theta_of).collect();
        assert!(thetas.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn drift_rejects_out_of_range_alpha() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = drift_composer(bad).expand().unwrap_err();
            assert!(err.contains("alpha must be in [0, 1]"), "{err}");
        }
    }
}
