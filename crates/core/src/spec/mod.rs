//! The declarative scenario subsystem: spec language, drift composers,
//! and the scenario registry.
//!
//! The paper's Lesson 1 makes *dynamic scenarios* the core input of a
//! learned-systems benchmark — yet a scenario that only exists as a Rust
//! value can't be added without recompiling. This module makes scenarios
//! data: a small line-oriented TOML-subset (see the README's "Scenario
//! files" section for the grammar) compiles to the same validated
//! [`Scenario`](crate::scenario::Scenario) the builder produces, so a
//! scenario loaded from a file is *bit-identical* in behavior to the same
//! scenario constructed in code.
//!
//! Four layers:
//!
//! * [`parse`] — the parser + schema. Every rejection is a positioned
//!   [`SpecError`] (`line`, `field`, `reason`); malformed input never
//!   panics.
//! * [`compose`] — *drift composers*: high-level phase generators that
//!   expand into concrete phase lists at parse time, deterministically
//!   (virtual clock arithmetic + the spec seed — see DESIGN.md). The
//!   canonical composer table below is the single source of truth; other
//!   doc comments reference it rather than re-listing the set.
//! * [`render`] — the canonical renderer: [`render_scenario`] emits spec
//!   text that parses back to an equal scenario (`parse ∘ render = id`),
//!   which is how the built-in suite ships as `scenarios/*.spec`.
//! * [`registry`] — [`ScenarioRegistry`]: name → scenario resolution
//!   mirroring [`SutRegistry`](crate::sut_registry::SutRegistry), with
//!   uniform fallback to spec files on disk.
//!
//! # The seven parse-time drift composers
//!
//! | Block | Expands to | Drift shape |
//! |---|---|---|
//! | `[[diurnal]]` | `steps` phases | sinusoidal load swing (concurrency burst) over a fixed distribution |
//! | `[[burst]]` | `steps` phases | calm/surge alternation between two load levels |
//! | `[[gradual_shift]]` | `steps` phases | parameter interpolation from `from` to `to` at full intensity |
//! | `[[growing_skew]]` | `steps` phases | Zipf theta ramp (a `gradual_shift` specialized to skew) |
//! | `[[drift]]` | `steps` phases | `gradual_shift` scaled by an explicit intensity `alpha` ∈ \[0, 1\] |
//! | `[[templated_repetition]]` | template-driven phases | query-template popularity churn (PR-8 workload family) |
//! | `[[ledger]]` | growth-driven phases | append-heavy ledger growth (PR-8 workload family) |
//!
//! The first five route through the shared
//! [`DriftAxis`](crate::sweep::DriftAxis) primitive in [`crate::sweep`];
//! `drift(0)` is the base phase and `drift(1)` the target, exact by
//! construction. The last two wrap `lsbench_workload::families`
//! generators. The `lsbench sweep` ladder
//! ([`DriftLadder`](crate::sweep::DriftLadder)) reuses the same axis at
//! run time to grade whole scenarios by intensity.

pub mod compose;
pub mod parse;
pub mod registry;
pub mod render;

pub use compose::{
    BurstComposer, DiurnalComposer, DriftComposer, GradualShiftComposer, GrowingSkewComposer,
};
pub use parse::{parse_fault_plan, parse_scenario};
pub use registry::ScenarioRegistry;
pub use render::render_scenario;

/// A positioned scenario-spec error: which line, which field, and why.
///
/// `line` is 1-based; `0` marks a whole-file condition (e.g. an empty
/// spec). `field` names the offending key, section, or composer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based source line of the offending token (0 = whole file).
    pub line: usize,
    /// The key, section header, or composer the error is about.
    pub field: String,
    /// Human-readable explanation.
    pub reason: String,
}

impl SpecError {
    /// Convenience constructor.
    pub fn new(line: usize, field: impl Into<String>, reason: impl Into<String>) -> Self {
        SpecError {
            line,
            field: field.into(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}: {}", self.line, self.field, self.reason)
    }
}

impl std::error::Error for SpecError {}

impl From<SpecError> for crate::BenchError {
    fn from(e: SpecError) -> Self {
        crate::BenchError::InvalidScenario(format!("spec error: {e}"))
    }
}
