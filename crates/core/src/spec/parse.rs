//! The scenario-spec parser and schema.
//!
//! The input language is a line-oriented TOML subset (see the README's
//! "Scenario files" section for the full grammar): top-level `key = value`
//! pairs, `[section]` headers for singletons (`[dataset]`, `[run]`,
//! `[sla]`, `[arrival]`), and `[[block]]` headers for the ordered phase
//! chain: `[[phase]]`, `[[holdout]]`, the seven composer blocks
//! (`[[diurnal]]`, `[[burst]]`, `[[gradual_shift]]`, `[[growing_skew]]`,
//! `[[drift]]`, `[[templated_repetition]]`, `[[ledger]]` — the canonical
//! table lives in the [`spec`](crate::spec) module docs), and
//! fault-injection `[[fault]]` blocks.
//! Values are integers (decimal or `0x` hex), floats, `"strings"`,
//! booleans, and two-element integer arrays (`key_range = [lo, hi]`).
//!
//! The parser is hand-rolled — no external dependency — and compiles
//! straight to a validated [`Scenario`] through [`Scenario::builder`].
//! Every rejection is a positioned [`SpecError`]; malformed input must
//! never panic (property-tested in `tests/scenario_spec.rs`).

use super::compose::{
    BurstComposer, DiurnalComposer, DriftComposer, Expansion, GradualShiftComposer,
    GrowingSkewComposer,
};
use super::SpecError;
use crate::faults::{FaultPlan, FaultSpec, RetryPolicy};
use crate::metrics::sla::SlaPolicy;
use crate::scenario::{
    ArrivalSpec, ClockMode, DatasetSpec, ModePreference, OnlineTrainMode, Scenario,
};
use lsbench_workload::arrival::{ArrivalProcess, LoadModulation};
use lsbench_workload::families::{LedgerGrowth, TemplatedRepetition};
use lsbench_workload::keygen::{KeyDistribution, CANONICAL_DISTRIBUTIONS};
use lsbench_workload::ops::OperationMix;
use lsbench_workload::phases::{PhasedWorkload, TransitionKind, WorkloadPhase};

pub(crate) type SResult<T> = Result<T, SpecError>;

/// A zero-argument constructor for a preset [`OperationMix`].
pub type MixPreset = fn() -> OperationMix;

/// Operation-mix presets by spec name — `mix = "ycsb-c"` etc.
pub const MIX_PRESETS: &[(&str, MixPreset)] = &[
    ("ycsb-a", OperationMix::ycsb_a),
    ("ycsb-b", OperationMix::ycsb_b),
    ("ycsb-c", OperationMix::ycsb_c),
    ("ycsb-d", OperationMix::ycsb_d),
    ("ycsb-e", OperationMix::ycsb_e),
    ("range-heavy", OperationMix::range_heavy),
];

// ---------------------------------------------------------------------------
// Lexing: lines → sections of key/value entries.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Int(u64),
    Float(f64),
    Str(String),
    Bool(bool),
    Range(u64, u64),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bool(_) => "boolean",
            Value::Range(..) => "range array",
        }
    }
}

pub(crate) struct Section {
    /// Header name without brackets; `""` for the implicit root section.
    pub(crate) header: String,
    pub(crate) line: usize,
    entries: Vec<(String, Value, usize)>,
}

/// Strips a trailing comment (a `#` outside of double quotes).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_u64_token(tok: &str) -> Option<u64> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else if tok.chars().all(|c| c.is_ascii_digit()) && !tok.is_empty() {
        tok.parse().ok()
    } else {
        None
    }
}

fn parse_value(raw: &str, key: &str, line: usize) -> SResult<Value> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(SpecError::new(line, key, "missing value after '='"));
    }
    if let Some(rest) = raw.strip_prefix('"') {
        return match rest.strip_suffix('"') {
            Some(inner) if !inner.contains('"') => Ok(Value::Str(inner.to_string())),
            _ => Err(SpecError::new(
                line,
                key,
                "unterminated or malformed string",
            )),
        };
    }
    if raw == "true" {
        return Ok(Value::Bool(true));
    }
    if raw == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(rest) = raw.strip_prefix('[') {
        let Some(inner) = rest.strip_suffix(']') else {
            return Err(SpecError::new(
                line,
                key,
                "unterminated array (missing ']')",
            ));
        };
        let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
        let ints: Option<Vec<u64>> = parts.iter().map(|p| parse_u64_token(p)).collect();
        return match ints.as_deref() {
            Some([lo, hi]) => Ok(Value::Range(*lo, *hi)),
            _ => Err(SpecError::new(
                line,
                key,
                "arrays must hold exactly two non-negative integers: [lo, hi]",
            )),
        };
    }
    if let Some(v) = parse_u64_token(raw) {
        return Ok(Value::Int(v));
    }
    if let Ok(v) = raw.parse::<f64>() {
        if v.is_finite() {
            return Ok(Value::Float(v));
        }
        return Err(SpecError::new(
            line,
            key,
            "non-finite numbers are not allowed",
        ));
    }
    Err(SpecError::new(
        line,
        key,
        format!("unrecognized value '{raw}' (expected number, \"string\", boolean, or [lo, hi])"),
    ))
}

const SINGLE_SECTIONS: &[&str] = &["dataset", "run", "sla", "arrival", "open_loop"];
const MULTI_SECTIONS: &[&str] = &[
    "phase",
    "holdout",
    "diurnal",
    "burst",
    "gradual_shift",
    "growing_skew",
    "drift",
    "templated_repetition",
    "ledger",
    "fault",
];

pub(crate) fn lex(text: &str) -> SResult<Vec<Section>> {
    let mut sections = vec![Section {
        header: String::new(),
        line: 1,
        entries: Vec::new(),
    }];
    for (i, raw_line) in text.lines().enumerate() {
        let line = i + 1;
        let content = strip_comment(raw_line).trim();
        if content.is_empty() {
            continue;
        }
        if let Some(rest) = content.strip_prefix("[[") {
            let Some(name) = rest.strip_suffix("]]") else {
                return Err(SpecError::new(line, content, "malformed [[...]] header"));
            };
            let name = name.trim();
            if !MULTI_SECTIONS.contains(&name) {
                let hint = if SINGLE_SECTIONS.contains(&name) {
                    format!(" ('{name}' is a singleton: write [{name}])")
                } else {
                    format!(" (known blocks: {})", MULTI_SECTIONS.join(", "))
                };
                return Err(SpecError::new(
                    line,
                    name,
                    format!("unknown block [[{name}]]{hint}"),
                ));
            }
            sections.push(Section {
                header: name.to_string(),
                line,
                entries: Vec::new(),
            });
        } else if let Some(rest) = content.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(SpecError::new(line, content, "malformed [...] header"));
            };
            let name = name.trim();
            if !SINGLE_SECTIONS.contains(&name) {
                let hint = if MULTI_SECTIONS.contains(&name) {
                    format!(" ('{name}' repeats: write [[{name}]])")
                } else {
                    format!(" (known sections: {})", SINGLE_SECTIONS.join(", "))
                };
                return Err(SpecError::new(
                    line,
                    name,
                    format!("unknown section [{name}]{hint}"),
                ));
            }
            if sections.iter().any(|s| s.header == name) {
                return Err(SpecError::new(
                    line,
                    name,
                    format!("duplicate section [{name}]"),
                ));
            }
            sections.push(Section {
                header: name.to_string(),
                line,
                entries: Vec::new(),
            });
        } else if let Some(eq) = content.find('=') {
            let key = content[..eq].trim();
            if !is_ident(key) {
                return Err(SpecError::new(
                    line,
                    key,
                    "keys must be identifiers ([A-Za-z_][A-Za-z0-9_]*)",
                ));
            }
            let value = parse_value(&content[eq + 1..], key, line)?;
            let section = sections.last_mut().expect("root section always present");
            if section.entries.iter().any(|(k, _, _)| k == key) {
                return Err(SpecError::new(
                    line,
                    key,
                    format!("duplicate key '{key}' in this section"),
                ));
            }
            section.entries.push((key.to_string(), value, line));
        } else {
            return Err(SpecError::new(
                line,
                content,
                "expected 'key = value', a [section] header, or a comment",
            ));
        }
    }
    Ok(sections)
}

// ---------------------------------------------------------------------------
// Field access with consumption tracking.
// ---------------------------------------------------------------------------

/// A section's fields with take-semantics: every access consumes the key,
/// and [`Fields::finish`] turns anything left over into a positioned
/// "unknown key" error — the schema is closed by construction.
pub(crate) struct Fields {
    section: String,
    line: usize,
    entries: Vec<Option<(String, Value, usize)>>,
}

impl Fields {
    pub(crate) fn new(section: Section) -> Self {
        let display = if section.header.is_empty() {
            "top level".to_string()
        } else {
            format!("[{}]", section.header)
        };
        Fields {
            section: display,
            line: section.line,
            entries: section.entries.into_iter().map(Some).collect(),
        }
    }

    fn take(&mut self, key: &str) -> Option<(Value, usize)> {
        for slot in &mut self.entries {
            if slot.as_ref().is_some_and(|(k, _, _)| k == key) {
                let (_, v, l) = slot.take().expect("checked above");
                return Some((v, l));
            }
        }
        None
    }

    fn has(&self, key: &str) -> bool {
        self.entries
            .iter()
            .any(|s| s.as_ref().is_some_and(|(k, _, _)| k == key))
    }

    fn missing(&self, key: &str) -> SpecError {
        SpecError::new(
            self.line,
            key,
            format!("missing required key in {}", self.section),
        )
    }

    fn req_u64(&mut self, key: &str) -> SResult<u64> {
        self.opt_u64(key)?.ok_or_else(|| self.missing(key))
    }

    pub(crate) fn opt_u64(&mut self, key: &str) -> SResult<Option<u64>> {
        match self.take(key) {
            None => Ok(None),
            Some((Value::Int(v), _)) => Ok(Some(v)),
            Some((other, line)) => Err(SpecError::new(
                line,
                key,
                format!("expected a non-negative integer, got {}", other.type_name()),
            )),
        }
    }

    fn req_f64(&mut self, key: &str) -> SResult<(f64, usize)> {
        self.opt_f64(key)?.ok_or_else(|| self.missing(key))
    }

    pub(crate) fn opt_f64(&mut self, key: &str) -> SResult<Option<(f64, usize)>> {
        match self.take(key) {
            None => Ok(None),
            Some((Value::Float(v), line)) => Ok(Some((v, line))),
            Some((Value::Int(v), line)) => Ok(Some((v as f64, line))),
            Some((other, line)) => Err(SpecError::new(
                line,
                key,
                format!("expected a number, got {}", other.type_name()),
            )),
        }
    }

    fn req_str(&mut self, key: &str) -> SResult<(String, usize)> {
        self.opt_str(key)?.ok_or_else(|| self.missing(key))
    }

    fn opt_str(&mut self, key: &str) -> SResult<Option<(String, usize)>> {
        match self.take(key) {
            None => Ok(None),
            Some((Value::Str(v), line)) => Ok(Some((v, line))),
            Some((other, line)) => Err(SpecError::new(
                line,
                key,
                format!("expected a \"string\", got {}", other.type_name()),
            )),
        }
    }

    fn opt_range(&mut self, key: &str) -> SResult<Option<((u64, u64), usize)>> {
        match self.take(key) {
            None => Ok(None),
            Some((Value::Range(lo, hi), line)) => {
                if lo >= hi {
                    Err(SpecError::new(line, key, "range needs lo < hi"))
                } else {
                    Ok(Some(((lo, hi), line)))
                }
            }
            Some((other, line)) => Err(SpecError::new(
                line,
                key,
                format!("expected [lo, hi], got {}", other.type_name()),
            )),
        }
    }

    /// Errors on the first unconsumed key — closes the schema.
    pub(crate) fn finish(self) -> SResult<()> {
        if let Some((key, _, line)) = self.entries.into_iter().flatten().next() {
            return Err(SpecError::new(
                line,
                &key,
                format!("unknown key '{key}' in {}", self.section),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Schema pieces.
// ---------------------------------------------------------------------------

/// Parses a distribution from `f`: the shape name under `name_key` plus its
/// parameters under `{prefix}{param}` keys (prefixes serve
/// `[[gradual_shift]]`'s `from_*`/`to_*` pairs).
fn take_distribution(f: &mut Fields, name_key: &str, prefix: &str) -> SResult<KeyDistribution> {
    let (name, line) = f.req_str(name_key)?;
    let k = |p: &str| format!("{prefix}{p}");
    let dist = match name.as_str() {
        "uniform" => KeyDistribution::Uniform,
        "zipf" => KeyDistribution::Zipf {
            theta: f.req_f64(&k("theta"))?.0,
        },
        "normal" => KeyDistribution::Normal {
            center: f.req_f64(&k("center"))?.0,
            std_frac: f.req_f64(&k("std_frac"))?.0,
        },
        "lognormal" => KeyDistribution::LogNormal {
            mu: f.req_f64(&k("mu"))?.0,
            sigma: f.req_f64(&k("sigma"))?.0,
        },
        "hotspot" => KeyDistribution::Hotspot {
            hot_span: f.req_f64(&k("hot_span"))?.0,
            hot_fraction: f.req_f64(&k("hot_fraction"))?.0,
        },
        "clustered" => KeyDistribution::Clustered {
            clusters: f.req_u64(&k("clusters"))? as usize,
            cluster_std_frac: f.req_f64(&k("cluster_std_frac"))?.0,
        },
        "seq" => KeyDistribution::SequentialNoise {
            noise_frac: f.req_f64(&k("noise_frac"))?.0,
        },
        other => {
            let known: Vec<&str> = CANONICAL_DISTRIBUTIONS.iter().map(|(n, _)| *n).collect();
            return Err(SpecError::new(
                line,
                name_key,
                format!(
                    "unknown distribution '{other}' (known: {})",
                    known.join(", ")
                ),
            ));
        }
    };
    dist.validate()
        .map_err(|e| SpecError::new(line, name_key, e.to_string()))?;
    Ok(dist)
}

/// Parses an operation mix: `mix = "<preset>"` or explicit weight keys.
fn take_mix(f: &mut Fields) -> SResult<OperationMix> {
    const WEIGHT_KEYS: &[&str] = &["read", "insert", "update", "scan", "delete", "max_scan_len"];
    if let Some((value, line)) = f.take("mix") {
        let Value::Str(name) = value else {
            return Err(SpecError::new(
                line,
                "mix",
                format!("expected a preset \"string\", got {}", value.type_name()),
            ));
        };
        if let Some(conflict) = WEIGHT_KEYS.iter().find(|k| f.has(k)) {
            return Err(SpecError::new(
                line,
                "mix",
                format!("cannot combine the '{conflict}' weight key with a mix preset"),
            ));
        }
        let Some((_, preset)) = MIX_PRESETS.iter().find(|(n, _)| *n == name) else {
            let known: Vec<&str> = MIX_PRESETS.iter().map(|(n, _)| *n).collect();
            return Err(SpecError::new(
                line,
                "mix",
                format!("unknown mix preset '{name}' (known: {})", known.join(", ")),
            ));
        };
        return Ok(preset());
    }
    let mut any = false;
    let mut weight = |f: &mut Fields, key: &str| -> SResult<f64> {
        match f.opt_f64(key)? {
            Some((v, _)) => {
                any = true;
                Ok(v)
            }
            None => Ok(0.0),
        }
    };
    let mix = OperationMix {
        read: weight(f, "read")?,
        insert: weight(f, "insert")?,
        update: weight(f, "update")?,
        scan: weight(f, "scan")?,
        delete: weight(f, "delete")?,
        max_scan_len: f.opt_u64("max_scan_len")?.unwrap_or(0) as u32,
    };
    if !any {
        return Err(SpecError::new(
            f.line,
            "mix",
            format!(
                "{} needs an operation mix: a preset (mix = \"ycsb-c\") or weight keys",
                f.section
            ),
        ));
    }
    mix.validate()
        .map_err(|e| SpecError::new(f.line, "mix", e.to_string()))?;
    Ok(mix)
}

/// Parses the optional `transition` (+ `window`) pair describing how the
/// previous phase hands over to this block.
fn take_transition(f: &mut Fields) -> SResult<Option<(TransitionKind, usize)>> {
    let Some((value, line)) = f.take("transition") else {
        if let Some((_, wline)) = f.take("window") {
            return Err(SpecError::new(
                wline,
                "window",
                "'window' requires transition = \"gradual\"",
            ));
        }
        return Ok(None);
    };
    let Value::Str(kind) = value else {
        return Err(SpecError::new(
            line,
            "transition",
            format!(
                "expected \"abrupt\" or \"gradual\", got {}",
                value.type_name()
            ),
        ));
    };
    match kind.as_str() {
        "abrupt" => {
            if let Some((_, wline)) = f.take("window") {
                return Err(SpecError::new(
                    wline,
                    "window",
                    "'window' only applies to transition = \"gradual\"",
                ));
            }
            Ok(Some((TransitionKind::Abrupt, line)))
        }
        "gradual" => {
            let (window, wline) = f.req_f64("window").map_err(|_| {
                SpecError::new(line, "window", "gradual transitions need a 'window'")
            })?;
            if !(window > 0.0 && window <= 1.0) {
                return Err(SpecError::new(wline, "window", "window must be in (0, 1]"));
            }
            Ok(Some((TransitionKind::Gradual { window }, line)))
        }
        other => Err(SpecError::new(
            line,
            "transition",
            format!("unknown transition '{other}' (expected \"abrupt\" or \"gradual\")"),
        )),
    }
}

fn take_key_range(f: &mut Fields, default_range: Option<(u64, u64)>) -> SResult<(u64, u64)> {
    match f.opt_range("key_range")? {
        Some((range, _)) => Ok(range),
        None => default_range.ok_or_else(|| {
            SpecError::new(
                f.line,
                "key_range",
                format!(
                    "{} needs a key_range (no [dataset] default available)",
                    f.section
                ),
            )
        }),
    }
}

/// Compiles a `[[phase]]` / `[[holdout]]` block.
fn compile_phase(
    mut f: Fields,
    default_range: Option<(u64, u64)>,
) -> SResult<(WorkloadPhase, Option<(TransitionKind, usize)>)> {
    let transition = take_transition(&mut f)?;
    let dist = take_distribution(&mut f, "distribution", "")?;
    let key_range = take_key_range(&mut f, default_range)?;
    let mix = take_mix(&mut f)?;
    let ops = f.req_u64("ops")?;
    if ops == 0 {
        return Err(SpecError::new(
            f.line,
            "ops",
            "phase needs at least one operation",
        ));
    }
    let name = match f.opt_str("name")? {
        Some((n, _)) => n,
        None => dist.canonical_name().to_string(),
    };
    let mut phase = WorkloadPhase::new(name, dist, key_range, mix, ops);
    if let Some((burst, line)) = f.opt_f64("concurrency_burst")? {
        if !(burst > 0.0 && burst.is_finite()) {
            return Err(SpecError::new(
                line,
                "concurrency_burst",
                "must be positive and finite",
            ));
        }
        phase = phase.with_concurrency_burst(burst);
    }
    f.finish()?;
    Ok((phase, transition))
}

/// Shared keys of every composer block.
struct ComposerCommon {
    name: String,
    steps: u64,
    ops_per_step: u64,
    key_range: (u64, u64),
    mix: OperationMix,
    join: Option<(TransitionKind, usize)>,
}

fn take_composer_common(
    f: &mut Fields,
    default_name: &str,
    default_range: Option<(u64, u64)>,
) -> SResult<ComposerCommon> {
    let join = take_transition(f)?;
    Ok(ComposerCommon {
        name: match f.opt_str("name")? {
            Some((n, _)) => n,
            None => default_name.to_string(),
        },
        steps: f.req_u64("steps")?,
        ops_per_step: f.req_u64("ops_per_step")?,
        key_range: take_key_range(f, default_range)?,
        mix: take_mix(f)?,
        join,
    })
}

fn opt_smooth(f: &mut Fields) -> SResult<Option<f64>> {
    match f.opt_f64("smooth")? {
        None => Ok(None),
        Some((v, line)) => {
            if v > 0.0 && v <= 1.0 {
                Ok(Some(v))
            } else {
                Err(SpecError::new(
                    line,
                    "smooth",
                    "smooth window must be in (0, 1]",
                ))
            }
        }
    }
}

/// Compiles one composer block to its expansion.
fn compile_composer(
    mut f: Fields,
    kind: &str,
    default_range: Option<(u64, u64)>,
) -> SResult<(Expansion, Option<(TransitionKind, usize)>)> {
    let line = f.line;
    if kind == "ledger" {
        // The ledger family derives its mix from `append_fraction`, so it
        // skips the common path (which demands an explicit mix).
        let join = take_transition(&mut f)?;
        let family = LedgerGrowth {
            name: match f.opt_str("name")? {
                Some((n, _)) => n,
                None => kind.to_string(),
            },
            steps: f.req_u64("steps")?,
            ops_per_step: f.req_u64("ops_per_step")?,
            key_range: take_key_range(&mut f, default_range)?,
            start_frac: f.req_f64("start_frac")?.0,
            append_fraction: f.req_f64("append_fraction")?.0,
            recency: f.opt_f64("recency")?.map(|(v, _)| v).unwrap_or(0.1),
        };
        f.finish()?;
        let expansion = family
            .expand()
            .map_err(|reason| SpecError::new(line, kind, reason))?;
        return Ok((expansion, join));
    }
    let common = take_composer_common(&mut f, kind, default_range)?;
    let join = common.join;
    let expansion = match kind {
        "diurnal" => DiurnalComposer {
            name: common.name,
            steps: common.steps,
            ops_per_step: common.ops_per_step,
            period: f.req_f64("period")?.0,
            amplitude: f.req_f64("amplitude")?.0,
            distribution: take_distribution(&mut f, "distribution", "")?,
            key_range: common.key_range,
            mix: common.mix,
        }
        .expand(),
        "burst" => BurstComposer {
            name: common.name,
            steps: common.steps,
            ops_per_step: common.ops_per_step,
            at: f.req_u64("at")?,
            width: f.req_u64("width")?,
            factor: f.req_f64("factor")?.0,
            distribution: take_distribution(&mut f, "distribution", "")?,
            key_range: common.key_range,
            mix: common.mix,
        }
        .expand(),
        "gradual_shift" => GradualShiftComposer {
            name: common.name,
            steps: common.steps,
            ops_per_step: common.ops_per_step,
            from: take_distribution(&mut f, "from", "from_")?,
            to: take_distribution(&mut f, "to", "to_")?,
            smooth: opt_smooth(&mut f)?,
            key_range: common.key_range,
            mix: common.mix,
        }
        .expand(),
        "drift" => DriftComposer {
            name: common.name,
            steps: common.steps,
            ops_per_step: common.ops_per_step,
            from: take_distribution(&mut f, "from", "from_")?,
            to: take_distribution(&mut f, "to", "to_")?,
            alpha: f.req_f64("alpha")?.0,
            smooth: opt_smooth(&mut f)?,
            key_range: common.key_range,
            mix: common.mix,
        }
        .expand(),
        "growing_skew" => GrowingSkewComposer {
            name: common.name,
            steps: common.steps,
            ops_per_step: common.ops_per_step,
            start_theta: f.req_f64("start_theta")?.0,
            end_theta: f.req_f64("end_theta")?.0,
            smooth: opt_smooth(&mut f)?,
            key_range: common.key_range,
            mix: common.mix,
        }
        .expand(),
        "templated_repetition" => TemplatedRepetition {
            name: common.name,
            steps: common.steps,
            ops_per_step: common.ops_per_step,
            key_range: common.key_range,
            mix: common.mix,
            templates: f.req_u64("templates")?,
            hot_templates: f.req_u64("hot_templates")?,
            theta: f.req_f64("theta")?.0,
            churn: f.opt_f64("churn")?.map(|(v, _)| v).unwrap_or(0.0),
        }
        .expand(),
        other => unreachable!("lexer admits only known composer blocks, got {other}"),
    };
    f.finish()?;
    let expansion = expansion.map_err(|reason| SpecError::new(line, kind, reason))?;
    Ok((expansion, join))
}

/// Like [`Fields::opt_u64`] but keeps the key's source line, for errors
/// that must point at the exact offending token.
fn take_u64_at(f: &mut Fields, key: &str) -> SResult<Option<(u64, usize)>> {
    match f.take(key) {
        None => Ok(None),
        Some((Value::Int(v), line)) => Ok(Some((v, line))),
        Some((other, line)) => Err(SpecError::new(
            line,
            key,
            format!("expected a non-negative integer, got {}", other.type_name()),
        )),
    }
}

/// Compiles one `[[fault]]` block. Returns the fault plus the source line
/// of every positionable key, so the window checks that need the fully
/// assembled phase list ([`FaultSpec::check`]) can still reject at the
/// exact line and field.
fn compile_fault(mut f: Fields) -> SResult<(FaultSpec, Vec<(&'static str, usize)>)> {
    let (kind, kline) = f.req_str("kind")?;
    let mut lines: Vec<(&'static str, usize)> = vec![("kind", kline)];
    let spec = match kind.as_str() {
        "errors" => {
            let phase = match take_u64_at(&mut f, "phase")? {
                Some((v, line)) => {
                    lines.push(("phase", line));
                    Some(v as usize)
                }
                None => None,
            };
            let (rate, rline) = f.req_f64("rate")?;
            lines.push(("rate", rline));
            if !(0.0..=1.0).contains(&rate) {
                return Err(SpecError::new(
                    rline,
                    "rate",
                    format!("error rate {rate} must be within [0, 1]"),
                ));
            }
            FaultSpec::TransientErrors { phase, rate }
        }
        "latency" => {
            let phase = match take_u64_at(&mut f, "phase")? {
                Some((v, line)) => {
                    lines.push(("phase", line));
                    Some(v as usize)
                }
                None => None,
            };
            let add_work = match take_u64_at(&mut f, "add_work")? {
                Some((v, line)) => {
                    lines.push(("add_work", line));
                    v
                }
                None => 0,
            };
            let factor = match f.opt_f64("factor")? {
                Some((v, line)) => {
                    lines.push(("factor", line));
                    if !(v.is_finite() && v >= 0.0) {
                        return Err(SpecError::new(
                            line,
                            "factor",
                            "latency factor must be finite and non-negative",
                        ));
                    }
                    v
                }
                None => 1.0,
            };
            FaultSpec::LatencySpike {
                phase,
                add_work,
                factor,
            }
        }
        "stall" => {
            let Some((phase, pline)) = take_u64_at(&mut f, "phase")? else {
                return Err(f.missing("phase"));
            };
            lines.push(("phase", pline));
            let Some((from_op, fline)) = take_u64_at(&mut f, "from_op")? else {
                return Err(f.missing("from_op"));
            };
            lines.push(("from_op", fline));
            let Some((ops, oline)) = take_u64_at(&mut f, "ops")? else {
                return Err(f.missing("ops"));
            };
            lines.push(("ops", oline));
            let (duration, dline) = f.req_f64("duration")?;
            lines.push(("duration", dline));
            if !(duration.is_finite() && duration > 0.0) {
                return Err(SpecError::new(
                    dline,
                    "duration",
                    "stall duration must be positive and finite",
                ));
            }
            FaultSpec::Stall {
                phase: phase as usize,
                from_op,
                ops,
                duration,
            }
        }
        "crash" => {
            let Some((phase, pline)) = take_u64_at(&mut f, "phase")? else {
                return Err(f.missing("phase"));
            };
            lines.push(("phase", pline));
            let Some((at_op, aline)) = take_u64_at(&mut f, "at_op")? else {
                return Err(f.missing("at_op"));
            };
            lines.push(("at_op", aline));
            FaultSpec::Crash {
                phase: phase as usize,
                at_op,
            }
        }
        other => {
            return Err(SpecError::new(
                kline,
                "kind",
                format!(
                    "unknown fault kind '{other}' (expected \"errors\", \"latency\", \"stall\", or \"crash\")"
                ),
            ))
        }
    };
    f.finish()?;
    Ok((spec, lines))
}

/// The optional retry-policy keys in declaration order:
/// `(timeout, max_retries, backoff_base, backoff_multiplier)`.
type PolicyParts = (Option<f64>, Option<u32>, Option<f64>, Option<f64>);

/// Parses the retry-policy keys shared by `[run]` and standalone
/// fault-plan files: `timeout`, `max_retries`, `backoff_base`,
/// `backoff_multiplier` — each optional, each validated at its own line.
fn take_fault_policy(f: &mut Fields) -> SResult<PolicyParts> {
    let timeout = match f.opt_f64("timeout")? {
        None => None,
        Some((v, line)) => {
            if !(v.is_finite() && v > 0.0) {
                return Err(SpecError::new(
                    line,
                    "timeout",
                    "per-query timeout must be positive and finite",
                ));
            }
            Some(v)
        }
    };
    let max_retries = match f.take("max_retries") {
        None => None,
        Some((Value::Int(v), line)) => {
            if v > u32::MAX as u64 {
                return Err(SpecError::new(
                    line,
                    "max_retries",
                    "retry budget does not fit in 32 bits",
                ));
            }
            Some(v as u32)
        }
        Some((other, line)) => {
            return Err(SpecError::new(
                line,
                "max_retries",
                format!("expected a non-negative integer, got {}", other.type_name()),
            ))
        }
    };
    let backoff = |f: &mut Fields, key: &'static str| -> SResult<Option<f64>> {
        match f.opt_f64(key)? {
            None => Ok(None),
            Some((v, line)) => {
                if !(v.is_finite() && v >= 0.0) {
                    Err(SpecError::new(line, key, "must be non-negative and finite"))
                } else {
                    Ok(Some(v))
                }
            }
        }
    };
    let backoff_base = backoff(f, "backoff_base")?;
    let backoff_multiplier = backoff(f, "backoff_multiplier")?;
    Ok((timeout, max_retries, backoff_base, backoff_multiplier))
}

// ---------------------------------------------------------------------------
// Singleton sections.
// ---------------------------------------------------------------------------

fn compile_dataset(mut f: Fields) -> SResult<DatasetSpec> {
    let distribution = take_distribution(&mut f, "distribution", "")?;
    let Some((key_range, _)) = f.opt_range("key_range")? else {
        return Err(f.missing("key_range"));
    };
    let size = f.req_u64("size")?;
    if size == 0 {
        return Err(SpecError::new(
            f.line,
            "size",
            "dataset size must be positive",
        ));
    }
    let seed = f.req_u64("seed")?;
    f.finish()?;
    Ok(DatasetSpec {
        distribution,
        key_range,
        size: size as usize,
        seed,
    })
}

fn compile_sla(mut f: Fields) -> SResult<SlaPolicy> {
    let (policy, line) = f.req_str("policy")?;
    let sla = match policy.as_str() {
        "baseline-p99" => SlaPolicy::FromBaselineP99 {
            multiplier: f.opt_f64("multiplier")?.map(|(v, _)| v).unwrap_or(4.0),
        },
        "fixed" => {
            let (threshold, tline) = f.req_f64("threshold")?;
            if threshold <= 0.0 {
                return Err(SpecError::new(tline, "threshold", "must be positive"));
            }
            SlaPolicy::Fixed { threshold }
        }
        other => {
            return Err(SpecError::new(
                line,
                "policy",
                format!("unknown SLA policy '{other}' (expected \"baseline-p99\" or \"fixed\")"),
            ))
        }
    };
    f.finish()?;
    Ok(sla)
}

fn compile_arrival(mut f: Fields) -> SResult<ArrivalSpec> {
    let (process_name, pline) = f.req_str("process")?;
    let (rate, rline) = f.req_f64("rate")?;
    let process = match process_name.as_str() {
        "poisson" => ArrivalProcess::Poisson { rate },
        "uniform" => ArrivalProcess::Uniform { rate },
        "closed-loop" => {
            return Err(SpecError::new(
                pline,
                "process",
                "closed loop is the default — omit the [arrival] section entirely",
            ))
        }
        other => {
            return Err(SpecError::new(
                pline,
                "process",
                format!("unknown arrival process '{other}' (expected \"poisson\" or \"uniform\")"),
            ))
        }
    };
    process
        .validate()
        .map_err(|e| SpecError::new(rline, "rate", e.to_string()))?;
    let (mod_name, mline) = f.req_str("modulation")?;
    let modulation = match mod_name.as_str() {
        "constant" => LoadModulation::Constant,
        "diurnal" => LoadModulation::Diurnal {
            period: f.req_f64("period")?.0,
            amplitude: f.req_f64("amplitude")?.0,
        },
        "burst" => LoadModulation::Burst {
            period: f.req_f64("period")?.0,
            burst_len: f.req_f64("burst_len")?.0,
            multiplier: f.req_f64("multiplier")?.0,
        },
        other => {
            return Err(SpecError::new(
                mline,
                "modulation",
                format!(
                "unknown modulation '{other}' (expected \"constant\", \"diurnal\", or \"burst\")"
            ),
            ))
        }
    };
    modulation
        .validate()
        .map_err(|e| SpecError::new(mline, "modulation", e.to_string()))?;
    let seed = f.req_u64("seed")?;
    f.finish()?;
    Ok(ArrivalSpec {
        process,
        modulation,
        seed,
    })
}

/// The `[open_loop]` section: a client population, plus optional
/// `arrival = RATE` sugar for the common Poisson-at-constant-rate case
/// (the full `[arrival]` section remains available for everything else).
struct OpenLoopSettings {
    clients: u64,
    /// `(rate, line)` of the sugar key; resolved against the root seed
    /// once that is parsed.
    arrival_rate: Option<(f64, usize)>,
    line: usize,
}

fn compile_open_loop(mut f: Fields, line: usize) -> SResult<OpenLoopSettings> {
    let clients = f.req_u64("clients")?;
    let arrival_rate = f.opt_f64("arrival")?;
    let settings = OpenLoopSettings {
        clients,
        arrival_rate,
        line,
    };
    f.finish()?;
    Ok(settings)
}

/// Everything `[run]` can set, with builder defaults for whatever is
/// absent.
struct RunSettings {
    train_budget: Option<u64>,
    work_units_per_second: Option<f64>,
    maintenance_every: Option<u64>,
    online_train: Option<OnlineTrainMode>,
    mode: Option<ModePreference>,
    clock: Option<ClockMode>,
    holdout_seed: Option<u64>,
    fault_seed: Option<u64>,
    timeout: Option<f64>,
    max_retries: Option<u32>,
    backoff_base: Option<f64>,
    backoff_multiplier: Option<f64>,
}

impl RunSettings {
    /// Whether any fault-policy key appeared. Policy keys alone (no
    /// `[[fault]]` blocks) still attach a plan — a timeout/retry policy
    /// without injected faults is a valid robustness configuration.
    fn has_fault_policy(&self) -> bool {
        self.fault_seed.is_some()
            || self.timeout.is_some()
            || self.max_retries.is_some()
            || self.backoff_base.is_some()
            || self.backoff_multiplier.is_some()
    }

    /// Builds the retry policy from whatever keys were present.
    fn retry_policy(&self) -> RetryPolicy {
        let d = RetryPolicy::default();
        RetryPolicy {
            timeout: self.timeout,
            max_retries: self.max_retries.unwrap_or(d.max_retries),
            backoff_base: self.backoff_base.unwrap_or(d.backoff_base),
            backoff_multiplier: self.backoff_multiplier.unwrap_or(d.backoff_multiplier),
        }
    }
}

fn compile_run(mut f: Fields) -> SResult<RunSettings> {
    let train_budget = match f.take("train_budget") {
        None => None,
        Some((Value::Int(v), _)) => Some(v),
        Some((Value::Str(s), line)) => {
            if s == "unlimited" {
                Some(u64::MAX)
            } else {
                return Err(SpecError::new(
                    line,
                    "train_budget",
                    format!("expected an integer or \"unlimited\", got \"{s}\""),
                ));
            }
        }
        Some((other, line)) => {
            return Err(SpecError::new(
                line,
                "train_budget",
                format!(
                    "expected an integer or \"unlimited\", got {}",
                    other.type_name()
                ),
            ))
        }
    };
    let online_train = match f.opt_str("online_train")? {
        None => {
            if let Some((_, line)) = f.take("train_fraction") {
                return Err(SpecError::new(
                    line,
                    "train_fraction",
                    "'train_fraction' requires online_train = \"background\"",
                ));
            }
            None
        }
        Some((mode, line)) => match mode.as_str() {
            "foreground" => {
                if let Some((_, fline)) = f.take("train_fraction") {
                    return Err(SpecError::new(
                        fline,
                        "train_fraction",
                        "'train_fraction' only applies to online_train = \"background\"",
                    ));
                }
                Some(OnlineTrainMode::Foreground)
            }
            "background" => {
                let (fraction, fline) = f.req_f64("train_fraction")?;
                if !(0.0 < fraction && fraction < 1.0) {
                    return Err(SpecError::new(fline, "train_fraction", "must be in (0, 1)"));
                }
                Some(OnlineTrainMode::Background { fraction })
            }
            other => {
                return Err(SpecError::new(
                    line,
                    "online_train",
                    format!("unknown mode '{other}' (expected \"foreground\" or \"background\")"),
                ))
            }
        },
    };
    let mode = match f.opt_str("mode")? {
        None => None,
        Some((name, line)) => match ModePreference::parse(&name) {
            Some(mode) => Some(mode),
            None => {
                return Err(SpecError::new(
                    line,
                    "mode",
                    format!(
                        "unknown mode '{name}' (expected \"serial\", \"shared\", \"sharded\", \
                         or \"open-loop\")"
                    ),
                ))
            }
        },
    };
    let clock = match f.opt_str("clock")? {
        None => None,
        Some((name, line)) => match ClockMode::parse(&name) {
            Some(clock) => Some(clock),
            None => {
                return Err(SpecError::new(
                    line,
                    "clock",
                    format!("unknown clock '{name}' (expected \"sim\" or \"wall\")"),
                ))
            }
        },
    };
    let (timeout, max_retries, backoff_base, backoff_multiplier) = take_fault_policy(&mut f)?;
    let settings = RunSettings {
        train_budget,
        work_units_per_second: f.opt_f64("work_units_per_second")?.map(|(v, _)| v),
        maintenance_every: f.opt_u64("maintenance_every")?,
        online_train,
        mode,
        clock,
        holdout_seed: f.opt_u64("holdout_seed")?,
        fault_seed: f.opt_u64("fault_seed")?,
        timeout,
        max_retries,
        backoff_base,
        backoff_multiplier,
    };
    f.finish()?;
    Ok(settings)
}

// ---------------------------------------------------------------------------
// The phase chain and top-level assembly.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Chain {
    phases: Vec<WorkloadPhase>,
    transitions: Vec<TransitionKind>,
}

impl Chain {
    fn push(
        &mut self,
        (phases, internal): Expansion,
        join: Option<(TransitionKind, usize)>,
    ) -> SResult<()> {
        if self.phases.is_empty() {
            if let Some((_, line)) = join {
                return Err(SpecError::new(
                    line,
                    "transition",
                    "the first block of a workload cannot have a transition",
                ));
            }
        } else {
            self.transitions
                .push(join.map(|(t, _)| t).unwrap_or(TransitionKind::Abrupt));
        }
        self.phases.extend(phases);
        self.transitions.extend(internal);
        Ok(())
    }

    fn into_workload(self, seed: u64, what: &str) -> SResult<PhasedWorkload> {
        PhasedWorkload::new(self.phases, self.transitions, seed)
            .map_err(|e| SpecError::new(0, what, e.to_string()))
    }
}

/// Parses spec text into a validated [`Scenario`].
///
/// The single public entry point of the parser layer; file handling lives
/// in [`ScenarioRegistry`](super::ScenarioRegistry).
pub fn parse_scenario(text: &str) -> Result<Scenario, SpecError> {
    let sections = lex(text)?;
    let mut root: Option<Fields> = None;
    let mut dataset: Option<DatasetSpec> = None;
    let mut sla: Option<SlaPolicy> = None;
    let mut arrival: Option<ArrivalSpec> = None;
    let mut open_loop: Option<OpenLoopSettings> = None;
    let mut run: Option<RunSettings> = None;
    let mut main_chain = Chain::default();
    let mut holdout_chain = Chain::default();
    let mut first_holdout_line: Option<usize> = None;
    type FaultLines = Vec<(&'static str, usize)>;
    let mut fault_blocks: Vec<(FaultSpec, FaultLines, usize)> = Vec::new();

    // The dataset's key range is the default for phases; [dataset] nearly
    // always precedes the phase chain, so resolve it in a first pass.
    let default_range = sections
        .iter()
        .find(|s| s.header == "dataset")
        .and_then(|s| {
            s.entries
                .iter()
                .find_map(|(k, v, _)| match (k.as_str(), v) {
                    ("key_range", Value::Range(lo, hi)) => Some((*lo, *hi)),
                    _ => None,
                })
        });

    for section in sections {
        match section.header.as_str() {
            "" => root = Some(Fields::new(section)),
            "dataset" => dataset = Some(compile_dataset(Fields::new(section))?),
            "sla" => sla = Some(compile_sla(Fields::new(section))?),
            "arrival" => arrival = Some(compile_arrival(Fields::new(section))?),
            "open_loop" => {
                let line = section.line;
                open_loop = Some(compile_open_loop(Fields::new(section), line)?);
            }
            "run" => run = Some(compile_run(Fields::new(section))?),
            "phase" => {
                let (phase, join) = compile_phase(Fields::new(section), default_range)?;
                main_chain.push((vec![phase], vec![]), join)?;
            }
            "holdout" => {
                first_holdout_line.get_or_insert(section.line);
                let (phase, join) = compile_phase(Fields::new(section), default_range)?;
                holdout_chain.push((vec![phase], vec![]), join)?;
            }
            "fault" => {
                let block_line = section.line;
                let (spec, lines) = compile_fault(Fields::new(section))?;
                fault_blocks.push((spec, lines, block_line));
            }
            kind @ ("diurnal"
            | "burst"
            | "gradual_shift"
            | "growing_skew"
            | "drift"
            | "templated_repetition"
            | "ledger") => {
                let kind = kind.to_string();
                let (expansion, join) =
                    compile_composer(Fields::new(section), &kind, default_range)?;
                main_chain.push(expansion, join)?;
            }
            other => unreachable!("lexer admits only known sections, got {other}"),
        }
    }

    let mut root = root.expect("root section always present");
    let (name, _) = root.req_str("name")?;
    let seed = root.req_u64("seed")?;
    root.finish()?;

    let Some(dataset) = dataset else {
        return Err(SpecError::new(
            0,
            "dataset",
            "missing required [dataset] section",
        ));
    };
    if main_chain.phases.is_empty() {
        return Err(SpecError::new(
            0,
            "phase",
            "spec defines no workload ([[phase]] or composer blocks)",
        ));
    }
    let workload = main_chain.into_workload(seed, "workload")?;

    let run = run.unwrap_or(RunSettings {
        train_budget: None,
        work_units_per_second: None,
        maintenance_every: None,
        online_train: None,
        mode: None,
        clock: None,
        holdout_seed: None,
        fault_seed: None,
        timeout: None,
        max_retries: None,
        backoff_base: None,
        backoff_multiplier: None,
    });

    // Fault windows are validated against the assembled phase list; an
    // out-of-range window is rejected at the exact line of the offending
    // key, not at the end of the file.
    let fault_plan = if !fault_blocks.is_empty() || run.has_fault_policy() {
        let mut faults = Vec::with_capacity(fault_blocks.len());
        for (spec, lines, block_line) in fault_blocks {
            if let Err((field, reason)) = spec.check(workload.phases()) {
                let line = lines
                    .iter()
                    .find(|(k, _)| *k == field)
                    .map(|&(_, l)| l)
                    .unwrap_or(block_line);
                return Err(SpecError::new(line, field, reason));
            }
            faults.push(spec);
        }
        Some(FaultPlan {
            seed: run.fault_seed.unwrap_or(seed),
            policy: run.retry_policy(),
            faults,
        })
    } else {
        None
    };

    let mut builder = Scenario::builder(name)
        .dataset_spec(dataset)
        .workload(workload);
    if !holdout_chain.phases.is_empty() {
        let line = first_holdout_line.unwrap_or(0);
        let Some(holdout_seed) = run.holdout_seed else {
            return Err(SpecError::new(
                line,
                "holdout_seed",
                "[[holdout]] blocks need 'holdout_seed' in [run]",
            ));
        };
        builder = builder.holdout(holdout_chain.into_workload(holdout_seed, "holdout")?);
    } else if run.holdout_seed.is_some() {
        return Err(SpecError::new(
            0,
            "holdout_seed",
            "'holdout_seed' set but the spec has no [[holdout]] blocks",
        ));
    }
    if let Some(v) = run.train_budget {
        builder = builder.train_budget(v);
    }
    if let Some(v) = run.work_units_per_second {
        builder = builder.work_units_per_second(v);
    }
    if let Some(v) = run.maintenance_every {
        builder = builder.maintenance_every(v);
    }
    if let Some(v) = run.online_train {
        builder = builder.online_train(v);
    }
    if let Some(v) = run.mode {
        builder = builder.mode(v);
    }
    if let Some(v) = run.clock {
        builder = builder.clock(v);
    }
    if let Some(v) = sla {
        builder = builder.sla(v);
    }
    if let Some(settings) = open_loop {
        if let Some((rate, rline)) = settings.arrival_rate {
            if arrival.is_some() {
                return Err(SpecError::new(
                    rline,
                    "arrival",
                    "both an [arrival] section and [open_loop] arrival sugar given — \
                     keep one",
                ));
            }
            // The sugar normalizes to a full Poisson/constant arrival spec
            // seeded from the root seed, so `parse ∘ render = id` holds.
            let process = ArrivalProcess::Poisson { rate };
            process
                .validate()
                .map_err(|e| SpecError::new(rline, "arrival", e.to_string()))?;
            arrival = Some(ArrivalSpec {
                process,
                modulation: LoadModulation::Constant,
                seed,
            });
        } else if arrival.is_none() {
            return Err(SpecError::new(
                settings.line,
                "open_loop",
                "[open_loop] needs an arrival process: add an [arrival] section or the \
                 'arrival = RATE' sugar key",
            ));
        }
        builder = builder.open_loop(settings.clients);
    }
    if let Some(v) = arrival {
        builder = builder.arrival(v);
    }
    if let Some(plan) = fault_plan {
        builder = builder.faults(plan);
    }
    builder
        .build()
        .map_err(|e| SpecError::new(0, "scenario", e.to_string()))
}

/// Parses a standalone fault-plan file: root-level `seed` (default 0)
/// plus the policy keys `timeout`, `max_retries`, `backoff_base`,
/// `backoff_multiplier`, and any number of `[[fault]]` blocks. Scenario
/// sections are rejected — a plan file describes *only* the perturbation,
/// so one plan composes with any scenario (`--faults FILE` on the CLI).
/// Phase-window validation happens when the plan attaches to a concrete
/// scenario ([`FaultPlan::validate`] via `Scenario::validate`).
pub fn parse_fault_plan(text: &str) -> Result<FaultPlan, SpecError> {
    let sections = lex(text)?;
    let mut root: Option<Fields> = None;
    let mut faults = Vec::new();
    for section in sections {
        match section.header.as_str() {
            "" => root = Some(Fields::new(section)),
            "fault" => {
                let (spec, _) = compile_fault(Fields::new(section))?;
                faults.push(spec);
            }
            other => {
                return Err(SpecError::new(
                    section.line,
                    other,
                    format!(
                    "a fault-plan file allows only root keys and [[fault]] blocks, not '{other}'"
                ),
                ))
            }
        }
    }
    let mut root = root.expect("root section always present");
    let seed = root.opt_u64("seed")?.unwrap_or(0);
    let (timeout, max_retries, backoff_base, backoff_multiplier) = take_fault_policy(&mut root)?;
    root.finish()?;
    let d = RetryPolicy::default();
    Ok(FaultPlan {
        seed,
        policy: RetryPolicy {
            timeout,
            max_retries: max_retries.unwrap_or(d.max_retries),
            backoff_base: backoff_base.unwrap_or(d.backoff_base),
            backoff_multiplier: backoff_multiplier.unwrap_or(d.backoff_multiplier),
        },
        faults,
    })
}
