//! Name → scenario resolution, mirroring
//! [`SutRegistry`](crate::sut_registry::SutRegistry).
//!
//! A [`ScenarioRegistry`] resolves the built-in standard-suite scenarios
//! (S1–S5, generated from [`STANDARD_SCENARIOS`] at the registry's
//! [`SuiteConfig`] scale) and user spec files on disk through one
//! interface: [`ScenarioRegistry::resolve`] takes either a registered
//! name or a path. `lsbench scenarios` prints the registry;
//! `lsbench run --scenario` and `lsbench validate` resolve through it.
//!
//! Registration is open, like the SUT registry: embedders can
//! [`ScenarioRegistry::register`] their own generators and they become
//! resolvable by name everywhere.

use super::parse::parse_scenario;
use super::SpecError;
use crate::scenario::Scenario;
use crate::suite::{SuiteConfig, STANDARD_SCENARIOS};
use crate::{BenchError, Result};
use std::path::Path;

/// A registered scenario generator, parameterized by the registry's
/// [`SuiteConfig`] so built-ins and the suite can never drift apart.
type Gen = Box<dyn Fn(&SuiteConfig) -> Result<Scenario> + Send + Sync>;

struct ScenarioEntry {
    name: String,
    description: String,
    gen: Gen,
}

/// Registry of named scenarios with uniform spec-file fallback. See the
/// [module docs](self).
pub struct ScenarioRegistry {
    cfg: SuiteConfig,
    entries: Vec<ScenarioEntry>,
}

impl Default for ScenarioRegistry {
    /// The standard suite (S1–S5) at the default [`SuiteConfig`] scale.
    fn default() -> Self {
        Self::with_config(SuiteConfig::default())
    }
}

impl ScenarioRegistry {
    /// The standard suite registered at the given scale.
    pub fn with_config(cfg: SuiteConfig) -> Self {
        let mut reg = ScenarioRegistry {
            cfg,
            entries: Vec::new(),
        };
        for (name, description, build) in STANDARD_SCENARIOS {
            reg.register(name, description, *build);
        }
        reg
    }

    /// An empty registry (no built-ins) at the given scale.
    pub fn empty(cfg: SuiteConfig) -> Self {
        ScenarioRegistry {
            cfg,
            entries: Vec::new(),
        }
    }

    /// The scale built-in generators are instantiated at.
    pub fn config(&self) -> &SuiteConfig {
        &self.cfg
    }

    /// Registers (or replaces) a named generator. Later registrations
    /// with the same name win, so embedders can shadow built-ins.
    pub fn register<F>(&mut self, name: &str, description: &str, gen: F)
    where
        F: Fn(&SuiteConfig) -> Result<Scenario> + Send + Sync + 'static,
    {
        self.entries.retain(|e| e.name != name);
        self.entries.push(ScenarioEntry {
            name: name.to_string(),
            description: description.to_string(),
            gen: Box::new(gen),
        });
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// `(name, description)` pairs in registration order, for `lsbench
    /// scenarios` and similar displays.
    pub fn descriptions(&self) -> Vec<(&str, &str)> {
        self.entries
            .iter()
            .map(|e| (e.name.as_str(), e.description.as_str()))
            .collect()
    }

    /// Builds the named scenario at the registry's scale. Unknown names
    /// report the registered alternatives.
    pub fn get(&self, name: &str) -> Result<Scenario> {
        match self.entries.iter().find(|e| e.name == name) {
            Some(entry) => (entry.gen)(&self.cfg),
            None => Err(BenchError::InvalidScenario(format!(
                "unknown scenario '{name}' (registered: {})",
                self.names().join(", ")
            ))),
        }
    }

    /// Loads and parses a spec file, keeping the positioned error —
    /// `lsbench validate` prints `line`/`field`/`reason` from it. I/O
    /// failures surface as line 0 ("whole file") errors.
    pub fn load_file(path: impl AsRef<Path>) -> std::result::Result<Scenario, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            SpecError::new(0, "file", format!("cannot read {}: {e}", path.display()))
        })?;
        parse_scenario(&text)
    }

    /// Resolves a scenario from a registered name or a spec-file path —
    /// the uniform entry point behind `lsbench run --scenario`.
    ///
    /// Names are tried first; anything unregistered that exists on disk
    /// is loaded as a spec file. Spec errors are prefixed with the path.
    pub fn resolve(&self, name_or_path: &str) -> Result<Scenario> {
        if self.contains(name_or_path) {
            return self.get(name_or_path);
        }
        if Path::new(name_or_path).exists() {
            return Self::load_file(name_or_path)
                .map_err(|e| BenchError::InvalidScenario(format!("{name_or_path}:{e}")));
        }
        Err(BenchError::InvalidScenario(format!(
            "unknown scenario '{name_or_path}' (registered: {}; or pass a path to a .spec file)",
            self.names().join(", ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SuiteConfig {
        SuiteConfig {
            dataset_size: 2_000,
            ops_per_phase: 500,
            ..SuiteConfig::default()
        }
    }

    #[test]
    fn default_registry_builds_every_built_in() {
        let reg = ScenarioRegistry::with_config(tiny_cfg());
        assert_eq!(
            reg.names(),
            [
                "S1-specialization",
                "S2-abrupt-shift",
                "S3-gradual-writes",
                "S4-scans",
                "S5-bursty-load",
                "S6-templated-repetition",
                "S7-ledger-growth"
            ]
        );
        for name in reg.names() {
            let s = reg.get(name).unwrap();
            assert_eq!(s.name, name);
            s.validate().unwrap();
        }
    }

    #[test]
    fn registry_scenarios_match_suite() {
        let cfg = tiny_cfg();
        let reg = ScenarioRegistry::with_config(cfg);
        let suite = crate::suite::standard_scenarios(&cfg).unwrap();
        for expected in &suite {
            assert_eq!(&reg.get(&expected.name).unwrap(), expected);
        }
    }

    #[test]
    fn unknown_name_lists_alternatives() {
        let reg = ScenarioRegistry::default();
        let msg = reg.get("S9-imaginary").unwrap_err().to_string();
        assert!(msg.contains("S9-imaginary"));
        assert!(msg.contains("S1-specialization"));
        let msg = reg.resolve("no/such/file.spec").unwrap_err().to_string();
        assert!(msg.contains(".spec"));
    }

    #[test]
    fn registration_shadows_and_extends() {
        let mut reg = ScenarioRegistry::with_config(tiny_cfg());
        let count = reg.names().len();
        reg.register(
            "S1-specialization",
            "shadowed",
            crate::suite::s2_abrupt_shift,
        );
        assert_eq!(reg.names().len(), count, "shadowing does not duplicate");
        reg.register("custom", "embedder-provided", crate::suite::s4_scans);
        assert!(reg.contains("custom"));
        assert_eq!(reg.resolve("custom").unwrap().name, "S4-scans");
    }

    #[test]
    fn missing_file_is_a_positioned_error() {
        let err = ScenarioRegistry::load_file("/definitely/not/here.spec").unwrap_err();
        assert_eq!(err.line, 0);
        assert_eq!(err.field, "file");
    }
}
