//! The canonical scenario renderer: [`render_scenario`] turns any
//! [`Scenario`] value into spec text that parses back to an equal
//! scenario (`parse ∘ render = id`, property-tested in
//! `tests/scenario_spec.rs`).
//!
//! The renderer is deliberately explicit — every `[run]` knob, every
//! phase transition, every key range is spelled out even when it matches
//! a parser default — so a rendered file is also complete documentation
//! of what a scenario does. Floats are formatted with Rust's `{:?}`
//! (shortest representation that round-trips exactly), which is what
//! makes bit-identical re-parsing possible. Composer blocks are *not*
//! reconstructed: composers expand at parse time, so a rendered file
//! shows the concrete phase list a composer produced.

use super::parse::MIX_PRESETS;
use crate::faults::FaultSpec;
use crate::metrics::sla::SlaPolicy;
use crate::scenario::{OnlineTrainMode, Scenario};
use lsbench_workload::arrival::{ArrivalProcess, LoadModulation};
use lsbench_workload::keygen::KeyDistribution;
use lsbench_workload::ops::OperationMix;
use lsbench_workload::phases::{TransitionKind, WorkloadPhase};
use std::fmt::Write as _;

/// Formats a float so it re-parses to the exact same bits.
fn f(v: f64) -> String {
    format!("{v:?}")
}

fn push_distribution(out: &mut String, name_key: &str, prefix: &str, d: &KeyDistribution) {
    let _ = writeln!(out, "{name_key} = \"{}\"", d.canonical_name());
    match *d {
        KeyDistribution::Uniform => {}
        KeyDistribution::Zipf { theta } => {
            let _ = writeln!(out, "{prefix}theta = {}", f(theta));
        }
        KeyDistribution::Normal { center, std_frac } => {
            let _ = writeln!(out, "{prefix}center = {}", f(center));
            let _ = writeln!(out, "{prefix}std_frac = {}", f(std_frac));
        }
        KeyDistribution::LogNormal { mu, sigma } => {
            let _ = writeln!(out, "{prefix}mu = {}", f(mu));
            let _ = writeln!(out, "{prefix}sigma = {}", f(sigma));
        }
        KeyDistribution::Hotspot {
            hot_span,
            hot_fraction,
        } => {
            let _ = writeln!(out, "{prefix}hot_span = {}", f(hot_span));
            let _ = writeln!(out, "{prefix}hot_fraction = {}", f(hot_fraction));
        }
        KeyDistribution::Clustered {
            clusters,
            cluster_std_frac,
        } => {
            let _ = writeln!(out, "{prefix}clusters = {clusters}");
            let _ = writeln!(out, "{prefix}cluster_std_frac = {}", f(cluster_std_frac));
        }
        KeyDistribution::SequentialNoise { noise_frac } => {
            let _ = writeln!(out, "{prefix}noise_frac = {}", f(noise_frac));
        }
    }
}

fn push_mix(out: &mut String, mix: &OperationMix) {
    if let Some((name, _)) = MIX_PRESETS.iter().find(|(_, preset)| preset() == *mix) {
        let _ = writeln!(out, "mix = \"{name}\"");
        return;
    }
    for (key, weight) in [
        ("read", mix.read),
        ("insert", mix.insert),
        ("update", mix.update),
        ("scan", mix.scan),
        ("delete", mix.delete),
    ] {
        if weight != 0.0 {
            let _ = writeln!(out, "{key} = {}", f(weight));
        }
    }
    // A mix of all-zero weights is invalid, so at least one weight was
    // emitted above and the parser's "needs a mix" check is satisfied.
    if mix.max_scan_len != 0 {
        let _ = writeln!(out, "max_scan_len = {}", mix.max_scan_len);
    }
}

fn push_phase(
    out: &mut String,
    header: &str,
    phase: &WorkloadPhase,
    transition: Option<TransitionKind>,
) {
    let _ = writeln!(out, "\n[[{header}]]");
    let _ = writeln!(out, "name = \"{}\"", phase.name);
    match transition {
        None => {}
        Some(TransitionKind::Abrupt) => {
            let _ = writeln!(out, "transition = \"abrupt\"");
        }
        Some(TransitionKind::Gradual { window }) => {
            let _ = writeln!(out, "transition = \"gradual\"");
            let _ = writeln!(out, "window = {}", f(window));
        }
    }
    push_distribution(out, "distribution", "", &phase.distribution);
    let _ = writeln!(
        out,
        "key_range = [{}, {}]",
        phase.key_range.0, phase.key_range.1
    );
    push_mix(out, &phase.mix);
    let _ = writeln!(out, "ops = {}", phase.ops);
    if phase.concurrency_burst != 1.0 {
        let _ = writeln!(out, "concurrency_burst = {}", f(phase.concurrency_burst));
    }
}

/// Renders a scenario as canonical spec text.
///
/// Feeding the output back through
/// [`parse_scenario`](super::parse_scenario) yields a scenario equal to
/// the input (assuming phase names contain no `"` and the name is a
/// single line — true of everything the builder or parser accepts in
/// practice).
pub fn render_scenario(s: &Scenario) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "name = \"{}\"", s.name);
    let _ = writeln!(out, "seed = {}", s.workload.seed());

    let _ = writeln!(out, "\n[dataset]");
    push_distribution(&mut out, "distribution", "", &s.dataset.distribution);
    let _ = writeln!(
        out,
        "key_range = [{}, {}]",
        s.dataset.key_range.0, s.dataset.key_range.1
    );
    let _ = writeln!(out, "size = {}", s.dataset.size);
    let _ = writeln!(out, "seed = {}", s.dataset.seed);

    let _ = writeln!(out, "\n[sla]");
    match s.sla {
        SlaPolicy::FromBaselineP99 { multiplier } => {
            let _ = writeln!(out, "policy = \"baseline-p99\"");
            let _ = writeln!(out, "multiplier = {}", f(multiplier));
        }
        SlaPolicy::Fixed { threshold } => {
            let _ = writeln!(out, "policy = \"fixed\"");
            let _ = writeln!(out, "threshold = {}", f(threshold));
        }
    }

    let _ = writeln!(out, "\n[run]");
    if s.train_budget == u64::MAX {
        let _ = writeln!(out, "train_budget = \"unlimited\"");
    } else {
        let _ = writeln!(out, "train_budget = {}", s.train_budget);
    }
    let _ = writeln!(
        out,
        "work_units_per_second = {}",
        f(s.work_units_per_second)
    );
    let _ = writeln!(out, "maintenance_every = {}", s.maintenance_every);
    match s.online_train {
        OnlineTrainMode::Foreground => {
            let _ = writeln!(out, "online_train = \"foreground\"");
        }
        OnlineTrainMode::Background { fraction } => {
            let _ = writeln!(out, "online_train = \"background\"");
            let _ = writeln!(out, "train_fraction = {}", f(fraction));
        }
    }
    // Only when set, so pre-existing scenarios render byte-identically.
    if let Some(mode) = s.mode {
        let _ = writeln!(out, "mode = \"{}\"", mode.as_str());
    }
    if let Some(clock) = s.clock {
        let _ = writeln!(out, "clock = \"{}\"", clock.as_str());
    }
    if let Some(holdout) = &s.holdout {
        let _ = writeln!(out, "holdout_seed = {}", holdout.seed());
    }
    // Fault keys only when a plan is attached, so fault-free scenarios
    // render byte-identically to before faults existed.
    if let Some(plan) = &s.faults {
        let _ = writeln!(out, "fault_seed = {}", plan.seed);
        if let Some(t) = plan.policy.timeout {
            let _ = writeln!(out, "timeout = {}", f(t));
        }
        let _ = writeln!(out, "max_retries = {}", plan.policy.max_retries);
        let _ = writeln!(out, "backoff_base = {}", f(plan.policy.backoff_base));
        let _ = writeln!(
            out,
            "backoff_multiplier = {}",
            f(plan.policy.backoff_multiplier)
        );
    }

    if let Some(arrival) = &s.arrival {
        let _ = writeln!(out, "\n[arrival]");
        match arrival.process {
            ArrivalProcess::Poisson { rate } => {
                let _ = writeln!(out, "process = \"poisson\"");
                let _ = writeln!(out, "rate = {}", f(rate));
            }
            ArrivalProcess::Uniform { rate } => {
                let _ = writeln!(out, "process = \"uniform\"");
                let _ = writeln!(out, "rate = {}", f(rate));
            }
            // Unreachable on a validated scenario (closed loop is
            // `arrival: None`); render something re-parseable anyway.
            ArrivalProcess::ClosedLoop => {
                let _ = writeln!(out, "process = \"poisson\"");
                let _ = writeln!(out, "rate = 1.0");
            }
        }
        match arrival.modulation {
            LoadModulation::Constant => {
                let _ = writeln!(out, "modulation = \"constant\"");
            }
            LoadModulation::Diurnal { period, amplitude } => {
                let _ = writeln!(out, "modulation = \"diurnal\"");
                let _ = writeln!(out, "period = {}", f(period));
                let _ = writeln!(out, "amplitude = {}", f(amplitude));
            }
            LoadModulation::Burst {
                period,
                burst_len,
                multiplier,
            } => {
                let _ = writeln!(out, "modulation = \"burst\"");
                let _ = writeln!(out, "period = {}", f(period));
                let _ = writeln!(out, "burst_len = {}", f(burst_len));
                let _ = writeln!(out, "multiplier = {}", f(multiplier));
            }
        }
        let _ = writeln!(out, "seed = {}", arrival.seed);
    }

    // Rendered in full (never as the parser's `arrival = RATE` sugar):
    // the sugar normalizes at parse time, so round-tripping stays exact.
    if let Some(open_loop) = &s.open_loop {
        let _ = writeln!(out, "\n[open_loop]");
        let _ = writeln!(out, "clients = {}", open_loop.clients);
    }

    for (i, phase) in s.workload.phases().iter().enumerate() {
        let transition = (i > 0).then(|| s.workload.transitions()[i - 1]);
        push_phase(&mut out, "phase", phase, transition);
    }

    if let Some(holdout) = &s.holdout {
        for (i, phase) in holdout.phases().iter().enumerate() {
            let transition = (i > 0).then(|| holdout.transitions()[i - 1]);
            push_phase(&mut out, "holdout", phase, transition);
        }
    }

    if let Some(plan) = &s.faults {
        for fault in &plan.faults {
            let _ = writeln!(out, "\n[[fault]]");
            let _ = writeln!(out, "kind = \"{}\"", fault.kind());
            match fault {
                FaultSpec::TransientErrors { phase, rate } => {
                    if let Some(p) = phase {
                        let _ = writeln!(out, "phase = {p}");
                    }
                    let _ = writeln!(out, "rate = {}", f(*rate));
                }
                FaultSpec::LatencySpike {
                    phase,
                    add_work,
                    factor,
                } => {
                    if let Some(p) = phase {
                        let _ = writeln!(out, "phase = {p}");
                    }
                    let _ = writeln!(out, "add_work = {add_work}");
                    let _ = writeln!(out, "factor = {}", f(*factor));
                }
                FaultSpec::Stall {
                    phase,
                    from_op,
                    ops,
                    duration,
                } => {
                    let _ = writeln!(out, "phase = {phase}");
                    let _ = writeln!(out, "from_op = {from_op}");
                    let _ = writeln!(out, "ops = {ops}");
                    let _ = writeln!(out, "duration = {}", f(*duration));
                }
                FaultSpec::Crash { phase, at_op } => {
                    let _ = writeln!(out, "phase = {phase}");
                    let _ = writeln!(out, "at_op = {at_op}");
                }
            }
        }
    }

    out
}
