//! The standard benchmark suite.
//!
//! §V-A envisions the benchmark as "a common framework for executing
//! different scenarios" whose official results come from a fixed,
//! hold-out-bearing suite (possibly run as a service). This module defines
//! that suite: five standard scenarios covering the paper's dynamism axes
//! — specialization, abrupt and gradual shifts, write bursts, and bursty
//! open-loop load — plus a hold-out pass. Running a SUT through the suite
//! yields one [`SuiteResult`] combining every metric family, with the SLA
//! threshold calibrated per scenario from a B+-tree baseline run (as
//! §V-D.2 recommends).

use crate::metrics::adaptability::AdaptabilityReport;
use crate::metrics::sla::SlaReport;
use crate::obs::{MetricsRegistry, ObsConfig, SpanNode, TraceLog};
use crate::record::RunRecord;
use crate::runner::{BoxedKvSut, ExecutionMode, RunOptions, Runner};
use crate::scenario::{ArrivalSpec, DatasetSpec, Scenario};
use crate::{BenchError, Result};
use lsbench_sut::kv::BTreeSut;
use lsbench_workload::arrival::{ArrivalProcess, LoadModulation};
use lsbench_workload::dataset::Dataset;
use lsbench_workload::families::{LedgerGrowth, TemplatedRepetition};
use lsbench_workload::keygen::KeyDistribution;
use lsbench_workload::ops::OperationMix;
use lsbench_workload::phases::{PhasedWorkload, TransitionKind, WorkloadPhase};
use serde::{Deserialize, Serialize};

/// Scale configuration for the standard suite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuiteConfig {
    /// Keys in each scenario's dataset.
    pub dataset_size: usize,
    /// Operations per workload phase.
    pub ops_per_phase: u64,
    /// Master seed; every scenario derives its own seeds from it.
    pub seed: u64,
    /// Virtual work units per second.
    pub work_units_per_second: f64,
    /// Concurrency: `1` runs the serial driver; larger values split each
    /// scenario's key space into that many shards and run them through the
    /// concurrent engine ([`crate::engine`]) on as many worker threads.
    pub threads: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            dataset_size: 100_000,
            ops_per_phase: 10_000,
            seed: 0x5EED,
            work_units_per_second: 1_000_000.0,
            threads: 1,
        }
    }
}

const KEY_RANGE: (u64, u64) = (0, 10_000_000);

fn base_dataset(cfg: &SuiteConfig, salt: u64) -> DatasetSpec {
    DatasetSpec {
        distribution: KeyDistribution::LogNormal {
            mu: 0.0,
            sigma: 1.2,
        },
        key_range: KEY_RANGE,
        size: cfg.dataset_size,
        seed: cfg.seed ^ salt,
    }
}

fn phase(name: &str, d: KeyDistribution, mix: OperationMix, ops: u64) -> WorkloadPhase {
    WorkloadPhase::new(name, d, KEY_RANGE, mix, ops)
}

fn wrap(e: lsbench_workload::WorkloadError) -> BenchError {
    BenchError::Workload(e.to_string())
}

/// Shared suite defaults on top of [`Scenario::builder`]: the per-config
/// work rate and the suite's maintenance cadence.
fn suite_builder(name: &str, cfg: &SuiteConfig, salt: u64) -> crate::scenario::ScenarioBuilder {
    Scenario::builder(name)
        .dataset_spec(base_dataset(cfg, salt))
        .work_units_per_second(cfg.work_units_per_second)
        .maintenance_every(256)
}

/// S1: specialization sweep over four read distributions + hold-out.
pub fn s1_specialization(cfg: &SuiteConfig) -> Result<Scenario> {
    let ops = cfg.ops_per_phase;
    let workload = PhasedWorkload::new(
        vec![
            phase(
                "uniform",
                KeyDistribution::Uniform,
                OperationMix::ycsb_c(),
                ops,
            ),
            phase(
                "zipf",
                KeyDistribution::Zipf { theta: 1.1 },
                OperationMix::ycsb_c(),
                ops,
            ),
            phase(
                "hotspot",
                KeyDistribution::Hotspot {
                    hot_span: 0.05,
                    hot_fraction: 0.9,
                },
                OperationMix::ycsb_c(),
                ops,
            ),
            phase(
                "clustered",
                KeyDistribution::Clustered {
                    clusters: 4,
                    cluster_std_frac: 0.01,
                },
                OperationMix::ycsb_c(),
                ops,
            ),
        ],
        vec![TransitionKind::Abrupt; 3],
        cfg.seed ^ 0x51,
    )
    .map_err(wrap)?;
    let holdout = PhasedWorkload::single(
        phase(
            "holdout-tail",
            KeyDistribution::Normal {
                center: 0.92,
                std_frac: 0.02,
            },
            OperationMix::ycsb_c(),
            ops / 2,
        ),
        cfg.seed ^ 0x52,
    )
    .map_err(wrap)?;
    suite_builder("S1-specialization", cfg, 0x11)
        .workload(workload)
        .holdout(holdout)
        .build()
}

/// S2: abrupt distribution shift (reads).
pub fn s2_abrupt_shift(cfg: &SuiteConfig) -> Result<Scenario> {
    let ops = cfg.ops_per_phase;
    let workload = PhasedWorkload::new(
        vec![
            phase(
                "head",
                KeyDistribution::LogNormal {
                    mu: 0.0,
                    sigma: 1.2,
                },
                OperationMix::ycsb_c(),
                ops,
            ),
            phase(
                "tail",
                KeyDistribution::Normal {
                    center: 0.9,
                    std_frac: 0.03,
                },
                OperationMix::ycsb_c(),
                ops,
            ),
        ],
        vec![TransitionKind::Abrupt],
        cfg.seed ^ 0x53,
    )
    .map_err(wrap)?;
    suite_builder("S2-abrupt-shift", cfg, 0x22)
        .workload(workload)
        .build()
}

/// S3: gradual shift into a write-heavy phase (adaptation pressure).
pub fn s3_gradual_writes(cfg: &SuiteConfig) -> Result<Scenario> {
    let ops = cfg.ops_per_phase;
    let workload = PhasedWorkload::new(
        vec![
            phase(
                "reads",
                KeyDistribution::LogNormal {
                    mu: 0.0,
                    sigma: 1.2,
                },
                OperationMix::ycsb_c(),
                ops,
            ),
            phase(
                "mixed-writes",
                KeyDistribution::Normal {
                    center: 0.85,
                    std_frac: 0.04,
                },
                OperationMix {
                    read: 0.5,
                    insert: 0.5,
                    update: 0.0,
                    scan: 0.0,
                    delete: 0.0,
                    max_scan_len: 0,
                },
                ops,
            ),
        ],
        vec![TransitionKind::Gradual { window: 0.3 }],
        cfg.seed ^ 0x54,
    )
    .map_err(wrap)?;
    suite_builder("S3-gradual-writes", cfg, 0x33)
        .workload(workload)
        .build()
}

/// S4: scan-bearing mixed workload (YCSB-E flavour).
pub fn s4_scans(cfg: &SuiteConfig) -> Result<Scenario> {
    let ops = cfg.ops_per_phase;
    let workload = PhasedWorkload::new(
        vec![
            phase(
                "points",
                KeyDistribution::Zipf { theta: 0.99 },
                OperationMix::ycsb_b(),
                ops,
            ),
            phase(
                "scans",
                KeyDistribution::Zipf { theta: 0.99 },
                OperationMix::ycsb_e(),
                ops,
            ),
        ],
        vec![TransitionKind::Abrupt],
        cfg.seed ^ 0x55,
    )
    .map_err(wrap)?;
    suite_builder("S4-scans", cfg, 0x44)
        .workload(workload)
        .build()
}

/// S5: bursty open-loop load (diurnal + burst dynamics of §III-A).
pub fn s5_bursty_load(cfg: &SuiteConfig) -> Result<Scenario> {
    let ops = cfg.ops_per_phase;
    let workload = PhasedWorkload::single(
        phase(
            "steady-reads",
            KeyDistribution::LogNormal {
                mu: 0.0,
                sigma: 1.2,
            },
            OperationMix::ycsb_c(),
            ops * 2,
        ),
        cfg.seed ^ 0x56,
    )
    .map_err(wrap)?;
    suite_builder("S5-bursty-load", cfg, 0x66)
        .workload(workload)
        .arrival(ArrivalSpec {
            process: ArrivalProcess::Poisson {
                // ~60% of the slowest SUT's service rate, so the baseline
                // keeps up at steady state but every system queues during
                // the ×4 bursts.
                rate: cfg.work_units_per_second / 33.0,
            },
            modulation: LoadModulation::Burst {
                period: 0.2,
                burst_len: 0.04,
                multiplier: 4.0,
            },
            seed: cfg.seed ^ 0x57,
        })
        .build()
}

/// S6: templated query repetition with churn (Redbench dynamics).
pub fn s6_templated_repetition(cfg: &SuiteConfig) -> Result<Scenario> {
    let family = TemplatedRepetition {
        name: "templ".to_string(),
        steps: 4,
        ops_per_step: (cfg.ops_per_phase / 2).max(1),
        key_range: KEY_RANGE,
        mix: OperationMix::ycsb_c(),
        templates: 1_000,
        hot_templates: 50,
        theta: 1.1,
        churn: 0.5,
    };
    let (phases, transitions) = family
        .expand()
        .map_err(|e| BenchError::Workload(format!("templated_repetition: {e}")))?;
    let workload = PhasedWorkload::new(phases, transitions, cfg.seed ^ 0x58).map_err(wrap)?;
    suite_builder("S6-templated-repetition", cfg, 0x77)
        .workload(workload)
        .build()
}

/// S7: append-mostly ledger whose key distribution drifts as it grows
/// (CrypQ dynamics).
pub fn s7_ledger_growth(cfg: &SuiteConfig) -> Result<Scenario> {
    let family = LedgerGrowth {
        name: "ledger".to_string(),
        steps: 4,
        ops_per_step: (cfg.ops_per_phase / 2).max(1),
        key_range: KEY_RANGE,
        start_frac: 0.25,
        append_fraction: 0.3,
        recency: 0.1,
    };
    let (phases, transitions) = family
        .expand()
        .map_err(|e| BenchError::Workload(format!("ledger: {e}")))?;
    let workload = PhasedWorkload::new(phases, transitions, cfg.seed ^ 0x59).map_err(wrap)?;
    suite_builder("S7-ledger-growth", cfg, 0x88)
        .workload(workload)
        .build()
}

/// A built-in scenario generator: builds a [`Scenario`] at the given
/// [`SuiteConfig`] scale.
pub type ScenarioGen = fn(&SuiteConfig) -> Result<Scenario>;

/// The standard scenario builders with their registry names and one-line
/// descriptions, in suite order. [`standard_scenarios`] and the
/// [`ScenarioRegistry`](crate::spec::ScenarioRegistry) both derive from
/// this table, so the suite and name resolution can never drift apart.
pub const STANDARD_SCENARIOS: &[(&str, &str, ScenarioGen)] = &[
    (
        "S1-specialization",
        "specialization sweep over four read distributions + hold-out",
        s1_specialization,
    ),
    (
        "S2-abrupt-shift",
        "abrupt distribution shift (reads)",
        s2_abrupt_shift,
    ),
    (
        "S3-gradual-writes",
        "gradual shift into a write-heavy phase",
        s3_gradual_writes,
    ),
    ("S4-scans", "scan-bearing mixed workload (YCSB-E)", s4_scans),
    (
        "S5-bursty-load",
        "bursty open-loop load (Poisson + burst modulation)",
        s5_bursty_load,
    ),
    (
        "S6-templated-repetition",
        "hot query templates with Zipf popularity and churn (Redbench)",
        s6_templated_repetition,
    ),
    (
        "S7-ledger-growth",
        "append-mostly ledger with drifting key distribution (CrypQ)",
        s7_ledger_growth,
    ),
];

/// Builds the seven standard scenarios.
pub fn standard_scenarios(cfg: &SuiteConfig) -> Result<Vec<Scenario>> {
    STANDARD_SCENARIOS
        .iter()
        .map(|(_, _, build)| build(cfg))
        .collect()
}

/// One scenario's condensed results within a suite run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSummary {
    /// Scenario name.
    pub scenario: String,
    /// Classic average throughput (ops/s).
    pub mean_throughput: f64,
    /// Normalized area vs. the ideal constant-throughput system (Fig. 1b).
    pub normalized_area: f64,
    /// SLA violation fraction against the B+-tree-calibrated threshold.
    pub violation_fraction: f64,
    /// Worst adjustment speed across phase changes (Fig. 1c single value).
    pub adjustment_speed: f64,
    /// Offline training seconds (Lesson 3).
    pub train_seconds: f64,
    /// Failed/unsupported operations.
    pub failures: usize,
    /// Out-of-sample generalization ratio, when the scenario has a hold-out.
    pub generalization: Option<f64>,
    /// Observability metrics collected during the run (counters, gauges,
    /// per-interval latency histograms). Deterministic: metrics ride the
    /// virtual clock, so repeated runs produce identical registries.
    pub metrics: MetricsRegistry,
}

/// A complete suite result for one SUT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteResult {
    /// SUT display name.
    pub sut_name: String,
    /// Per-scenario summaries, in suite order.
    pub summaries: Vec<ScenarioSummary>,
}

/// Interval count used for SLA bands inside the suite.
const SLA_INTERVALS: f64 = 40.0;
/// N for the adjustment-speed metric inside the suite.
const ADJUSTMENT_N: usize = 2_000;

/// Observation artifacts from one suite run, beyond the summaries: the
/// per-scenario event traces and wall-clock span trees requested via the
/// [`ObsConfig`] handed to [`run_suite_observed`]. Both vectors pair each
/// artifact with its scenario name and are empty when the corresponding
/// feature was off.
#[derive(Debug, Default)]
pub struct SuiteObservation {
    /// `(scenario name, trace)` per scenario, when tracing was on.
    pub traces: Vec<(String, TraceLog)>,
    /// `(scenario name, span tree)` per scenario, when spans were on.
    pub spans: Vec<(String, Vec<SpanNode>)>,
    /// `(scenario name, complete run record)` per scenario — always
    /// populated, so suite runs can be archived into the results store
    /// (`lsbench suite --save`) without re-running anything.
    pub records: Vec<(String, RunRecord)>,
}

/// Runs one SUT (built fresh per scenario by `factory`) through the
/// standard suite.
///
/// For every scenario a B+-tree baseline is run first to calibrate the SLA
/// threshold, so violation fractions are comparable across SUTs. With
/// [`SuiteConfig::threads`] greater than one, both the baseline and the
/// SUT run key-range-sharded through the concurrent engine (one SUT
/// instance per shard, built by the same factory), and the SLA threshold
/// is calibrated against the equally-sharded baseline so the comparison
/// stays apples-to-apples.
///
/// Equivalent to [`run_suite_observed`] with the default (metrics-only)
/// observability configuration, discarding the observation artifacts.
pub fn run_suite<F>(factory: F, cfg: &SuiteConfig) -> Result<SuiteResult>
where
    F: FnMut(&Dataset) -> Result<BoxedKvSut>,
{
    run_suite_observed(factory, cfg, ObsConfig::default()).map(|(result, _)| result)
}

/// [`run_suite`] with explicit observability: `obs` applies to every
/// scenario's main run (baseline calibration runs stay metrics-only), and
/// the collected traces and spans come back in [`SuiteObservation`].
pub fn run_suite_observed<F>(
    factory: F,
    cfg: &SuiteConfig,
    obs: ObsConfig,
) -> Result<(SuiteResult, SuiteObservation)>
where
    F: FnMut(&Dataset) -> Result<BoxedKvSut>,
{
    let scenarios = standard_scenarios(cfg)?;
    run_scenarios_observed(factory, &scenarios, cfg.threads, obs)
}

/// Runs one SUT through an arbitrary scenario list — the suite pipeline
/// (per-scenario B+-tree SLA calibration, identical execution shape,
/// [`ScenarioSummary`] per scenario) applied to scenarios from any source:
/// the built-in suite, a [`ScenarioRegistry`](crate::spec::ScenarioRegistry)
/// resolution, or parsed `scenarios/*.spec` files.
pub fn run_scenarios<F>(factory: F, scenarios: &[Scenario], threads: usize) -> Result<SuiteResult>
where
    F: FnMut(&Dataset) -> Result<BoxedKvSut>,
{
    run_scenarios_observed(factory, scenarios, threads, ObsConfig::default()).map(|(r, _)| r)
}

/// [`run_scenarios`] with explicit observability (see
/// [`run_suite_observed`] for the semantics of `obs`).
pub fn run_scenarios_observed<F>(
    mut factory: F,
    scenarios: &[Scenario],
    threads: usize,
    obs: ObsConfig,
) -> Result<(SuiteResult, SuiteObservation)>
where
    F: FnMut(&Dataset) -> Result<BoxedKvSut>,
{
    if threads == 0 {
        return Err(BenchError::InvalidScenario(
            "suite threads must be at least 1".to_string(),
        ));
    }
    let mut summaries = Vec::with_capacity(scenarios.len());
    let mut observation = SuiteObservation::default();
    let mut sut_name = String::new();
    // Suite semantics are unchanged: threads > 1 key-range-shards every
    // scenario, threads <= 1 runs the serial driver.
    let mode = if threads > 1 {
        ExecutionMode::Sharded { workers: threads }
    } else {
        ExecutionMode::Serial
    };
    for scenario in scenarios {
        // Baseline calibration run: same execution shape (serial or
        // sharded), no hold-out, metrics-only observation.
        let baseline = Runner::from_factory(|data: &Dataset| {
            BTreeSut::build(data)
                .map(|s| Box::new(s) as BoxedKvSut)
                .map_err(|e| BenchError::Sut(e.to_string()))
        })
        .config(RunOptions::with_mode(mode))
        .run(scenario)?;
        let threshold = scenario.sla.resolve(Some(&baseline.record))?;

        let opts = RunOptions {
            holdout: scenario.holdout.is_some(),
            obs,
            ..RunOptions::with_mode(mode)
        };
        let outcome = Runner::from_factory(&mut factory)
            .config(opts)
            .run(scenario)?;
        let generalization = outcome
            .holdout
            .as_ref()
            .map(|(_, cmp)| cmp.generalization_ratio);
        if let Some(trace) = outcome.trace {
            observation.traces.push((scenario.name.clone(), trace));
        }
        if !outcome.spans.is_empty() {
            observation
                .spans
                .push((scenario.name.clone(), outcome.spans));
        }
        sut_name = outcome.record.sut_name.clone();
        summaries.push(summarize(
            &outcome.record,
            threshold,
            generalization,
            outcome.metrics,
        )?);
        observation
            .records
            .push((scenario.name.clone(), outcome.record));
    }
    Ok((
        SuiteResult {
            sut_name,
            summaries,
        },
        observation,
    ))
}

fn summarize(
    record: &RunRecord,
    threshold: f64,
    generalization: Option<f64>,
    metrics: MetricsRegistry,
) -> Result<ScenarioSummary> {
    let adapt = AdaptabilityReport::from_record(record)?;
    let interval = (record.exec_duration() / SLA_INTERVALS).max(f64::MIN_POSITIVE);
    let sla = SlaReport::from_record(record, threshold, interval, ADJUSTMENT_N)?;
    let adjustment_speed = sla
        .adjustment_speed
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0, f64::max);
    Ok(ScenarioSummary {
        scenario: record.scenario_name.clone(),
        mean_throughput: record.mean_throughput(),
        normalized_area: adapt.normalized_area,
        violation_fraction: sla.violation_fraction,
        adjustment_speed,
        train_seconds: record.train.seconds,
        failures: record.failures(),
        generalization,
        metrics,
    })
}

/// Renders a cross-SUT comparison table over suite results.
pub fn render_comparison(results: &[SuiteResult]) -> String {
    let mut out = String::new();
    if results.is_empty() {
        return out;
    }
    for (i, scenario) in results[0].summaries.iter().enumerate() {
        out.push_str(&format!("== {} ==\n", scenario.scenario));
        out.push_str(
            "  SUT                 ops/s    norm-area  viol%   adjust-s  train-s  fail  general\n",
        );
        for r in results {
            let Some(s) = r.summaries.get(i) else {
                continue;
            };
            out.push_str(&format!(
                "  {:<18} {:>8.0} {:>11.4} {:>6.2} {:>10.4} {:>8.3} {:>5} {:>8}\n",
                r.sut_name,
                s.mean_throughput,
                s.normalized_area,
                s.violation_fraction * 100.0,
                s.adjustment_speed,
                s.train_seconds,
                s.failures,
                s.generalization
                    .map(|g| format!("{g:.3}"))
                    .unwrap_or_else(|| "-".to_string()),
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsbench_sut::kv::{BTreeSut, RetrainPolicy, RmiSut};

    fn tiny() -> SuiteConfig {
        SuiteConfig {
            dataset_size: 4_000,
            ops_per_phase: 600,
            seed: 1,
            work_units_per_second: 1_000_000.0,
            threads: 1,
        }
    }

    #[test]
    fn standard_scenarios_are_valid() {
        let scenarios = standard_scenarios(&tiny()).unwrap();
        assert_eq!(scenarios.len(), 7);
        for s in &scenarios {
            s.validate().unwrap();
        }
        // S1 carries the hold-out; S5 is open loop.
        assert!(scenarios[0].holdout.is_some());
        assert!(scenarios[4].arrival.is_some());
    }

    #[test]
    fn suite_runs_for_learned_and_traditional() {
        let cfg = tiny();
        let rmi = run_suite(
            |data| {
                Ok(Box::new(
                    RmiSut::build("rmi", data, RetrainPolicy::DeltaFraction(0.05))
                        .map_err(|e| crate::BenchError::Sut(e.to_string()))?,
                ))
            },
            &cfg,
        )
        .unwrap();
        let btree = run_suite(
            |data| {
                Ok(Box::new(
                    BTreeSut::build(data).map_err(|e| crate::BenchError::Sut(e.to_string()))?,
                ))
            },
            &cfg,
        )
        .unwrap();
        assert_eq!(rmi.summaries.len(), 7);
        assert_eq!(btree.summaries.len(), 7);
        assert_eq!(rmi.sut_name, "rmi");
        // Only S1 has a generalization ratio.
        assert!(rmi.summaries[0].generalization.is_some());
        assert!(rmi.summaries[1].generalization.is_none());
        // Learned SUT trains, traditional does not.
        assert!(rmi.summaries.iter().all(|s| s.train_seconds > 0.0));
        assert!(btree.summaries.iter().all(|s| s.train_seconds == 0.0));
        // Comparison renders every scenario once.
        let table = render_comparison(&[rmi.clone(), btree]);
        assert_eq!(table.matches("== S").count(), 7);
        assert!(table.contains("rmi"));
        assert!(table.contains("btree"));
        // JSON round trip.
        let json = serde_json::to_string(&rmi).unwrap();
        let back: SuiteResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rmi);
    }

    #[test]
    fn concurrent_suite_matches_schema_and_scales() {
        let serial = tiny();
        let sharded = SuiteConfig {
            threads: 4,
            ..serial
        };
        let factory = |data: &Dataset| {
            Ok(
                Box::new(BTreeSut::build(data).map_err(|e| crate::BenchError::Sut(e.to_string()))?)
                    as BoxedKvSut,
            )
        };
        let one = run_suite(factory, &serial).unwrap();
        let four = run_suite(factory, &sharded).unwrap();
        // Identical result schema: same scenarios, same metric families.
        assert_eq!(one.summaries.len(), four.summaries.len());
        for (a, b) in one.summaries.iter().zip(&four.summaries) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.generalization.is_some(), b.generalization.is_some());
        }
        // Read-heavy closed-loop scenarios gain aggregate throughput from
        // the extra lanes (S2 is pure reads).
        assert!(
            four.summaries[1].mean_throughput > one.summaries[1].mean_throughput,
            "threads=4 {} vs threads=1 {}",
            four.summaries[1].mean_throughput,
            one.summaries[1].mean_throughput
        );
        // Degenerate thread count is rejected.
        assert!(run_suite(
            factory,
            &SuiteConfig {
                threads: 0,
                ..serial
            }
        )
        .is_err());
    }

    #[test]
    fn observed_suite_collects_metrics_and_traces() {
        let cfg = tiny();
        let factory = |data: &Dataset| {
            Ok(
                Box::new(BTreeSut::build(data).map_err(|e| crate::BenchError::Sut(e.to_string()))?)
                    as BoxedKvSut,
            )
        };
        let (result, observation) = run_suite_observed(factory, &cfg, ObsConfig::traced()).unwrap();
        assert_eq!(observation.traces.len(), result.summaries.len());
        assert_eq!(observation.spans.len(), result.summaries.len());
        for (summary, (name, trace)) in result.summaries.iter().zip(&observation.traces) {
            assert_eq!(&summary.scenario, name);
            assert!(summary.metrics.counter("ops_completed") > 0);
            assert_eq!(trace.count_kind("run_end"), 1);
        }
        // Tracing never alters results: summaries (metrics included) match
        // an untraced suite run exactly.
        let untraced = run_suite(factory, &cfg).unwrap();
        assert_eq!(untraced, result);
    }

    #[test]
    fn suite_deterministic() {
        let cfg = tiny();
        let run = || {
            run_suite(
                |data| {
                    Ok(Box::new(
                        RmiSut::build("rmi", data, RetrainPolicy::DeltaFraction(0.05))
                            .map_err(|e| crate::BenchError::Sut(e.to_string()))?,
                    ))
                },
                &cfg,
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }
}
