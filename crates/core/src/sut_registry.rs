//! Name → constructor registry for systems under test.
//!
//! The CLI, the standard suite, and the criterion benches all need to turn
//! a SUT name (`"btree"`, `"rmi"`, …) into a boxed
//! [`SystemUnderTest`](lsbench_sut::sut::SystemUnderTest)
//! built over a dataset. Before this registry each of them carried its own
//! stringly-typed `match`, and the lists drifted. [`SutRegistry`] is the
//! single source of truth: [`SutRegistry::default`] knows every built-in
//! system, `lsbench list` prints it, and downstream code resolves through
//! [`SutRegistry::build`] or hands [`SutRegistry::factory`] straight to a
//! [`Runner`](crate::runner::Runner) or [`run_suite`](crate::suite::run_suite).
//!
//! Registration is open: embedders can [`SutRegistry::register`] their own
//! systems and they show up everywhere names are resolved.

use crate::runner::BoxedKvSut;
use crate::{BenchError, Result};
use lsbench_sut::kv::{
    AlexSut, BTreeSut, HashSut, PgmSut, RetrainPolicy, RmiSut, SortedArraySut, SplineSut,
};
use lsbench_workload::dataset::Dataset;

/// A registered SUT constructor.
type Ctor = Box<dyn Fn(&Dataset) -> Result<BoxedKvSut> + Send + Sync>;

/// One registry entry: a name, a one-line description, and a constructor.
struct SutEntry {
    name: String,
    description: String,
    ctor: Ctor,
}

/// Registry of named SUT constructors. See the [module docs](self).
pub struct SutRegistry {
    entries: Vec<SutEntry>,
}

/// Learned indexes retrain when 5% of their keys have changed — the same
/// policy the paper's adaptability figures use.
const DEFAULT_RETRAIN: RetrainPolicy = RetrainPolicy::DeltaFraction(0.05);

fn sut_err(e: lsbench_sut::SutError) -> BenchError {
    BenchError::Sut(e.to_string())
}

impl Default for SutRegistry {
    /// The built-in systems, in canonical presentation order: the
    /// traditional baselines first, then the learned indexes.
    fn default() -> Self {
        let mut reg = SutRegistry::empty();
        reg.register("btree", "B-tree index (traditional baseline)", |data| {
            Ok(Box::new(BTreeSut::build(data).map_err(sut_err)?))
        });
        reg.register("sorted-array", "sorted array with binary search", |data| {
            Ok(Box::new(SortedArraySut::build(data).map_err(sut_err)?))
        });
        reg.register("hash", "hash table (no range scans)", |data| {
            Ok(Box::new(HashSut::build(data).map_err(sut_err)?))
        });
        reg.register("alex", "ALEX-style adaptive learned index", |data| {
            Ok(Box::new(AlexSut::build(data).map_err(sut_err)?))
        });
        reg.register("rmi", "recursive model index (learned)", |data| {
            Ok(Box::new(
                RmiSut::build("rmi", data, DEFAULT_RETRAIN).map_err(sut_err)?,
            ))
        });
        reg.register("pgm", "piecewise geometric model index (learned)", |data| {
            Ok(Box::new(
                PgmSut::build("pgm", data, DEFAULT_RETRAIN).map_err(sut_err)?,
            ))
        });
        reg.register("spline", "radix spline index (learned)", |data| {
            Ok(Box::new(
                SplineSut::build("spline", data, DEFAULT_RETRAIN).map_err(sut_err)?,
            ))
        });
        reg
    }
}

impl SutRegistry {
    /// An empty registry (no built-ins). Use [`SutRegistry::default`] for
    /// the standard set.
    pub fn empty() -> Self {
        SutRegistry {
            entries: Vec::new(),
        }
    }

    /// Registers (or replaces) a named constructor. Later registrations
    /// with the same name win, so embedders can shadow built-ins.
    pub fn register<F>(&mut self, name: &str, description: &str, ctor: F)
    where
        F: Fn(&Dataset) -> Result<BoxedKvSut> + Send + Sync + 'static,
    {
        self.entries.retain(|e| e.name != name);
        self.entries.push(SutEntry {
            name: name.to_string(),
            description: description.to_string(),
            ctor: Box::new(ctor),
        });
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// `(name, description)` pairs in registration order, for `lsbench
    /// list` and similar displays.
    pub fn descriptions(&self) -> Vec<(&str, &str)> {
        self.entries
            .iter()
            .map(|e| (e.name.as_str(), e.description.as_str()))
            .collect()
    }

    /// Builds the named SUT over `data`. Unknown names report the
    /// registered alternatives.
    pub fn build(&self, name: &str, data: &Dataset) -> Result<BoxedKvSut> {
        match self.entries.iter().find(|e| e.name == name) {
            Some(entry) => (entry.ctor)(data),
            None => Err(BenchError::InvalidScenario(format!(
                "unknown SUT '{name}' (registered: {})",
                self.names().join(", ")
            ))),
        }
    }

    /// A borrowing factory closure for the named SUT, suitable for
    /// [`Runner::from_factory`](crate::runner::Runner::from_factory) and
    /// [`run_suite`](crate::suite::run_suite). Fails fast on unknown names
    /// instead of failing at first build.
    pub fn factory<'a>(
        &'a self,
        name: &'a str,
    ) -> Result<impl Fn(&Dataset) -> Result<BoxedKvSut> + 'a> {
        if !self.contains(name) {
            return Err(BenchError::InvalidScenario(format!(
                "unknown SUT '{name}' (registered: {})",
                self.names().join(", ")
            )));
        }
        Ok(move |data: &Dataset| self.build(name, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsbench_workload::keygen::KeyDistribution;

    fn small_dataset() -> Dataset {
        Dataset::generate(KeyDistribution::Uniform, 0, 1_000_000, 1_000, 7).unwrap()
    }

    #[test]
    fn default_registry_builds_every_built_in() {
        let reg = SutRegistry::default();
        let data = small_dataset();
        assert_eq!(
            reg.names(),
            [
                "btree",
                "sorted-array",
                "hash",
                "alex",
                "rmi",
                "pgm",
                "spline"
            ]
        );
        for name in reg.names() {
            let sut = reg.build(name, &data).unwrap();
            assert!(!sut.name().is_empty(), "{name} built");
        }
    }

    #[test]
    fn unknown_name_lists_alternatives() {
        let reg = SutRegistry::default();
        let Err(err) = reg.build("flux-capacitor", &small_dataset()) else {
            panic!("unknown name must not build");
        };
        let msg = err.to_string();
        assert!(msg.contains("flux-capacitor"));
        assert!(msg.contains("btree"));
        assert!(reg.factory("flux-capacitor").is_err());
    }

    #[test]
    fn registration_shadows_and_extends() {
        let mut reg = SutRegistry::default();
        let count = reg.names().len();
        reg.register("btree", "shadowed baseline", |data| {
            Ok(Box::new(
                BTreeSut::build(data).map_err(|e| BenchError::Sut(e.to_string()))?,
            ))
        });
        assert_eq!(reg.names().len(), count, "shadowing does not duplicate");
        reg.register("custom", "embedder-provided", |data| {
            Ok(Box::new(
                BTreeSut::build(data).map_err(|e| BenchError::Sut(e.to_string()))?,
            ))
        });
        assert!(reg.contains("custom"));
        let factory = reg.factory("custom").unwrap();
        assert!(factory(&small_dataset()).is_ok());
    }
}
