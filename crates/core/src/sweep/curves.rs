//! Per-SUT metric curves over the α grid, plus the theory overlay.
//!
//! Each sweep cell (one SUT at one rung) yields the four headline
//! figures as scalars: Fig. 1b adaptability area, Fig. 1c adjustment
//! speed and SLA violation rate, and Fig. 1a specialization spread.
//! Stringing the cells of one SUT along the grid gives a [`SweepCurve`].
//!
//! The *theory overlay* comes from Zeighami & Shahabi's
//! distribution-learnability results: for a learnable distribution
//! family, a learned structure's error grows at most proportionally
//! with the distribution shift, so each metric's linear interpolation
//! between its own α-endpoints is the reference slope. A SUT whose
//! measured curve bows *past* that line degrades faster than the bound
//! predicts for a well-behaved learner — [`bound_flags`] marks those
//! rungs.

use crate::metrics::adaptability::AdaptabilityReport;
use crate::metrics::phi::{distribution_phis, DataPhiMethod};
use crate::metrics::sla::SlaReport;
use crate::metrics::specialization::SpecializationReport;
use crate::record::RunRecord;
use crate::scenario::Scenario;
use crate::sweep::drift::lerp;
use crate::{BenchError, Result};
use serde::{Deserialize, Serialize};

/// Interval count used for SLA bands per sweep cell (mirrors the suite).
const SLA_INTERVALS: f64 = 40.0;
/// N for the adjustment-speed metric per sweep cell (mirrors the suite).
const ADJUSTMENT_N: usize = 2_000;

/// One sweep cell: every headline metric at one drift intensity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Drift intensity of this rung.
    pub alpha: f64,
    /// Fig. 1b normalized area vs. the ideal curve (higher is better).
    pub adaptability_area: f64,
    /// Fig. 1c adjustment speed: worst Σ over-SLA latency over the first
    /// N queries after any phase change (lower is better).
    pub adjustment_speed: f64,
    /// Fig. 1c fraction of completions over the SLA (lower is better).
    pub sla_violation_rate: f64,
    /// Fig. 1a worst/best per-phase median-throughput ratio (closer to 1
    /// is better; large values mean the SUT over-specialized).
    pub specialization_spread: f64,
}

/// One SUT's metric curve along the α grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCurve {
    /// SUT display name.
    pub sut: String,
    /// One point per rung, in grid order.
    pub points: Vec<SweepPoint>,
}

/// One curve metric: display name, accessor, and whether higher values
/// are better (drives the degradation direction of the overlay).
pub(crate) type MetricSpec = (&'static str, fn(&SweepPoint) -> f64, bool);

/// The four curve metrics rendered and flagged per sweep.
pub(crate) const METRICS: [MetricSpec; 4] = [
    ("adaptability area", |p| p.adaptability_area, true),
    ("adjustment speed", |p| p.adjustment_speed, false),
    ("SLA violation rate", |p| p.sla_violation_rate, false),
    ("specialization spread", |p| p.specialization_spread, false),
];

/// Derives one SUT's [`SweepCurve`] from the per-rung run records.
///
/// `rungs` and `records` are parallel to `alphas`. The SLA threshold is
/// resolved once against the α = 0 record — the no-drift control run is
/// the natural baseline for `FromBaselineP99` policies, so every rung is
/// judged against the same bar.
pub fn sweep_curve(
    sut: &str,
    alphas: &[f64],
    rungs: &[Scenario],
    records: &[RunRecord],
) -> Result<SweepCurve> {
    if alphas.len() != rungs.len() || alphas.len() != records.len() || alphas.is_empty() {
        return Err(BenchError::Metric(format!(
            "sweep curve needs matching non-empty grids (alphas {}, rungs {}, records {})",
            alphas.len(),
            rungs.len(),
            records.len()
        )));
    }
    let threshold = rungs[0].sla.resolve(Some(&records[0]))?;
    let mut points = Vec::with_capacity(alphas.len());
    for ((&alpha, rung), record) in alphas.iter().zip(rungs).zip(records) {
        let adapt = AdaptabilityReport::from_record(record)?;
        let interval = (record.exec_duration() / SLA_INTERVALS).max(f64::MIN_POSITIVE);
        let sla = SlaReport::from_record(record, threshold, interval, ADJUSTMENT_N)?;
        let adjustment_speed = sla
            .adjustment_speed
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0, f64::max);
        points.push(SweepPoint {
            alpha,
            adaptability_area: adapt.normalized_area,
            adjustment_speed,
            sla_violation_rate: sla.violation_fraction,
            specialization_spread: specialization_spread(rung, record)?,
        });
    }
    Ok(SweepCurve {
        sut: sut.to_string(),
        points,
    })
}

/// Fig. 1a spread for one cell: worst/best per-phase median throughput,
/// with the Φ axis sampled from the rung's own distributions. Degenerate
/// cells (single phase, or windows too small to compare) report 1.0 —
/// no spread.
fn specialization_spread(rung: &Scenario, record: &RunRecord) -> Result<f64> {
    let phases = rung.workload.phases();
    let dists: Vec<_> = phases.iter().map(|p| p.distribution.clone()).collect();
    let phis = distribution_phis(
        &dists,
        phases[0].key_range,
        DataPhiMethod::KolmogorovSmirnov,
        rung.workload.seed(),
    )?;
    let min_ops = phases.iter().map(|p| p.ops).min().unwrap_or(2);
    let ops_per_window = (min_ops / 8).clamp(2, 200) as usize;
    Ok(
        SpecializationReport::from_record(record, &phis, ops_per_window, &[])
            .ok()
            .and_then(|r| r.worst_to_best_ratio())
            .unwrap_or(1.0),
    )
}

/// The linear degradation reference for one metric along a curve: the
/// straight line between the metric's own α-endpoints, evaluated at each
/// grid α (endpoint-exact like everything else on the axis).
pub(crate) fn linear_reference(points: &[SweepPoint], metric: fn(&SweepPoint) -> f64) -> Vec<f64> {
    let (first, last) = match (points.first(), points.last()) {
        (Some(f), Some(l)) => (f, l),
        _ => return Vec::new(),
    };
    let (a0, a1) = (first.alpha, last.alpha);
    let (m0, m1) = (metric(first), metric(last));
    let span = a1 - a0;
    points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if i == 0 || span <= 0.0 {
                m0
            } else if i == points.len() - 1 {
                m1
            } else {
                lerp(m0, m1, (p.alpha - a0) / span)
            }
        })
        .collect()
}

/// A rung where a SUT's measured metric degrades further than the linear
/// shift bound predicts (by more than the 10% tolerance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundFlag {
    /// SUT the flag applies to.
    pub sut: String,
    /// Which metric bowed past the bound.
    pub metric: String,
    /// The rung's drift intensity.
    pub alpha: f64,
    /// How far past the reference line the measurement sits, as a
    /// fraction of the metric's endpoint-to-endpoint magnitude.
    pub excess_frac: f64,
}

/// Tolerated deviation from the reference line before a rung is flagged,
/// as a fraction of the metric's endpoint scale.
const BOUND_TOLERANCE: f64 = 0.10;

/// Flags every (metric, rung) of `curve` whose measured value is worse
/// than the linear reference by more than the tolerance. Endpoints can
/// never flag — the reference passes through them by construction.
pub fn bound_flags(curve: &SweepCurve) -> Vec<BoundFlag> {
    let mut flags = Vec::new();
    for (name, metric, higher_is_better) in METRICS {
        let reference = linear_reference(&curve.points, metric);
        let (m0, m1) = match (reference.first(), reference.last()) {
            (Some(&m0), Some(&m1)) => (m0, m1),
            _ => continue,
        };
        let scale = (m1 - m0).abs().max(m0.abs()).max(1e-9);
        for (p, &r) in curve.points.iter().zip(&reference) {
            let measured = metric(p);
            let deviation = if higher_is_better {
                r - measured
            } else {
                measured - r
            };
            let excess_frac = deviation / scale;
            if excess_frac > BOUND_TOLERANCE {
                flags.push(BoundFlag {
                    sut: curve.sut.clone(),
                    metric: name.to_string(),
                    alpha: p.alpha,
                    excess_frac,
                });
            }
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(alpha: f64, area: f64, speed: f64) -> SweepPoint {
        SweepPoint {
            alpha,
            adaptability_area: area,
            adjustment_speed: speed,
            sla_violation_rate: 0.0,
            specialization_spread: 1.0,
        }
    }

    #[test]
    fn linear_reference_is_endpoint_exact() {
        let points = vec![
            point(0.0, -0.1, 0.0),
            point(0.5, -0.9, 0.0),
            point(1.0, -0.3, 0.0),
        ];
        let reference = linear_reference(&points, |p| p.adaptability_area);
        assert_eq!(reference[0], -0.1);
        assert_eq!(reference[2], -0.3);
        assert!((reference[1] - -0.2).abs() < 1e-12);
    }

    #[test]
    fn bowing_past_the_bound_flags_the_rung_in_the_right_direction() {
        // Adaptability (higher is better) collapses mid-curve.
        let curve = SweepCurve {
            sut: "rmi".to_string(),
            points: vec![
                point(0.0, 0.0, 0.0),
                point(0.5, -0.9, 0.0),
                point(1.0, -0.3, 0.0),
            ],
        };
        let flags = bound_flags(&curve);
        assert!(flags
            .iter()
            .any(|f| f.metric == "adaptability area" && f.alpha == 0.5 && f.excess_frac > 0.0));
        // A curve that degrades exactly linearly never flags.
        let linear = SweepCurve {
            sut: "btree".to_string(),
            points: vec![
                point(0.0, 0.0, 1.0),
                point(0.5, -0.15, 2.0),
                point(1.0, -0.3, 3.0),
            ],
        };
        assert!(bound_flags(&linear).is_empty());
        // Lower-is-better metrics flag when they spike *above* the line.
        let spiky = SweepCurve {
            sut: "alex".to_string(),
            points: vec![
                point(0.0, 0.0, 1.0),
                point(0.5, -0.15, 9.0),
                point(1.0, -0.3, 3.0),
            ],
        };
        assert!(bound_flags(&spiky)
            .iter()
            .all(|f| f.metric == "adjustment speed"));
        assert_eq!(bound_flags(&spiky).len(), 1);
    }

    #[test]
    fn mismatched_grid_lengths_are_an_error() {
        let err = sweep_curve("x", &[0.0, 1.0], &[], &[]).unwrap_err();
        assert!(matches!(err, BenchError::Metric(_)));
    }
}
