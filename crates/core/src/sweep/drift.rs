//! The shared drift primitive: endpoint-exact interpolation between two
//! workload phases at intensity α.
//!
//! A [`DriftAxis`] owns a *base* and a *target* phase of the same
//! distribution shape and produces the phase at any α ∈ [0, 1].
//! `at(0.0)` returns the base and `at(1.0)` the target **exactly** — not
//! "up to floating-point": the endpoints are clamped to clones, because
//! `a + (b − a) · 1.0` is not bitwise `b` in IEEE arithmetic. Interior
//! points use plain linear interpolation (`a + (b − a) · t`), which is
//! precisely the arithmetic the original per-composer code used, so
//! refactoring the composers onto this axis keeps their interior
//! expansions bit-identical.

use lsbench_workload::keygen::KeyDistribution;
use lsbench_workload::ops::OperationMix;
use lsbench_workload::phases::WorkloadPhase;

/// Unclamped linear interpolation `a + (b − a) · t`.
///
/// At `t = 0` this is exactly `a` (adding a signed zero never changes a
/// nonzero value); at `t = 1` it may differ from `b` by an ulp, which is
/// why [`DriftAxis::at`] clamps the endpoints instead of evaluating them.
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Linear interpolation position of step `i` among `steps` (0 at the
/// first step, 1 at the last; 0 for a single step).
pub fn lerp_t(i: u64, steps: u64) -> f64 {
    if steps <= 1 {
        0.0
    } else {
        i as f64 / (steps - 1) as f64
    }
}

/// Interpolates two same-shape distributions at `t ∈ [0, 1]`.
///
/// Every numeric parameter is lerped; the integer `clusters` parameter is
/// lerped and rounded. Mismatched shapes are an error — a jump between
/// shapes is what `transition = "gradual"` on an explicit phase is for.
pub fn interpolate_distribution(
    from: &KeyDistribution,
    to: &KeyDistribution,
    t: f64,
) -> Result<KeyDistribution, String> {
    use KeyDistribution as D;
    match (from, to) {
        (D::Uniform, D::Uniform) => Ok(D::Uniform),
        (D::Zipf { theta: a }, D::Zipf { theta: b }) => Ok(D::Zipf {
            theta: lerp(*a, *b, t),
        }),
        (
            D::Normal {
                center: c1,
                std_frac: s1,
            },
            D::Normal {
                center: c2,
                std_frac: s2,
            },
        ) => Ok(D::Normal {
            center: lerp(*c1, *c2, t),
            std_frac: lerp(*s1, *s2, t),
        }),
        (D::LogNormal { mu: m1, sigma: s1 }, D::LogNormal { mu: m2, sigma: s2 }) => {
            Ok(D::LogNormal {
                mu: lerp(*m1, *m2, t),
                sigma: lerp(*s1, *s2, t),
            })
        }
        (
            D::Hotspot {
                hot_span: h1,
                hot_fraction: f1,
            },
            D::Hotspot {
                hot_span: h2,
                hot_fraction: f2,
            },
        ) => Ok(D::Hotspot {
            hot_span: lerp(*h1, *h2, t),
            hot_fraction: lerp(*f1, *f2, t),
        }),
        (
            D::Clustered {
                clusters: c1,
                cluster_std_frac: s1,
            },
            D::Clustered {
                clusters: c2,
                cluster_std_frac: s2,
            },
        ) => Ok(D::Clustered {
            clusters: lerp(*c1 as f64, *c2 as f64, t).round().max(1.0) as usize,
            cluster_std_frac: lerp(*s1, *s2, t),
        }),
        (D::SequentialNoise { noise_frac: n1 }, D::SequentialNoise { noise_frac: n2 }) => {
            Ok(D::SequentialNoise {
                noise_frac: lerp(*n1, *n2, t),
            })
        }
        _ => Err(format!(
            "cannot interpolate '{}' into '{}' (shapes must match; use an explicit phase with \
             transition = \"gradual\" for cross-shape drift)",
            from.canonical_name(),
            to.canonical_name()
        )),
    }
}

fn lerp_mix(a: &OperationMix, b: &OperationMix, t: f64) -> OperationMix {
    OperationMix {
        read: lerp(a.read, b.read, t),
        insert: lerp(a.insert, b.insert, t),
        update: lerp(a.update, b.update, t),
        scan: lerp(a.scan, b.scan, t),
        delete: lerp(a.delete, b.delete, t),
        max_scan_len: lerp(a.max_scan_len as f64, b.max_scan_len as f64, t).round() as u32,
    }
}

fn lerp_u64(a: u64, b: u64, t: f64) -> u64 {
    lerp(a as f64, b as f64, t).round() as u64
}

/// A deterministic drift axis between a *base* and a *target* phase.
///
/// `at(α)` interpolates every phase parameter — distribution parameters,
/// operation mix (including the integer `max_scan_len`, lerped and
/// rounded), ops, key range, and concurrency burst — and
/// [`rate_at`](DriftAxis::rate_at) does the same for an optional pair of
/// open-loop arrival rates. The endpoints are exact by construction:
/// `at(α ≤ 0)` clones the base and `at(α ≥ 1)` clones the target,
/// field for field. Non-finite α is treated as 0 (no drift).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftAxis {
    base: WorkloadPhase,
    target: WorkloadPhase,
    base_rate: Option<f64>,
    target_rate: Option<f64>,
}

impl DriftAxis {
    /// Builds an axis between two phases of the same distribution shape.
    ///
    /// Returns the same "cannot interpolate" reason as
    /// [`interpolate_distribution`] when the shapes differ, so the error
    /// surfaces identically whether drift is authored as a composer block
    /// or driven programmatically by the sweep ladder.
    pub fn new(base: WorkloadPhase, target: WorkloadPhase) -> Result<Self, String> {
        interpolate_distribution(&base.distribution, &target.distribution, 0.5)?;
        Ok(DriftAxis {
            base,
            target,
            base_rate: None,
            target_rate: None,
        })
    }

    /// Attaches an open-loop arrival-rate pair to interpolate alongside
    /// the phase parameters (see [`rate_at`](DriftAxis::rate_at)).
    pub fn with_rates(mut self, base_rate: f64, target_rate: f64) -> Self {
        self.base_rate = Some(base_rate);
        self.target_rate = Some(target_rate);
        self
    }

    /// The α = 0 endpoint.
    pub fn base(&self) -> &WorkloadPhase {
        &self.base
    }

    /// The α = 1 endpoint.
    pub fn target(&self) -> &WorkloadPhase {
        &self.target
    }

    /// The phase at drift intensity `alpha`.
    ///
    /// `alpha ≤ 0` returns a clone of the base, `alpha ≥ 1` a clone of
    /// the target (both exact, field for field); interior values lerp
    /// every parameter. The interpolated phase keeps the base phase's
    /// name — callers that unroll a ladder rename each rung themselves.
    pub fn at(&self, alpha: f64) -> WorkloadPhase {
        // NaN routes to the base rather than poisoning every field.
        if alpha.is_nan() || alpha <= 0.0 {
            return self.base.clone();
        }
        if alpha >= 1.0 {
            return self.target.clone();
        }
        let distribution =
            interpolate_distribution(&self.base.distribution, &self.target.distribution, alpha)
                .expect("shapes were validated when the axis was constructed");
        WorkloadPhase {
            name: self.base.name.clone(),
            distribution,
            key_range: (
                lerp_u64(self.base.key_range.0, self.target.key_range.0, alpha),
                lerp_u64(self.base.key_range.1, self.target.key_range.1, alpha),
            ),
            mix: lerp_mix(&self.base.mix, &self.target.mix, alpha),
            ops: lerp_u64(self.base.ops, self.target.ops, alpha),
            concurrency_burst: lerp(
                self.base.concurrency_burst,
                self.target.concurrency_burst,
                alpha,
            ),
        }
    }

    /// The arrival rate at intensity `alpha`, when a rate pair was
    /// attached with [`with_rates`](DriftAxis::with_rates) — clamped at
    /// the endpoints exactly like [`at`](DriftAxis::at). `None` when the
    /// axis carries no rates.
    pub fn rate_at(&self, alpha: f64) -> Option<f64> {
        let (a, b) = (self.base_rate?, self.target_rate?);
        if alpha.is_nan() || alpha <= 0.0 {
            Some(a)
        } else if alpha >= 1.0 {
            Some(b)
        } else {
            Some(lerp(a, b, alpha))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsbench_workload::phases::WorkloadPhase;

    fn base_phase() -> WorkloadPhase {
        WorkloadPhase::new(
            "base".to_string(),
            KeyDistribution::Zipf { theta: 0.6 },
            (0, 1_000_000),
            OperationMix::ycsb_c(),
            1_000,
        )
    }

    fn target_phase() -> WorkloadPhase {
        WorkloadPhase::new(
            "target".to_string(),
            KeyDistribution::Zipf { theta: 1.4 },
            (0, 2_000_000),
            OperationMix::ycsb_a(),
            3_000,
        )
        .with_concurrency_burst(4.0)
    }

    #[test]
    fn endpoints_are_exact_field_for_field() {
        let axis = DriftAxis::new(base_phase(), target_phase()).unwrap();
        assert_eq!(axis.at(0.0), base_phase());
        assert_eq!(axis.at(-0.5), base_phase());
        assert_eq!(axis.at(1.0), target_phase());
        assert_eq!(axis.at(7.0), target_phase());
        assert_eq!(axis.at(f64::NAN), base_phase(), "NaN α means no drift");
    }

    #[test]
    fn interior_points_interpolate_every_parameter() {
        let axis = DriftAxis::new(base_phase(), target_phase()).unwrap();
        let mid = axis.at(0.5);
        assert_eq!(mid.name, "base");
        assert_eq!(mid.distribution, KeyDistribution::Zipf { theta: 1.0 });
        assert_eq!(mid.key_range, (0, 1_500_000));
        assert_eq!(mid.ops, 2_000);
        assert_eq!(mid.concurrency_burst, 2.5);
        // ycsb_c is all reads; ycsb_a is 50/50 read/update.
        assert!(mid.mix.read < base_phase().mix.read);
        assert!(mid.mix.update > 0.0);
    }

    #[test]
    fn alpha_is_monotone_in_distribution_parameters() {
        let axis = DriftAxis::new(base_phase(), target_phase()).unwrap();
        let thetas: Vec<f64> = (0..=10)
            .map(|i| match axis.at(i as f64 / 10.0).distribution {
                KeyDistribution::Zipf { theta } => theta,
                _ => panic!("shape preserved"),
            })
            .collect();
        assert!(thetas.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn cross_shape_axes_are_rejected_at_construction() {
        let mut t = target_phase();
        t.distribution = KeyDistribution::Uniform;
        let err = DriftAxis::new(base_phase(), t).unwrap_err();
        assert!(err.contains("cannot interpolate"));
    }

    #[test]
    fn rates_interpolate_with_exact_endpoints() {
        let axis = DriftAxis::new(base_phase(), target_phase())
            .unwrap()
            .with_rates(100.0, 300.0);
        assert_eq!(axis.rate_at(0.0), Some(100.0));
        assert_eq!(axis.rate_at(1.0), Some(300.0));
        assert_eq!(axis.rate_at(0.5), Some(200.0));
        let bare = DriftAxis::new(base_phase(), target_phase()).unwrap();
        assert_eq!(bare.rate_at(0.5), None);
    }
}
