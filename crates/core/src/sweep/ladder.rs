//! Sweep grids and scenario ladders: from an `lo..hixN` axis string to
//! the per-rung scenarios `lsbench sweep` runs.
//!
//! A ladder takes a *base* scenario and treats its first phase as the
//! no-drift anchor: the rung at intensity α replaces every phase `i`
//! with `DriftAxis{base: phase₀, target: phaseᵢ}.at(α)`. At α = 0 the
//! workload is the anchor phase repeated (a static control run); at
//! α = 1 it is the scenario exactly as authored — both exact by the
//! axis's endpoint clamp, so the top rung of a sweep is byte-identical
//! to a plain `lsbench run` of the same spec. Everything else about the
//! scenario (dataset, SLA policy, arrival process, execution mode,
//! clock, faults) is cloned unchanged onto every rung; offered-load
//! drift rides on the phases' `concurrency_burst`, which the axis
//! interpolates like any other parameter.

use crate::scenario::Scenario;
use crate::sweep::drift::{lerp, DriftAxis};
use crate::{BenchError, Result};
use lsbench_workload::phases::PhasedWorkload;

/// Upper bound on rungs per sweep — enough for a dense curve, far below
/// anything a CLI run could finish in reasonable time.
const MAX_RUNGS: usize = 1_000;

/// Parses a sweep axis of the form `lo..hixN` (e.g. `0..1x5`) into a
/// monotone α grid of `N` rungs from `lo` to `hi`, both inclusive and
/// hit exactly. Returns a human-readable reason on malformed input.
pub fn parse_axis(axis: &str) -> std::result::Result<Vec<f64>, String> {
    let malformed = || format!("malformed drift axis '{axis}' (expected lo..hixN, e.g. 0..1x5)");
    let (range, count) = axis.rsplit_once('x').ok_or_else(malformed)?;
    let (lo, hi) = range.split_once("..").ok_or_else(malformed)?;
    let lo: f64 = lo.trim().parse().map_err(|_| malformed())?;
    let hi: f64 = hi.trim().parse().map_err(|_| malformed())?;
    let n: usize = count.trim().parse().map_err(|_| malformed())?;
    if !(lo.is_finite() && hi.is_finite() && (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi))
    {
        return Err(format!(
            "drift axis endpoints must lie in [0, 1], got {lo}..{hi}"
        ));
    }
    if lo >= hi {
        return Err(format!(
            "drift axis must ascend, got {lo}..{hi} (lo must be < hi)"
        ));
    }
    if n < 2 {
        return Err(format!("a sweep needs at least 2 rungs, got {n}"));
    }
    if n > MAX_RUNGS {
        return Err(format!("{n} rungs is unreasonably many (max {MAX_RUNGS})"));
    }
    Ok((0..n)
        .map(|i| {
            // Endpoint-exact, like the axis itself: the first and last
            // rungs are the literal bounds, not their lerped neighbors.
            if i == 0 {
                lo
            } else if i == n - 1 {
                hi
            } else {
                lerp(lo, hi, i as f64 / (n - 1) as f64)
            }
        })
        .collect())
}

/// Derives the scenario at drift intensity `alpha` from `base` (see the
/// module docs for the anchor semantics). Fails when `alpha` is outside
/// [0, 1] or when any phase's distribution shape differs from the first
/// phase's — the same restriction the composers impose, because a shape
/// jump has no meaningful partial interpolation.
pub fn rung_scenario(base: &Scenario, alpha: f64) -> Result<Scenario> {
    if !(alpha.is_finite() && (0.0..=1.0).contains(&alpha)) {
        return Err(BenchError::InvalidScenario(format!(
            "drift intensity must be in [0, 1], got {alpha}"
        )));
    }
    let phases = base.workload.phases();
    let anchor = phases[0].clone();
    let mut drifted = Vec::with_capacity(phases.len());
    for phase in phases {
        let axis = DriftAxis::new(anchor.clone(), phase.clone()).map_err(|e| {
            BenchError::InvalidScenario(format!(
                "scenario '{}' cannot form a drift ladder: phase '{}': {e}",
                base.name, phase.name
            ))
        })?;
        let mut rung_phase = axis.at(alpha);
        // Keep the authored phase names so per-phase metrics line up
        // across rungs of the same sweep.
        rung_phase.name = phase.name.clone();
        drifted.push(rung_phase);
    }
    let workload = PhasedWorkload::new(
        drifted,
        base.workload.transitions().to_vec(),
        base.workload.seed(),
    )
    .map_err(|e| BenchError::InvalidScenario(e.to_string()))?;
    let mut rung = base.clone();
    rung.workload = workload;
    Ok(rung)
}

/// A fully expanded sweep ladder: the axis text, its α grid, and the
/// derived scenario at every rung.
#[derive(Debug, Clone)]
pub struct DriftLadder {
    /// The axis as given (e.g. `0..1x5`) — archived in the manifest.
    pub axis: String,
    /// The monotone α grid, one entry per rung.
    pub alphas: Vec<f64>,
    /// The derived scenario at each α, in grid order.
    pub rungs: Vec<Scenario>,
}

impl DriftLadder {
    /// Parses `axis` and derives every rung scenario from `base`.
    pub fn build(base: &Scenario, axis: &str) -> Result<Self> {
        let alphas = parse_axis(axis).map_err(BenchError::InvalidScenario)?;
        let rungs = alphas
            .iter()
            .map(|&a| rung_scenario(base, a))
            .collect::<Result<Vec<_>>>()?;
        Ok(DriftLadder {
            axis: axis.to_string(),
            alphas,
            rungs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsbench_workload::keygen::KeyDistribution;

    fn base() -> Scenario {
        Scenario::two_phase_shift(
            "ladder-base",
            KeyDistribution::Zipf { theta: 0.4 },
            KeyDistribution::Zipf { theta: 1.3 },
            4_000,
            500,
            7,
        )
        .expect("valid scenario")
    }

    #[test]
    fn axis_grids_are_monotone_and_endpoint_exact() {
        let grid = parse_axis("0..1x5").unwrap();
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[0], 0.0);
        assert_eq!(grid[4], 1.0);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        let sub = parse_axis("0.25..0.75x3").unwrap();
        assert_eq!(sub, vec![0.25, 0.5, 0.75]);
    }

    #[test]
    fn malformed_axes_are_rejected_with_reasons() {
        for (axis, needle) in [
            ("0..1", "malformed drift axis"),
            ("5", "malformed drift axis"),
            ("0..1xzero", "malformed drift axis"),
            ("0..2x5", "must lie in [0, 1]"),
            ("0.8..0.2x5", "must ascend"),
            ("0..1x1", "at least 2 rungs"),
            ("0..1x9999", "unreasonably many"),
        ] {
            let err = parse_axis(axis).unwrap_err();
            assert!(err.contains(needle), "{axis}: {err}");
        }
    }

    #[test]
    fn rung_zero_is_the_anchor_repeated_and_rung_one_is_the_base() {
        let base = base();
        let calm = rung_scenario(&base, 0.0).unwrap();
        let anchor = &base.workload.phases()[0];
        for p in calm.workload.phases() {
            assert_eq!(p.distribution, anchor.distribution);
            assert_eq!(p.mix, anchor.mix);
            assert_eq!(p.ops, anchor.ops);
        }
        // Names stay authored even on the homogenized rung.
        assert_eq!(
            calm.workload.phases().last().unwrap().name,
            base.workload.phases().last().unwrap().name
        );
        let full = rung_scenario(&base, 1.0).unwrap();
        assert_eq!(full.workload.phases(), base.workload.phases());
        assert_eq!(full.workload.transitions(), base.workload.transitions());
    }

    #[test]
    fn ladders_expand_each_alpha_once() {
        let ladder = DriftLadder::build(&base(), "0..1x4").unwrap();
        assert_eq!(ladder.alphas.len(), 4);
        assert_eq!(ladder.rungs.len(), 4);
        assert_eq!(ladder.axis, "0..1x4");
    }

    #[test]
    fn out_of_range_alpha_is_rejected() {
        let err = rung_scenario(&base(), 1.5).unwrap_err();
        assert!(matches!(err, BenchError::InvalidScenario(_)));
    }

    #[test]
    fn cross_shape_scenarios_cannot_form_a_ladder() {
        let mixed = Scenario::two_phase_shift(
            "mixed",
            KeyDistribution::Uniform,
            KeyDistribution::Zipf { theta: 1.1 },
            4_000,
            500,
            7,
        )
        .expect("valid scenario");
        let err = rung_scenario(&mixed, 0.5).unwrap_err();
        let BenchError::InvalidScenario(reason) = err else {
            panic!("wrong error kind");
        };
        assert!(reason.contains("cannot form a drift ladder"), "{reason}");
        assert!(reason.contains("cannot interpolate"), "{reason}");
    }
}
