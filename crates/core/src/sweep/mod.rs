//! The drift-sweep subsystem: metric-vs-α curves over a controllable
//! drift axis.
//!
//! The paper's Fig. 1a–1d metrics are all measured at *one* fixed drift
//! shape per scenario. NeurBench argues the right abstraction is a single
//! drift factor α ∈ [0, 1] that smoothly interpolates between no drift
//! (α = 0) and the full authored drift (α = 1), and Zeighami & Shahabi's
//! distribution-learnability bounds predict *how fast* a learned SUT may
//! degrade as α grows. This module supplies that axis end to end:
//!
//! * [`drift`] — the [`DriftAxis`] primitive: a
//!   deterministic, endpoint-exact interpolation between two same-shape
//!   workload phases (distribution parameters, operation mix, ops,
//!   key range, concurrency burst, and optionally arrival rate). The four
//!   original spec composers and the `[[drift]]` block all expand through
//!   it (see [`crate::spec::compose`]).
//! * [`ladder`] — sweep grids and scenario ladders: parse a
//!   `lo..hixN` axis into a monotone α grid and derive the rung scenario
//!   at each α from a base scenario by drifting every phase from the
//!   first phase (the no-drift anchor) toward its authored self.
//! * [`curves`] — per-SUT metric curves over the grid: adaptability area
//!   (Fig. 1b), adjustment speed and SLA violation rate (Fig. 1c), and
//!   specialization spread (Fig. 1a) as functions of α, plus the linear
//!   degradation reference derived from the distribution-learnability
//!   bound and per-rung flags where a SUT degrades faster than it.
//! * [`report`] — rendering: an aligned text table per metric with the
//!   theory overlay, ASCII sparklines per SUT, and bound-violation flags
//!   (JSON comes from serializing the archived
//!   [`SweepArtifact`](crate::results::SweepArtifact)).
//!
//! See DESIGN.md §13 for the axis semantics and why the composer
//! refactor preserves existing expansions bit for bit.

pub mod curves;
pub mod drift;
pub mod ladder;
pub mod report;

pub use curves::{sweep_curve, BoundFlag, SweepCurve, SweepPoint};
pub use drift::DriftAxis;
pub use ladder::{parse_axis, rung_scenario, DriftLadder};
pub use report::render_sweep_report;
