//! Rendering metric-vs-α sweep curves: aligned tables, sparklines, and
//! the theory overlay.
//!
//! The JSON form of a sweep is the archived
//! [`SweepArtifact`](crate::results::SweepArtifact) itself; this module
//! only produces the human-readable figure. Layout: one block per
//! metric, with a measured column and a `theory` column (the linear
//! shift bound) per SUT, an ASCII sparkline pair per SUT, and one
//! `flag:` line per rung that bows past the bound.

use crate::sweep::curves::{bound_flags, linear_reference, SweepCurve, METRICS};

/// Sparkline glyph for a value normalized to `[0, 1]`.
fn glyph(frac: f64) -> char {
    match (frac.clamp(0.0, 1.0) * 8.0) as usize {
        0 => ' ',
        1 => '▁',
        2 => '▂',
        3 => '▃',
        4 => '▄',
        5 => '▅',
        6 => '▆',
        7 => '▇',
        _ => '█',
    }
}

/// One glyph per rung, normalized over the combined range of the
/// measured and reference series so the two sparklines are comparable.
fn sparkline(series: &[f64], lo: f64, hi: f64) -> String {
    let span = hi - lo;
    series
        .iter()
        .map(|&v| {
            if span > 0.0 {
                glyph((v - lo) / span)
            } else {
                glyph(0.5)
            }
        })
        .collect()
}

/// Renders the full sweep figure for one scenario's curves.
pub fn render_sweep_report(scenario: &str, axis: &str, curves: &[SweepCurve]) -> String {
    let mut out = String::new();
    let rungs = curves.first().map(|c| c.points.len()).unwrap_or(0);
    let suts: Vec<&str> = curves.iter().map(|c| c.sut.as_str()).collect();
    out.push_str(&format!(
        "Drift sweep — {scenario} (axis {axis}, {rungs} rungs, SUTs: {})\n",
        suts.join(", ")
    ));
    out.push_str(
        "  theory = linear shift bound between each metric's own α-endpoints\n  \
         (distribution-learnability: a well-behaved learner degrades at most linearly in α)\n",
    );
    for (name, metric, higher_is_better) in METRICS {
        let direction = if higher_is_better {
            "higher is better"
        } else {
            "lower is better"
        };
        out.push_str(&format!("\n== {name} ({direction}) ==\n"));
        out.push_str(&format!("{:>8}", "α"));
        for curve in curves {
            out.push_str(&format!("{:>12}{:>12}", curve.sut, "theory"));
        }
        out.push('\n');
        let references: Vec<Vec<f64>> = curves
            .iter()
            .map(|c| linear_reference(&c.points, metric))
            .collect();
        for rung in 0..rungs {
            let alpha = curves[0].points[rung].alpha;
            out.push_str(&format!("{alpha:>8.3}"));
            for (curve, reference) in curves.iter().zip(&references) {
                out.push_str(&format!(
                    "{:>12.4}{:>12.4}",
                    metric(&curve.points[rung]),
                    reference[rung]
                ));
            }
            out.push('\n');
        }
        for (curve, reference) in curves.iter().zip(&references) {
            let measured: Vec<f64> = curve.points.iter().map(metric).collect();
            let lo = measured
                .iter()
                .chain(reference)
                .fold(f64::INFINITY, |a, &b| a.min(b));
            let hi = measured
                .iter()
                .chain(reference)
                .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            out.push_str(&format!(
                "  {:<10} measured |{}|  bound |{}|\n",
                curve.sut,
                sparkline(&measured, lo, hi),
                sparkline(reference, lo, hi),
            ));
        }
    }
    let mut flags: Vec<_> = curves.iter().flat_map(bound_flags).collect();
    flags.sort_by(|a, b| {
        a.alpha
            .partial_cmp(&b.alpha)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.sut.cmp(&b.sut))
            .then_with(|| a.metric.cmp(&b.metric))
    });
    out.push('\n');
    if flags.is_empty() {
        out.push_str("no rung degrades faster than the linear shift bound\n");
    } else {
        for f in &flags {
            out.push_str(&format!(
                "flag: {} α={:.3} {} {:.1}% past the linear bound\n",
                f.sut,
                f.alpha,
                f.metric,
                f.excess_frac * 100.0
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::curves::SweepPoint;

    fn curve(sut: &str, areas: &[f64]) -> SweepCurve {
        SweepCurve {
            sut: sut.to_string(),
            points: areas
                .iter()
                .enumerate()
                .map(|(i, &a)| SweepPoint {
                    alpha: i as f64 / (areas.len() - 1) as f64,
                    adaptability_area: a,
                    adjustment_speed: 0.1 * i as f64,
                    sla_violation_rate: 0.05 * i as f64,
                    specialization_spread: 1.0 + i as f64,
                })
                .collect(),
        }
    }

    #[test]
    fn report_renders_all_metrics_suts_and_overlays() {
        let curves = vec![
            curve("btree", &[0.0, -0.1, -0.2]),
            curve("rmi", &[0.0, -0.8, -0.3]),
        ];
        let s = render_sweep_report("golden", "0..1x3", &curves);
        assert!(s.contains("Drift sweep — golden (axis 0..1x3, 3 rungs, SUTs: btree, rmi)"));
        for (name, _, _) in METRICS {
            assert!(s.contains(name), "missing metric block: {name}");
        }
        assert!(s.contains("theory"));
        assert!(s.contains("measured |"));
        assert!(s.contains("bound |"));
        // rmi bows far below its own linear reference at α=0.5.
        assert!(s.contains("flag: rmi α=0.500 adaptability area"));
        assert!(!s.contains("flag: btree"));
    }

    #[test]
    fn linear_curves_report_no_flags() {
        let curves = vec![curve("btree", &[0.0, -0.1, -0.2])];
        let s = render_sweep_report("golden", "0..1x3", &curves);
        assert!(s.contains("no rung degrades faster"));
    }
}
