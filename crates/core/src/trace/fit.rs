//! Fitting a `.spec` scenario to a trace.
//!
//! The fit works on *parse-time statistics*, not op-level copying: each
//! detected segment (see [`segment_trace`]) is
//! reduced to an operation mix, a robust key range, and a distribution
//! family chosen from the fit vocabulary — hotspot (positional
//! concentration at the low end of the range), Zipf (frequency
//! concentration on few keys regardless of position — the generator
//! scatters Zipf ranks across the key space, so position says nothing),
//! or uniform (neither). The result is an ordinary [`Scenario`] rendered
//! through the canonical renderer, so `parse ∘ render = id` holds and the
//! fitted spec archives, compares, and capacity-searches like any other.

use super::summarize::{
    distinct_and_top1, global_key_range, segment_trace, summarize_windows, Segment,
    CHANGE_THRESHOLD,
};
use crate::scenario::{DatasetSpec, Scenario};
use crate::Result;
use lsbench_workload::keygen::KeyDistribution;
use lsbench_workload::ops::{Operation, OperationMix};
use lsbench_workload::phases::{PhasedWorkload, TransitionKind, WorkloadPhase};
use lsbench_workload::trace::Trace;

/// Candidate hot-region spans tried by the hotspot detector, as fractions
/// of the segment's key range.
const HOT_SPANS: &[f64] = &[0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3];

/// One fitted phase: the estimated generator parameters plus the raw
/// statistics they were derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseFit {
    /// Phase name in the fitted spec (`fit-0`, `fit-1`, …).
    pub name: String,
    /// Estimated key distribution.
    pub distribution: KeyDistribution,
    /// Robust key range (1st–99th percentile of observed keys).
    pub key_range: (u64, u64),
    /// Observed operation mix.
    pub mix: OperationMix,
    /// Operations in the segment.
    pub ops: u64,
    /// Distinct keys divided by operations in the segment.
    pub distinct_ratio: f64,
    /// Fraction of operations hitting the segment's most frequent key.
    pub top1_mass: f64,
}

/// The fit summary returned alongside the scenario: per-phase estimates
/// plus the whole-trace repetition factor.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Per-phase fits, in trace order.
    pub phases: Vec<PhaseFit>,
    /// Distinct keys divided by total operations (1.0 = no repetition).
    pub distinct_ratio: f64,
    /// Fraction of operations accounted for by the 10 most frequent keys
    /// (the "top templates" in Redbench's sense).
    pub top_template_mass: f64,
}

/// Percentile of a sorted slice (linear index, inclusive bounds).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Mass of the `k` most frequent keys in a sorted key slice.
fn top_k_mass(sorted: &[u64], k: usize) -> f64 {
    let mut counts: Vec<usize> = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        counts.push(j - i);
        i = j;
    }
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let top: usize = counts.iter().take(k).sum();
    top as f64 / sorted.len().max(1) as f64
}

/// Second-most-frequent key's count in a sorted key slice.
fn second_count(sorted: &[u64]) -> usize {
    let mut best = 0usize;
    let mut second = 0usize;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        let c = j - i;
        if c > best {
            second = best;
            best = c;
        } else if c > second {
            second = c;
        }
        i = j;
    }
    second
}

/// Chooses a distribution family for one segment's sorted keys over the
/// fitted `[lo, hi)` range.
fn estimate_distribution(
    sorted: &[u64],
    lo: u64,
    hi: u64,
    distinct_ratio: f64,
    top1_mass: f64,
) -> KeyDistribution {
    let span = (hi - lo).max(1) as f64;
    let n = sorted.len() as f64;
    // Hotspot: a large mass parked in a small leading fraction of the
    // range. Pick the candidate span with the highest lift (mass/span)
    // among those holding a majority of accesses.
    let mut best: Option<(f64, f64, f64)> = None; // (lift, span, mass)
    for &s in HOT_SPANS {
        let cut = lo + (span * s) as u64;
        let below = sorted.partition_point(|&k| k < cut);
        let mass = below as f64 / n;
        let lift = mass / s;
        if mass >= 0.5 && lift >= 2.0 && best.map(|(l, _, _)| lift > l).unwrap_or(true) {
            best = Some((lift, s, mass));
        }
    }
    if let Some((_, hot_span, hot_fraction)) = best {
        return KeyDistribution::Hotspot {
            hot_span,
            hot_fraction: hot_fraction.min(1.0),
        };
    }
    // Zipf: frequency concentration — the hottest key absorbs far more
    // than a uniform draw would give it, and keys repeat heavily. The
    // exponent comes from the top-two frequency ratio (f1/f2 = 2^θ).
    if top1_mass >= 0.01 && distinct_ratio < 0.8 {
        let c2 = second_count(sorted).max(1);
        let c1 = (top1_mass * n).round().max(1.0);
        let theta = (c1 / c2 as f64).ln() / 2.0f64.ln();
        return KeyDistribution::Zipf {
            theta: theta.clamp(0.2, 5.0),
        };
    }
    KeyDistribution::Uniform
}

/// Fits one segment of the trace.
fn fit_segment(trace: &Trace, seg: Segment, index: usize) -> PhaseFit {
    let entries = &trace.entries()[seg.start..seg.start + seg.len];
    let mut kind_counts = [0usize; 5];
    let mut max_scan_len = 0u32;
    let mut keys: Vec<u64> = Vec::with_capacity(entries.len());
    for entry in entries {
        let slot = match entry.op {
            Operation::Read { .. } => 0,
            Operation::Insert { .. } => 1,
            Operation::Update { .. } => 2,
            Operation::Scan { len, .. } => {
                max_scan_len = max_scan_len.max(len);
                3
            }
            Operation::Delete { .. } => 4,
        };
        kind_counts[slot] += 1;
        keys.push(entry.op.key());
    }
    keys.sort_unstable();
    let total = entries.len() as f64;
    let mix = OperationMix {
        read: kind_counts[0] as f64 / total,
        insert: kind_counts[1] as f64 / total,
        update: kind_counts[2] as f64 / total,
        scan: kind_counts[3] as f64 / total,
        delete: kind_counts[4] as f64 / total,
        max_scan_len,
    };
    // Robust range: 1st–99th percentile, widened by one so lo < hi.
    let lo = percentile(&keys, 0.01);
    let hi = percentile(&keys, 0.99).max(lo) + 1;
    let (distinct, top1) = distinct_and_top1(&keys);
    let distinct_ratio = distinct as f64 / total;
    let top1_mass = top1 as f64 / total;
    let distribution = estimate_distribution(&keys, lo, hi, distinct_ratio, top1_mass);
    PhaseFit {
        name: format!("fit-{index}"),
        distribution,
        key_range: (lo, hi),
        mix,
        ops: entries.len() as u64,
        distinct_ratio,
        top1_mass,
    }
}

/// Fits a scenario named `name` (seeded with `seed`) to a trace.
///
/// Segments the trace with the default window count (one window per ~500
/// operations, clamped to 8–64) and threshold, estimates each segment's
/// phase, and assembles an ordinary validated [`Scenario`] whose dataset
/// is uniform over the trace's observed key range with one key per
/// distinct key observed.
pub fn fit_scenario(trace: &Trace, name: &str, seed: u64) -> Result<(Scenario, FitReport)> {
    if trace.is_empty() {
        return Err(crate::BenchError::InvalidScenario(
            "cannot fit an empty trace".to_string(),
        ));
    }
    let window_count = (trace.len() / 500).clamp(8, 64);
    let stats = summarize_windows(trace, window_count);
    let segments = segment_trace(&stats, CHANGE_THRESHOLD);
    let phases: Vec<PhaseFit> = segments
        .into_iter()
        .enumerate()
        .map(|(i, seg)| fit_segment(trace, seg, i))
        .collect();

    let mut all_keys: Vec<u64> = trace.entries().iter().map(|e| e.op.key()).collect();
    all_keys.sort_unstable();
    let (distinct, _) = distinct_and_top1(&all_keys);
    let report = FitReport {
        distinct_ratio: distinct as f64 / all_keys.len() as f64,
        top_template_mass: top_k_mass(&all_keys, 10),
        phases: phases.clone(),
    };

    let (global_lo, global_hi) = global_key_range(trace);
    let dataset = DatasetSpec {
        distribution: KeyDistribution::Uniform,
        key_range: (global_lo, global_hi.max(global_lo) + 1),
        size: distinct.max(1),
        seed: seed ^ 0xDA7A,
    };
    let workload_phases: Vec<WorkloadPhase> = phases
        .iter()
        .map(|p| {
            WorkloadPhase::new(
                p.name.clone(),
                p.distribution.clone(),
                p.key_range,
                p.mix.clone(),
                p.ops,
            )
        })
        .collect();
    let transitions = vec![TransitionKind::Abrupt; workload_phases.len() - 1];
    let workload = PhasedWorkload::new(workload_phases, transitions, seed)
        .map_err(|e| crate::BenchError::Workload(e.to_string()))?;
    let scenario = Scenario::builder(name)
        .dataset_spec(dataset)
        .workload(workload)
        .build()?;
    Ok((scenario, report))
}
