//! On-disk trace formats: CSV and JSON-lines keyed-op traces.
//!
//! Both formats carry the same record shape — an operation name, a key,
//! and optionally a write value, a scan length, and a timestamp in seconds
//! — and both round-trip: [`export_csv`] / [`export_jsonl`] emit a
//! *canonical* form (columns present iff any entry needs them, floats via
//! `{:?}`, no padding) that [`parse_csv`] / [`parse_jsonl`] read back
//! identically, so `import ∘ export = id` on canonical files.
//!
//! Every rejection is a positioned [`TraceError`] in the spec-parser
//! style: the 1-based line, the offending column or key, and the reason.

use super::{TResult, TraceError};
use lsbench_workload::ops::Operation;
use lsbench_workload::trace::Trace;

/// One parsed trace record before phase assignment: the operation and its
/// absolute timestamp in seconds, if the trace carries timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct RawEntry {
    /// The keyed operation.
    pub op: Operation,
    /// Absolute timestamp in seconds (None for timestamp-less traces).
    pub ts: Option<f64>,
}

/// The wire format of a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Comma-separated values with a header line.
    Csv,
    /// One JSON object per line.
    Jsonl,
}

impl TraceFormat {
    /// Detects the format from a file extension (`.csv` / `.jsonl`).
    pub fn from_path(path: &str) -> Option<TraceFormat> {
        let lower = path.to_ascii_lowercase();
        if lower.ends_with(".csv") {
            Some(TraceFormat::Csv)
        } else if lower.ends_with(".jsonl") {
            Some(TraceFormat::Jsonl)
        } else {
            None
        }
    }

    /// Parses a format name (`"csv"` / `"jsonl"`).
    pub fn from_name(name: &str) -> Option<TraceFormat> {
        match name {
            "csv" => Some(TraceFormat::Csv),
            "jsonl" => Some(TraceFormat::Jsonl),
            _ => None,
        }
    }
}

const COLUMNS: &[&str] = &["op", "key", "value", "len", "ts"];

fn unknown_op(line: usize, name: &str) -> TraceError {
    TraceError::new(
        line,
        "op",
        format!("unknown operation '{name}' (expected read, insert, update, scan, delete)"),
    )
}

/// Enforces non-decreasing timestamps and uniform presence across entries.
struct TsChecker {
    prev: Option<f64>,
    had_ts: Option<bool>,
}

impl TsChecker {
    fn new() -> Self {
        TsChecker {
            prev: None,
            had_ts: None,
        }
    }

    fn check(&mut self, line: usize, ts: Option<f64>) -> TResult<()> {
        match (self.had_ts, ts.is_some()) {
            (Some(true), false) => {
                return Err(TraceError::new(
                    line,
                    "ts",
                    "missing timestamp (earlier lines have one)",
                ));
            }
            (Some(false), true) => {
                return Err(TraceError::new(
                    line,
                    "ts",
                    "timestamp appears here but earlier lines have none",
                ));
            }
            _ => self.had_ts = Some(ts.is_some()),
        }
        if let Some(t) = ts {
            if !(t.is_finite() && t >= 0.0) {
                return Err(TraceError::new(
                    line,
                    "ts",
                    format!("timestamp {t} must be finite and non-negative"),
                ));
            }
            if let Some(p) = self.prev {
                if t < p {
                    return Err(TraceError::new(
                        line,
                        "ts",
                        format!("timestamps must be non-decreasing (went from {p} to {t})"),
                    ));
                }
            }
            self.prev = Some(t);
        }
        Ok(())
    }
}

fn build_op(
    line: usize,
    name: &str,
    key: u64,
    value: Option<u64>,
    len: Option<u32>,
) -> TResult<Operation> {
    match name {
        "read" => Ok(Operation::Read { key }),
        "insert" => Ok(Operation::Insert {
            key,
            value: value.unwrap_or(0),
        }),
        "update" => Ok(Operation::Update {
            key,
            value: value.unwrap_or(0),
        }),
        "scan" => {
            let len =
                len.ok_or_else(|| TraceError::new(line, "len", "scan needs a positive len"))?;
            if len == 0 {
                return Err(TraceError::new(line, "len", "scan needs a positive len"));
            }
            Ok(Operation::Scan { start: key, len })
        }
        "delete" => Ok(Operation::Delete { key }),
        other => Err(unknown_op(line, other)),
    }
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

/// Parses a CSV trace: a header line naming a subset of
/// `op,key,value,len,ts` (`op` and `key` required), then one record per
/// line. Cells for columns an operation doesn't use stay empty.
pub fn parse_csv(text: &str) -> TResult<Vec<RawEntry>> {
    let mut lines = text.lines().enumerate();
    let Some((_, header_line)) = lines.next() else {
        return Err(TraceError::new(0, "header", "empty trace file"));
    };
    let header: Vec<&str> = header_line.split(',').map(str::trim).collect();
    for col in &header {
        if !COLUMNS.contains(col) {
            return Err(TraceError::new(
                1,
                *col,
                format!(
                    "unknown column '{col}' (known columns: {})",
                    COLUMNS.join(", ")
                ),
            ));
        }
    }
    for (i, col) in header.iter().enumerate() {
        if header[..i].contains(col) {
            return Err(TraceError::new(
                1,
                *col,
                format!("duplicate column '{col}'"),
            ));
        }
    }
    for required in ["op", "key"] {
        if !header.contains(&required) {
            return Err(TraceError::new(
                1,
                required,
                format!("missing required column '{required}'"),
            ));
        }
    }

    let mut entries = Vec::new();
    let mut ts_check = TsChecker::new();
    for (i, raw) in lines {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = raw.split(',').map(str::trim).collect();
        if cells.len() < header.len() {
            return Err(TraceError::new(
                line,
                header[cells.len()],
                format!("line truncated: missing column '{}'", header[cells.len()]),
            ));
        }
        if cells.len() > header.len() {
            return Err(TraceError::new(
                line,
                "row",
                format!("expected {} columns, got {}", header.len(), cells.len()),
            ));
        }
        let cell = |name: &str| -> Option<&str> {
            header
                .iter()
                .position(|c| *c == name)
                .map(|i| cells[i])
                .filter(|c| !c.is_empty())
        };
        let op_name = cell("op").ok_or_else(|| TraceError::new(line, "op", "missing operation"))?;
        let key_cell = cell("key").ok_or_else(|| TraceError::new(line, "key", "missing key"))?;
        let key: u64 = key_cell.parse().map_err(|_| {
            TraceError::new(
                line,
                "key",
                format!("expected an unsigned integer, got '{key_cell}'"),
            )
        })?;
        let value = match cell("value") {
            None => None,
            Some(c) => Some(c.parse::<u64>().map_err(|_| {
                TraceError::new(
                    line,
                    "value",
                    format!("expected an unsigned integer, got '{c}'"),
                )
            })?),
        };
        let len = match cell("len") {
            None => None,
            Some(c) => Some(c.parse::<u32>().map_err(|_| {
                TraceError::new(
                    line,
                    "len",
                    format!("expected an unsigned integer, got '{c}'"),
                )
            })?),
        };
        let ts = match cell("ts") {
            None => None,
            Some(c) => Some(c.parse::<f64>().map_err(|_| {
                TraceError::new(line, "ts", format!("expected a number, got '{c}'"))
            })?),
        };
        ts_check.check(line, ts)?;
        entries.push(RawEntry {
            op: build_op(line, op_name, key, value, len)?,
            ts,
        });
    }
    Ok(entries)
}

// ---------------------------------------------------------------------------
// JSON lines
// ---------------------------------------------------------------------------

fn json_u64(line: usize, field: &str, v: &serde::Value) -> TResult<u64> {
    match v {
        serde::Value::UInt(n) => Ok(*n),
        other => Err(TraceError::new(
            line,
            field,
            format!("expected an unsigned integer, got {other:?}"),
        )),
    }
}

/// Parses a JSON-lines trace: one object per line with keys `op`, `key`,
/// and optionally `value`, `len`, `ts`. Unknown keys are rejected.
pub fn parse_jsonl(text: &str) -> TResult<Vec<RawEntry>> {
    let mut entries = Vec::new();
    let mut ts_check = TsChecker::new();
    let mut any = false;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        any = true;
        let value: serde::Value = serde_json::from_str(raw)
            .map_err(|e| TraceError::new(line, "json", format!("malformed JSON: {e}")))?;
        let Some(obj) = value.as_object() else {
            return Err(TraceError::new(line, "json", "expected a JSON object"));
        };
        for (k, _) in obj {
            if !COLUMNS.contains(&k.as_str()) {
                return Err(TraceError::new(
                    line,
                    k.clone(),
                    format!("unknown key '{k}' (known keys: {})", COLUMNS.join(", ")),
                ));
            }
        }
        let op_name = match serde::Value::get(obj, "op") {
            serde::Value::Str(s) => s.clone(),
            serde::Value::Null => {
                return Err(TraceError::new(line, "op", "missing operation"));
            }
            other => {
                return Err(TraceError::new(
                    line,
                    "op",
                    format!("expected a string, got {other:?}"),
                ));
            }
        };
        let key = match serde::Value::get(obj, "key") {
            serde::Value::Null => {
                return Err(TraceError::new(line, "key", "missing key"));
            }
            v => json_u64(line, "key", v)?,
        };
        let value_field = match serde::Value::get(obj, "value") {
            serde::Value::Null => None,
            v => Some(json_u64(line, "value", v)?),
        };
        let len = match serde::Value::get(obj, "len") {
            serde::Value::Null => None,
            v => Some(json_u64(line, "len", v)? as u32),
        };
        let ts = match serde::Value::get(obj, "ts") {
            serde::Value::Null => None,
            serde::Value::Float(t) => Some(*t),
            serde::Value::UInt(t) => Some(*t as f64),
            other => {
                return Err(TraceError::new(
                    line,
                    "ts",
                    format!("expected a number, got {other:?}"),
                ));
            }
        };
        ts_check.check(line, ts)?;
        entries.push(RawEntry {
            op: build_op(line, &op_name, key, value_field, len)?,
            ts,
        });
    }
    if !any {
        return Err(TraceError::new(0, "file", "empty trace file"));
    }
    Ok(entries)
}

// ---------------------------------------------------------------------------
// Canonical export
// ---------------------------------------------------------------------------

fn op_fields(op: &Operation) -> (&'static str, u64, Option<u64>, Option<u32>) {
    match op {
        Operation::Read { key } => ("read", *key, None, None),
        Operation::Insert { key, value } => ("insert", *key, Some(*value), None),
        Operation::Update { key, value } => ("update", *key, Some(*value), None),
        Operation::Scan { start, len } => ("scan", *start, None, Some(*len)),
        Operation::Delete { key } => ("delete", *key, None, None),
    }
}

fn has_timestamps(trace: &Trace) -> bool {
    trace.entries().iter().any(|e| e.arrival > 0.0)
}

/// Renders a trace in canonical CSV form: columns `op,key`, plus `value`
/// iff any entry writes, `len` iff any entry scans, `ts` iff any entry has
/// an open-loop arrival time. Floats render via `{:?}`.
pub fn export_csv(trace: &Trace) -> String {
    let with_value = trace
        .entries()
        .iter()
        .any(|e| matches!(e.op, Operation::Insert { .. } | Operation::Update { .. }));
    let with_len = trace
        .entries()
        .iter()
        .any(|e| matches!(e.op, Operation::Scan { .. }));
    let with_ts = has_timestamps(trace);
    let mut header = vec!["op", "key"];
    if with_value {
        header.push("value");
    }
    if with_len {
        header.push("len");
    }
    if with_ts {
        header.push("ts");
    }
    let mut out = header.join(",");
    out.push('\n');
    for entry in trace.entries() {
        let (name, key, value, len) = op_fields(&entry.op);
        out.push_str(name);
        out.push(',');
        out.push_str(&key.to_string());
        if with_value {
            out.push(',');
            if let Some(v) = value {
                out.push_str(&v.to_string());
            }
        }
        if with_len {
            out.push(',');
            if let Some(l) = len {
                out.push_str(&l.to_string());
            }
        }
        if with_ts {
            out.push(',');
            out.push_str(&format!("{:?}", entry.arrival));
        }
        out.push('\n');
    }
    out
}

/// Renders a trace in canonical JSON-lines form: one object per line with
/// only the keys the operation uses, in `op,key,value,len,ts` order.
pub fn export_jsonl(trace: &Trace) -> String {
    let with_ts = has_timestamps(trace);
    let mut out = String::new();
    for entry in trace.entries() {
        let (name, key, value, len) = op_fields(&entry.op);
        out.push_str(&format!("{{\"op\":\"{name}\",\"key\":{key}"));
        if let Some(v) = value {
            out.push_str(&format!(",\"value\":{v}"));
        }
        if let Some(l) = len {
            out.push_str(&format!(",\"len\":{l}"));
        }
        if with_ts {
            out.push_str(&format!(",\"ts\":{:?}", entry.arrival));
        }
        out.push_str("}\n");
    }
    out
}
