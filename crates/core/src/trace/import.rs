//! Importing parsed trace records into a replayable
//! [`Trace`].
//!
//! Timestamps, when present, become open-loop arrival times relative to
//! the first record, so a timestamped trace replays through
//! [`run_kv_trace`](crate::driver::run_kv_trace) with queueing latency at
//! any `--speed` multiplier. Timestamp-less traces leave every arrival at
//! zero, which `run_kv_trace` interprets as closed-loop replay (the next
//! operation issues when the previous completes).

use super::format::{parse_csv, parse_jsonl, RawEntry, TraceFormat};
use super::{TResult, TraceError};
use lsbench_workload::ops::Operation;
use lsbench_workload::trace::{Trace, TraceEntry};

/// A trace imported from an external file, plus what the file carried.
#[derive(Debug, Clone)]
pub struct ImportedTrace {
    /// The replayable trace (single phase named `"imported"`).
    pub trace: Trace,
    /// Whether the source carried timestamps (open-loop replay) or not
    /// (closed-loop fallback).
    pub had_timestamps: bool,
}

/// Aggregate statistics of an imported trace, for the CLI summary line.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total operations.
    pub ops: usize,
    /// Operations per kind, in `read,insert,update,scan,delete` order.
    pub by_kind: [usize; 5],
    /// Number of distinct keys touched.
    pub distinct_keys: usize,
    /// Smallest and largest key touched.
    pub key_range: (u64, u64),
    /// Trace duration in seconds (0 for timestamp-less traces).
    pub duration: f64,
}

impl ImportedTrace {
    /// Divides every arrival time by `speed` (> 1 replays faster). A no-op
    /// on timestamp-less traces.
    pub fn scale_speed(&mut self, speed: f64) -> TResult<()> {
        if !(speed > 0.0 && speed.is_finite()) {
            return Err(TraceError::new(
                0,
                "speed",
                format!("speed multiplier {speed} must be positive and finite"),
            ));
        }
        if !self.had_timestamps || speed == 1.0 {
            return Ok(());
        }
        let mut scaled = Trace::new(self.trace.phase_names().to_vec());
        for entry in self.trace.entries() {
            scaled.push(TraceEntry {
                op: entry.op,
                phase: entry.phase,
                arrival: entry.arrival / speed,
            });
        }
        self.trace = scaled;
        Ok(())
    }

    /// Computes aggregate statistics over the imported trace.
    pub fn stats(&self) -> TraceStats {
        let mut by_kind = [0usize; 5];
        let mut keys: Vec<u64> = Vec::with_capacity(self.trace.len());
        for entry in self.trace.entries() {
            let slot = match entry.op {
                Operation::Read { .. } => 0,
                Operation::Insert { .. } => 1,
                Operation::Update { .. } => 2,
                Operation::Scan { .. } => 3,
                Operation::Delete { .. } => 4,
            };
            by_kind[slot] += 1;
            keys.push(entry.op.key());
        }
        keys.sort_unstable();
        let key_range = match (keys.first(), keys.last()) {
            (Some(lo), Some(hi)) => (*lo, *hi),
            _ => (0, 0),
        };
        keys.dedup();
        let duration = self
            .trace
            .entries()
            .last()
            .map(|e| e.arrival)
            .unwrap_or(0.0);
        TraceStats {
            ops: self.trace.len(),
            by_kind,
            distinct_keys: keys.len(),
            key_range,
            duration,
        }
    }
}

/// Converts parsed records into a single-phase [`Trace`], rebasing
/// timestamps so the first arrival is zero.
pub fn assemble(raw: Vec<RawEntry>) -> TResult<ImportedTrace> {
    if raw.is_empty() {
        return Err(TraceError::new(0, "file", "trace has no operations"));
    }
    let had_timestamps = raw[0].ts.is_some();
    let t0 = raw[0].ts.unwrap_or(0.0);
    let mut trace = Trace::new(vec!["imported".to_string()]);
    for entry in raw {
        trace.push(TraceEntry {
            op: entry.op,
            phase: 0,
            arrival: entry.ts.map(|t| t - t0).unwrap_or(0.0),
        });
    }
    Ok(ImportedTrace {
        trace,
        had_timestamps,
    })
}

/// Parses and assembles a trace from text in the given format.
pub fn import_str(text: &str, format: TraceFormat) -> TResult<ImportedTrace> {
    let raw = match format {
        TraceFormat::Csv => parse_csv(text)?,
        TraceFormat::Jsonl => parse_jsonl(text)?,
    };
    assemble(raw)
}
