//! The trace subsystem: import real workloads, replay them, and fit them
//! to `.spec` scenarios.
//!
//! The paper's benchmark only matters if its workloads exercise adaptation
//! the way real ones do (§III-A), and real workloads arrive as *traces*,
//! not generator configurations. This subsystem closes that gap in three
//! layers:
//!
//! * [`mod@format`] — the on-disk trace formats: CSV and JSON-lines keyed-op
//!   traces (op, key, optional value, scan length, and timestamp), parsed
//!   with positioned [`TraceError`]s in the spec-parser style and exported
//!   back in a canonical form so `import ∘ export = id`.
//! * [`import`] — streams a parsed trace into the workload crate's
//!   [`Trace`](lsbench_workload::trace::Trace) so it replays through
//!   [`run_kv_trace`](crate::driver::run_kv_trace) at any `--speed`
//!   multiplier. Timestamped traces replay open-loop (latency includes
//!   queueing); timestamp-less traces fall back to closed-loop.
//! * [`summarize`] / [`fit`] — fits a `.spec` scenario to a trace:
//!   change-point phase segmentation over windowed op-mix/key-distribution
//!   statistics, per-phase mix and distribution estimation, and a
//!   repetition factor. The fitted scenario is rendered through the
//!   canonical renderer, so `parse ∘ render = id` holds and it archives,
//!   compares, and capacity-searches like any hand-written spec.

pub mod fit;
pub mod format;
pub mod import;
pub mod summarize;

pub use fit::{fit_scenario, FitReport};
pub use format::{export_csv, export_jsonl, parse_csv, parse_jsonl, TraceFormat};
pub use import::{import_str, ImportedTrace};
pub use summarize::{segment_trace, summarize_windows, Segment, WindowStats};

/// A positioned trace-import error: the line, the field (column or key),
/// and what went wrong. Line 0 means the whole file.
///
/// Mirrors [`SpecError`](crate::spec::SpecError) so trace diagnostics read
/// exactly like spec diagnostics: `line 7: op: unknown operation 'fetch'`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceError {
    /// 1-based source line (0 = the whole file).
    pub line: usize,
    /// The offending column or key.
    pub field: String,
    /// Human-readable reason.
    pub reason: String,
}

impl TraceError {
    /// Creates a positioned error.
    pub fn new(line: usize, field: impl Into<String>, reason: impl Into<String>) -> Self {
        TraceError {
            line,
            field: field.into(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}: {}", self.line, self.field, self.reason)
    }
}

impl std::error::Error for TraceError {}

impl From<TraceError> for crate::BenchError {
    fn from(e: TraceError) -> Self {
        crate::BenchError::InvalidScenario(format!("trace error: {e}"))
    }
}

/// Convenience result alias for the trace subsystem.
pub type TResult<T> = Result<T, TraceError>;
