//! Windowed trace statistics and change-point phase segmentation.
//!
//! Fitting a spec to a trace starts by slicing the trace into fixed-size
//! windows and summarizing each one as a feature vector: operation-kind
//! fractions, a positional key histogram over the trace's global key
//! range, the distinct-key ratio, and the top-key mass. A phase boundary
//! is declared wherever the L1 distance between consecutive window
//! features jumps above a threshold — an abrupt distribution or mix shift
//! moves a lot of histogram mass at once, while sampling noise between
//! same-phase windows stays well below it. Segments too short to be real
//! phases (fewer than two windows) are merged into their neighbor.

use lsbench_workload::ops::Operation;
use lsbench_workload::trace::Trace;

/// Number of buckets in the positional key histogram. Coarse enough that
/// same-phase sampling noise stays far below the segmentation threshold at
/// a few hundred ops per window, fine enough that a distribution shift
/// moves most of the mass.
pub const KEY_BUCKETS: usize = 16;

/// Default L1 feature-distance threshold above which consecutive windows
/// are declared to belong to different phases. Disjoint key distributions
/// are ~2.0 apart; same-phase noise at ≥250 ops/window is ~0.2.
pub const CHANGE_THRESHOLD: f64 = 0.6;

/// Summary features of one trace window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Index of the window's first entry in the trace.
    pub start: usize,
    /// Number of entries in the window.
    pub len: usize,
    /// Fractions per operation kind, in `read,insert,update,scan,delete`
    /// order.
    pub kind_fracs: [f64; 5],
    /// Normalized positional key histogram over the trace's global key
    /// range.
    pub key_hist: [f64; KEY_BUCKETS],
    /// Distinct keys in the window divided by window length.
    pub distinct_ratio: f64,
    /// Fraction of the window's operations hitting its single most
    /// frequent key.
    pub top1_mass: f64,
}

/// One detected phase segment, in entry indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Index of the segment's first entry.
    pub start: usize,
    /// Number of entries in the segment.
    pub len: usize,
}

fn kind_slot(op: &Operation) -> usize {
    match op {
        Operation::Read { .. } => 0,
        Operation::Insert { .. } => 1,
        Operation::Update { .. } => 2,
        Operation::Scan { .. } => 3,
        Operation::Delete { .. } => 4,
    }
}

/// Splits the trace into `window_count` near-equal windows and summarizes
/// each. The window count is clamped so every window holds at least one
/// entry.
pub fn summarize_windows(trace: &Trace, window_count: usize) -> Vec<WindowStats> {
    let n = trace.len();
    if n == 0 {
        return Vec::new();
    }
    let window_count = window_count.clamp(1, n);
    let (lo, hi) = global_key_range(trace);
    let span = (hi - lo).max(1) as f64;
    let mut out = Vec::with_capacity(window_count);
    for w in 0..window_count {
        let start = w * n / window_count;
        let end = (w + 1) * n / window_count;
        let len = end - start;
        let mut kind_counts = [0usize; 5];
        let mut hist = [0.0f64; KEY_BUCKETS];
        let mut keys: Vec<u64> = Vec::with_capacity(len);
        for entry in &trace.entries()[start..end] {
            kind_counts[kind_slot(&entry.op)] += 1;
            let key = entry.op.key();
            keys.push(key);
            let pos = (key.saturating_sub(lo)) as f64 / span;
            let bucket = ((pos * KEY_BUCKETS as f64) as usize).min(KEY_BUCKETS - 1);
            hist[bucket] += 1.0;
        }
        let total = len as f64;
        let mut kind_fracs = [0.0f64; 5];
        for (f, c) in kind_fracs.iter_mut().zip(kind_counts) {
            *f = c as f64 / total;
        }
        for h in hist.iter_mut() {
            *h /= total;
        }
        keys.sort_unstable();
        let (distinct, top1) = distinct_and_top1(&keys);
        out.push(WindowStats {
            start,
            len,
            kind_fracs,
            key_hist: hist,
            distinct_ratio: distinct as f64 / total,
            top1_mass: top1 as f64 / total,
        });
    }
    out
}

/// The smallest and largest key touched anywhere in the trace.
pub(crate) fn global_key_range(trace: &Trace) -> (u64, u64) {
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for entry in trace.entries() {
        let k = entry.op.key();
        lo = lo.min(k);
        hi = hi.max(k);
    }
    if lo > hi {
        (0, 0)
    } else {
        (lo, hi)
    }
}

/// Distinct count and top-1 run length of a *sorted* key slice.
pub(crate) fn distinct_and_top1(sorted: &[u64]) -> (usize, usize) {
    let mut distinct = 0usize;
    let mut top1 = 0usize;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        distinct += 1;
        top1 = top1.max(j - i);
        i = j;
    }
    (distinct, top1)
}

/// L1 distance between two windows' feature vectors (kind fractions plus
/// key histogram).
fn feature_distance(a: &WindowStats, b: &WindowStats) -> f64 {
    let mix: f64 = a
        .kind_fracs
        .iter()
        .zip(&b.kind_fracs)
        .map(|(x, y)| (x - y).abs())
        .sum();
    let hist: f64 = a
        .key_hist
        .iter()
        .zip(&b.key_hist)
        .map(|(x, y)| (x - y).abs())
        .sum();
    mix + hist
}

/// Detects phase boundaries: a segment break wherever the feature distance
/// between consecutive windows exceeds `threshold`; segments shorter than
/// two windows are merged into the previous one (real phases persist,
/// single-window blips are noise).
pub fn segment_trace(stats: &[WindowStats], threshold: f64) -> Vec<Segment> {
    if stats.is_empty() {
        return Vec::new();
    }
    // Window-index boundaries (each is the first window of a new segment).
    let mut breaks: Vec<usize> = Vec::new();
    for i in 1..stats.len() {
        if feature_distance(&stats[i - 1], &stats[i]) > threshold {
            breaks.push(i);
        }
    }
    // Assemble [start, end) window spans and merge too-short segments.
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    for b in breaks.into_iter().chain(std::iter::once(stats.len())) {
        spans.push((start, b));
        start = b;
    }
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for span in spans {
        let len = span.1 - span.0;
        match merged.last_mut() {
            Some(prev) if len < 2 => prev.1 = span.1,
            Some(prev) if prev.1 - prev.0 < 2 => prev.1 = span.1,
            _ => merged.push(span),
        }
    }
    merged
        .into_iter()
        .map(|(ws, we)| {
            let start = stats[ws].start;
            let end = if we == stats.len() {
                stats[we - 1].start + stats[we - 1].len
            } else {
                stats[we].start
            };
            Segment {
                start,
                len: end - start,
            }
        })
        .collect()
}
