//! `RemoteSut` — the driver-side adapter for an out-of-process SUT.
//!
//! Implements [`SystemUnderTest`] over a pool of TCP connections speaking
//! the frame protocol. Batches submitted through
//! [`SystemUnderTest::execute_many`] are split into chunk frames and kept
//! in flight up to a pipelining window; all chunks of one call travel on
//! **one** connection so the (stateful) server applies them in order,
//! while successive calls round-robin across the pool.
//!
//! **Timeout accounting.** The socket read deadline and the
//! retry/backoff schedule come from the same PR-4
//! [`RetryPolicy`] type the fault injector
//! uses — with `timeout` read as *wall* seconds here, since a real
//! network has no virtual clock. Every expired deadline bumps
//! `timeouts`, every reconnect-and-resend bumps `retries`, and the
//! driver folds those [`TransportStats`] deltas into the run's
//! [`FaultStats`](crate::faults::FaultStats) — one ledger for injected
//! and real failures (pinned by `tests/remote_conformance.rs`).
//! Semantics under retry are at-least-once: the server may have executed
//! a chunk whose response the deadline discarded. Conformance runs
//! therefore use no socket timeout; deadlines are for production runs
//! against flaky SUTs, where the record flags the affected ops as failed.

use super::frame::{write_frame, FrameReader};
use super::proto::{
    decode_response, encode_request, ExecReply, Request, RequestFrame, Response, PROTOCOL_VERSION,
};
use super::{WireError, WireResult};
use crate::faults::RetryPolicy;
use crate::{BenchError, Result};
use lsbench_sut::sut::{ExecOutcome, SutMetrics, SystemUnderTest, TransportStats};
use lsbench_sut::SutError;
use lsbench_workload::ops::Operation;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client pool configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteOptions {
    /// Connections in the pool. Successive `execute_many` calls
    /// round-robin across them; one call never spans connections.
    pub connections: usize,
    /// Operations per chunk frame (an oversized driver batch is split).
    pub batch: usize,
    /// Chunk frames kept in flight per call before reading responses.
    pub pipeline: usize,
    /// Socket deadline and reconnect-retry schedule. `timeout` is wall
    /// seconds (applied as the socket read deadline on execute traffic);
    /// `None` waits forever — the right choice for conformance runs.
    pub retry: RetryPolicy,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            connections: 2,
            batch: 64,
            pipeline: 4,
            retry: RetryPolicy::default(),
        }
    }
}

/// One pooled connection, already past the handshake.
struct Conn {
    /// Raw handle for deadline control; reader/writer hold clones.
    stream: TcpStream,
    reader: FrameReader<BufReader<TcpStream>>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Conn {
    /// Connects and runs the version handshake; returns the connection
    /// plus the hosted SUT's name from `HelloOk`.
    fn open(endpoint: &str) -> WireResult<(Conn, String)> {
        let stream = TcpStream::connect(endpoint).map_err(|e| WireError::Io {
            context: format!("connecting to {endpoint}: {e}"),
        })?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone().map_err(|e| WireError::Io {
            context: format!("cloning connection: {e}"),
        })?;
        let write_half = stream.try_clone().map_err(|e| WireError::Io {
            context: format!("cloning connection: {e}"),
        })?;
        let mut conn = Conn {
            stream,
            reader: FrameReader::new(BufReader::new(read_half)),
            writer: BufWriter::new(write_half),
            next_id: 0,
        };
        let hello = Request::Hello {
            version: PROTOCOL_VERSION,
            client: "lsbench-remote-sut".to_string(),
        };
        match conn.round_trip(hello)? {
            Response::HelloOk { version, sut } if version == PROTOCOL_VERSION => Ok((conn, sut)),
            Response::HelloOk { version, .. } | Response::VersionMismatch { server: version } => {
                Err(WireError::VersionMismatch {
                    ours: PROTOCOL_VERSION,
                    theirs: version,
                })
            }
            other => Err(WireError::Protocol {
                frame: 0,
                reason: format!("unexpected handshake response: {other:?}"),
            }),
        }
    }

    /// Queues one request (no flush); returns its id.
    fn send(&mut self, req: Request) -> WireResult<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.writer, &encode_request(&RequestFrame { id, req }))?;
        Ok(id)
    }

    fn flush(&mut self) -> WireResult<()> {
        self.writer.flush().map_err(|e| WireError::Io {
            context: format!("flushing requests: {e}"),
        })
    }

    /// Reads the response for request `id`; pipelined responses arrive in
    /// request order, so any other id is a protocol violation.
    fn read_response(&mut self, id: u64) -> WireResult<Response> {
        let ordinal = self.reader.frame_ordinal();
        let payload = self.reader.read_frame()?.ok_or(WireError::Truncated {
            frame: ordinal,
            offset: self.reader.byte_offset(),
            expected: 4,
            got: 0,
        })?;
        let offset = self.reader.byte_offset() - payload.len() as u64;
        let frame = decode_response(&payload, ordinal, offset)?;
        if frame.id != id {
            return Err(WireError::Protocol {
                frame: ordinal,
                reason: format!("response id {} does not match request id {id}", frame.id),
            });
        }
        match frame.resp {
            Response::Error { reason } => Err(WireError::Remote { reason }),
            resp => Ok(resp),
        }
    }

    fn round_trip(&mut self, req: Request) -> WireResult<Response> {
        let id = self.send(req)?;
        self.flush()?;
        self.read_response(id)
    }

    /// Sets (or clears) the socket read deadline.
    fn set_deadline(&mut self, deadline: Option<Duration>) {
        let _ = self.stream.set_read_timeout(deadline);
    }
}

/// Pool state behind the adapter's `RefCell` (needed because the trait
/// reads metrics through `&self`).
struct Inner {
    endpoint: String,
    opts: RemoteOptions,
    conns: Vec<Conn>,
    next_conn: usize,
    stats: TransportStats,
    /// First fatal wire error; once set, every operation fails fast.
    dead: Option<String>,
}

impl Inner {
    /// Replaces connection `idx` after a transport failure. The server's
    /// SUT state lives outside the connection, so a reconnect resumes
    /// against the same state.
    fn reconnect(&mut self, idx: usize) -> WireResult<()> {
        let (conn, _) = Conn::open(&self.endpoint)?;
        self.conns[idx] = conn;
        Ok(())
    }

    /// One control round trip (no socket deadline — control requests may
    /// legitimately take long, e.g. a server-side dataset build on Load).
    fn control(&mut self, req: Request) -> WireResult<Response> {
        if let Some(reason) = &self.dead {
            return Err(WireError::Remote {
                reason: reason.clone(),
            });
        }
        self.conns[0].set_deadline(None);
        self.conns[0].round_trip(req)
    }

    /// Control round trip expecting `Response::Work`; transport failures
    /// mark the pool dead and report zero work (the next `execute`
    /// surfaces the error fatally).
    fn work(&mut self, req: Request) -> u64 {
        match self.control(req) {
            Ok(Response::Work { work }) => work,
            Ok(other) => {
                self.dead = Some(format!("unexpected response: {other:?}"));
                0
            }
            Err(e) => {
                self.dead = Some(e.to_string());
                0
            }
        }
    }

    /// The pipelined batch path. See the module docs for the retry and
    /// at-least-once semantics.
    fn execute_many(&mut self, ops: &[Operation]) -> Vec<lsbench_sut::Result<ExecOutcome>> {
        if ops.is_empty() {
            return Vec::new();
        }
        if let Some(reason) = self.dead.clone() {
            return ops
                .iter()
                .map(|_| Err(SutError::Internal(reason.clone())))
                .collect();
        }
        let idx = self.next_conn % self.conns.len();
        self.next_conn = self.next_conn.wrapping_add(1);
        let chunks: Vec<&[Operation]> = ops.chunks(self.opts.batch.max(1)).collect();
        let pipeline = self.opts.pipeline.max(1);
        let deadline = self.opts.retry.timeout.map(Duration::from_secs_f64);
        self.conns[idx].set_deadline(deadline);

        let mut results: Vec<lsbench_sut::Result<ExecOutcome>> = Vec::with_capacity(ops.len());
        let mut pending: VecDeque<u64> = VecDeque::new();
        let mut next_send = 0usize;
        let mut next_read = 0usize;
        // Reconnect attempts already spent on the chunk at `next_read`.
        let mut attempts = 0u32;
        while next_read < chunks.len() {
            // Fill the in-flight window, then wait for the oldest chunk.
            let step: WireResult<Response> = (|| {
                while next_send < chunks.len() && next_send - next_read < pipeline {
                    let req = Request::ExecuteMany {
                        ops: chunks[next_send].to_vec(),
                    };
                    pending.push_back(self.conns[idx].send(req)?);
                    next_send += 1;
                }
                self.conns[idx].flush()?;
                let id = *pending.front().expect("window is non-empty");
                self.conns[idx].read_response(id)
            })();
            match step {
                Ok(Response::ExecMany { results: replies })
                    if replies.len() == chunks[next_read].len() =>
                {
                    results.extend(replies.into_iter().map(ExecReply::into_result));
                    pending.pop_front();
                    next_read += 1;
                    attempts = 0;
                }
                Ok(other) => {
                    let reason = format!("unexpected execute response: {other:?}");
                    self.dead = Some(reason.clone());
                    break;
                }
                Err(WireError::Timeout { .. }) => {
                    self.stats.timeouts += 1;
                    let policy = self.opts.retry;
                    let give_up = attempts >= policy.max_retries;
                    if give_up {
                        // Out of retries: flag this chunk's ops as failed
                        // and move on (at-least-once; see module docs).
                        results
                            .extend(chunks[next_read].iter().map(|_| Ok(ExecOutcome::failed(0))));
                        next_read += 1;
                        attempts = 0;
                    } else {
                        attempts += 1;
                        self.stats.retries += 1;
                        let backoff = policy.backoff_base
                            * policy.backoff_multiplier.powi(attempts as i32 - 1);
                        if backoff > 0.0 {
                            std::thread::sleep(Duration::from_secs_f64(backoff));
                        }
                    }
                    // The old connection may still deliver stale frames;
                    // resynchronize on a fresh one and re-send everything
                    // not yet acknowledged.
                    pending.clear();
                    next_send = next_read;
                    if let Err(e) = self.reconnect(idx) {
                        self.dead = Some(e.to_string());
                        break;
                    }
                    self.conns[idx].set_deadline(deadline);
                }
                Err(e) => {
                    self.dead = Some(e.to_string());
                    break;
                }
            }
        }
        if let Some(reason) = &self.dead {
            while results.len() < ops.len() {
                results.push(Err(SutError::Internal(reason.clone())));
            }
        }
        self.conns[idx].set_deadline(None);
        results
    }
}

/// An out-of-process SUT reached over the wire protocol. Construct with
/// [`RemoteSut::connect`], then [`RemoteSut::load`] a scenario before
/// handing it to the [`Runner`](crate::runner::Runner).
pub struct RemoteSut {
    /// Display name reported by the server's `LoadOk` (before `load`, the
    /// hosted SUT's registry name from the handshake).
    name: String,
    inner: RefCell<Inner>,
}

impl RemoteSut {
    /// Connects the pool and runs the handshake on every connection.
    pub fn connect(endpoint: &str, opts: RemoteOptions) -> Result<RemoteSut> {
        let count = opts.connections.max(1);
        let mut conns = Vec::with_capacity(count);
        let mut name = String::new();
        for _ in 0..count {
            let (conn, sut) = Conn::open(endpoint).map_err(|e| BenchError::Sut(e.to_string()))?;
            conns.push(conn);
            name = sut;
        }
        Ok(RemoteSut {
            name,
            inner: RefCell::new(Inner {
                endpoint: endpoint.to_string(),
                opts,
                conns,
                next_conn: 0,
                stats: TransportStats::default(),
                dead: None,
            }),
        })
    }

    /// Sends the rendered scenario spec; the server parses it, builds the
    /// dataset, and constructs its hosted SUT over it. Idempotent.
    pub fn load(&mut self, spec: &str) -> Result<()> {
        let resp = self
            .inner
            .get_mut()
            .control(Request::Load {
                spec: spec.to_string(),
            })
            .map_err(|e| BenchError::Sut(e.to_string()))?;
        match resp {
            Response::LoadOk { sut } => {
                self.name = sut;
                Ok(())
            }
            other => Err(BenchError::Sut(format!(
                "unexpected Load response: {other:?}"
            ))),
        }
    }

    /// The endpoint this adapter is connected to.
    pub fn endpoint(&self) -> String {
        self.inner.borrow().endpoint.clone()
    }
}

impl SystemUnderTest<Operation> for RemoteSut {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn train(&mut self, budget: u64) -> u64 {
        self.inner.get_mut().work(Request::Train { budget })
    }

    fn execute(&mut self, op: &Operation) -> lsbench_sut::Result<ExecOutcome> {
        self.execute_many(std::slice::from_ref(op))
            .pop()
            .expect("one op in, one result out")
    }

    fn execute_many(&mut self, ops: &[Operation]) -> Vec<lsbench_sut::Result<ExecOutcome>> {
        self.inner.get_mut().execute_many(ops)
    }

    fn on_phase_change(&mut self, new_phase: usize) -> u64 {
        self.inner
            .get_mut()
            .work(Request::PhaseChange { phase: new_phase })
    }

    fn maintenance(&mut self) -> u64 {
        self.inner.get_mut().work(Request::Maintenance)
    }

    fn crash(&mut self) -> u64 {
        self.inner.get_mut().work(Request::Crash)
    }

    fn metrics(&self) -> SutMetrics {
        let mut inner = self.inner.borrow_mut();
        match inner.control(Request::Metrics) {
            Ok(Response::Metrics { metrics }) => metrics,
            Ok(other) => {
                inner.dead = Some(format!("unexpected response: {other:?}"));
                SutMetrics::default()
            }
            Err(e) => {
                inner.dead = Some(e.to_string());
                SutMetrics::default()
            }
        }
    }

    fn transport_stats(&self) -> TransportStats {
        self.inner.borrow().stats
    }
}
