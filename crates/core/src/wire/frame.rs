//! The length-prefixed frame layer.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! payload bytes (JSON, but this layer does not care). The decoder is a
//! plain state machine over [`std::io::Read`], so the same code path
//! serves live sockets and the in-memory cursors the property tests feed
//! it; it tracks the frame ordinal and absolute byte offset so every
//! failure is positioned.

use super::{WireError, WireResult};
use std::io::{Read, Write};

/// Hard cap on a single frame's payload. Large enough for any batch the
/// client pool will ever send (thousands of operations), small enough
/// that a garbage length prefix cannot make the server try to allocate
/// gigabytes.
pub const MAX_FRAME_LEN: u64 = 16 * 1024 * 1024;

/// Incremental frame decoder over any [`Read`], tracking position for
/// error reporting.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    /// Frames completed so far on this stream (ordinal of the next frame).
    frame: u64,
    /// Absolute byte offset consumed from the stream.
    offset: u64,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte source.
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            frame: 0,
            offset: 0,
        }
    }

    /// Ordinal of the next frame (0-based).
    pub fn frame_ordinal(&self) -> u64 {
        self.frame
    }

    /// Absolute byte offset consumed so far.
    pub fn byte_offset(&self) -> u64 {
        self.offset
    }

    /// Reads one frame's payload. `Ok(None)` means the stream ended
    /// cleanly on a frame boundary; ending anywhere else is
    /// [`WireError::Truncated`]. Socket deadline expiry maps to
    /// [`WireError::Timeout`].
    pub fn read_frame(&mut self) -> WireResult<Option<Vec<u8>>> {
        let start = self.offset;
        let mut prefix = [0u8; 4];
        match self.read_exact_counted(&mut prefix) {
            Ok(0) => return Ok(None),
            Ok(got) if got < 4 => {
                return Err(WireError::Truncated {
                    frame: self.frame,
                    offset: start,
                    expected: 4,
                    got: got as u64,
                })
            }
            Ok(_) => {}
            Err(e) => return Err(self.io_error(e, "reading frame length prefix")),
        }
        let len = u32::from_be_bytes(prefix) as u64;
        if len == 0 {
            return Err(WireError::Malformed {
                frame: self.frame,
                offset: start,
                reason: "zero-length frame".to_string(),
            });
        }
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized {
                frame: self.frame,
                offset: start,
                len,
                max: MAX_FRAME_LEN,
            });
        }
        let mut payload = vec![0u8; len as usize];
        match self.read_exact_counted(&mut payload) {
            Ok(got) if (got as u64) < len => {
                return Err(WireError::Truncated {
                    frame: self.frame,
                    offset: start,
                    expected: len,
                    got: got as u64,
                })
            }
            Ok(_) => {}
            Err(e) => return Err(self.io_error(e, "reading frame payload")),
        }
        self.frame += 1;
        Ok(Some(payload))
    }

    /// Fills `buf` as far as the stream allows, counting consumed bytes
    /// into `self.offset`; returns how many bytes were read (short only
    /// at EOF).
    fn read_exact_counted(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut filled = 0usize;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => {
                    filled += n;
                    self.offset += n as u64;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(filled)
    }

    fn io_error(&self, e: std::io::Error, context: &str) -> WireError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => WireError::Timeout {
                context: format!("{context} (frame {}, byte {})", self.frame, self.offset),
            },
            _ => WireError::Io {
                context: format!(
                    "{context} (frame {}, byte {}): {e}",
                    self.frame, self.offset
                ),
            },
        }
    }
}

/// Writes one frame (length prefix + payload). The caller flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> WireResult<()> {
    if payload.is_empty() || payload.len() as u64 > MAX_FRAME_LEN {
        return Err(WireError::Malformed {
            frame: 0,
            offset: 0,
            reason: format!("refusing to write a {}-byte frame", payload.len()),
        });
    }
    let prefix = (payload.len() as u32).to_be_bytes();
    w.write_all(&prefix)
        .and_then(|()| w.write_all(payload))
        .map_err(|e| WireError::Io {
            context: format!("writing frame: {e}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn encode(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            write_frame(&mut out, p).unwrap();
        }
        out
    }

    #[test]
    fn round_trips_frames_in_order() {
        let bytes = encode(&[b"hello", b"world", &[0xFFu8; 300]]);
        let mut r = FrameReader::new(Cursor::new(bytes));
        assert_eq!(r.read_frame().unwrap().unwrap(), b"hello");
        assert_eq!(r.read_frame().unwrap().unwrap(), b"world");
        assert_eq!(r.read_frame().unwrap().unwrap(), vec![0xFFu8; 300]);
        assert_eq!(r.read_frame().unwrap(), None);
        assert_eq!(r.frame_ordinal(), 3);
    }

    #[test]
    fn truncated_prefix_is_positioned() {
        let mut bytes = encode(&[b"ok"]);
        bytes.extend_from_slice(&[0, 0]); // half a length prefix
        let mut r = FrameReader::new(Cursor::new(bytes));
        r.read_frame().unwrap().unwrap();
        match r.read_frame().unwrap_err() {
            WireError::Truncated {
                frame,
                offset,
                expected,
                got,
            } => {
                assert_eq!(frame, 1);
                assert_eq!(offset, 6); // 4-byte prefix + "ok"
                assert_eq!(expected, 4);
                assert_eq!(got, 2);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_positioned() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&10u32.to_be_bytes());
        bytes.extend_from_slice(b"only4");
        let mut r = FrameReader::new(Cursor::new(bytes));
        match r.read_frame().unwrap_err() {
            WireError::Truncated { expected, got, .. } => {
                assert_eq!(expected, 10);
                assert_eq!(got, 5);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn oversized_prefix_rejected_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = FrameReader::new(Cursor::new(bytes));
        match r.read_frame().unwrap_err() {
            WireError::Oversized { len, max, .. } => {
                assert_eq!(len, u32::MAX as u64);
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_frame_is_malformed() {
        let mut r = FrameReader::new(Cursor::new(0u32.to_be_bytes().to_vec()));
        assert!(matches!(
            r.read_frame().unwrap_err(),
            WireError::Malformed { .. }
        ));
    }

    #[test]
    fn writer_refuses_empty_and_oversized() {
        let mut out = Vec::new();
        assert!(write_frame(&mut out, b"").is_err());
        assert!(out.is_empty());
    }
}
