//! Out-of-process SUTs over a length-prefixed wire protocol.
//!
//! The source paper's original benchmark design runs the driver **on a
//! separate machine over a fast network**; the in-process harness earned
//! that deviation back piece by piece, and this module closes the gap: a
//! [`WireServer`] hosts any registered SUT behind a TCP socket speaking a
//! small versioned frame protocol, and a [`RemoteSut`] adapter implements
//! [`SystemUnderTest`](lsbench_sut::sut::SystemUnderTest) over a
//! multi-connection client pool with request batching and in-flight
//! pipelining — so the driver never learns whether its SUT crossed a
//! process boundary.
//!
//! The protocol is deliberately primitive so SUTs in any language can
//! implement it: each frame is a 4-byte big-endian payload length followed
//! by a JSON object (see [`proto`]), the first exchange on every
//! connection is a [`PROTOCOL_VERSION`] handshake, and every decode
//! failure is a typed, *positioned* [`WireError`] (frame ordinal + byte
//! offset) followed by a clean connection close — never a panic.
//!
//! **Determinism.** The in-process virtual-clock mode remains the
//! conformance oracle: a remote run over a healthy transport produces a
//! [`RunRecord`](crate::record::RunRecord) bit-identical to the local run
//! of the same scenario (enforced by `tests/remote_conformance.rs`),
//! because SUT work units — not wall time — still drive the virtual
//! clock. Real socket deadlines, when enabled, flow through the **same**
//! timeout/retry ledger as chaos-injected faults
//! ([`FaultStats`](crate::faults::FaultStats)), so a network timeout and
//! an injected one are indistinguishable in the record.

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::{RemoteOptions, RemoteSut};
pub use frame::{FrameReader, MAX_FRAME_LEN};
pub use proto::{ExecReply, Request, RequestFrame, Response, ResponseFrame, PROTOCOL_VERSION};
pub use server::{ServerHandle, WireServer};

/// Errors produced by the wire layer. Decode errors carry the frame
/// ordinal (0-based count of frames completed on the connection) and the
/// byte offset into the connection stream where the problem was detected,
/// so protocol bugs in foreign SUT implementations are locatable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// An I/O error outside the timeout class.
    Io {
        /// What the connection was doing when the error hit.
        context: String,
    },
    /// A socket deadline expired while waiting for bytes.
    Timeout {
        /// What the connection was waiting for.
        context: String,
    },
    /// A frame announced a payload longer than [`MAX_FRAME_LEN`].
    Oversized {
        /// Frame ordinal on the connection (0-based).
        frame: u64,
        /// Byte offset of the frame's length prefix.
        offset: u64,
        /// The announced payload length.
        len: u64,
        /// The configured maximum.
        max: u64,
    },
    /// The stream ended mid-prefix or mid-payload.
    Truncated {
        /// Frame ordinal on the connection (0-based).
        frame: u64,
        /// Byte offset where the truncation was detected.
        offset: u64,
        /// Bytes the decoder still expected.
        expected: u64,
        /// Bytes actually available.
        got: u64,
    },
    /// The payload was not the JSON shape the protocol requires.
    Malformed {
        /// Frame ordinal on the connection (0-based).
        frame: u64,
        /// Byte offset of the frame's payload.
        offset: u64,
        /// What failed to parse.
        reason: String,
    },
    /// The peers disagree on [`PROTOCOL_VERSION`].
    VersionMismatch {
        /// Our version.
        ours: u32,
        /// The peer's version.
        theirs: u32,
    },
    /// A well-formed frame that is illegal at this point in the exchange
    /// (e.g. an `Execute` before `Load`, or a response id mismatch).
    Protocol {
        /// Frame ordinal on the connection (0-based).
        frame: u64,
        /// What rule was violated.
        reason: String,
    },
    /// The server reported an application-level error.
    Remote {
        /// The server's error message.
        reason: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io { context } => write!(f, "wire i/o error: {context}"),
            WireError::Timeout { context } => write!(f, "wire timeout: {context}"),
            WireError::Oversized {
                frame,
                offset,
                len,
                max,
            } => write!(
                f,
                "frame {frame} at byte {offset}: announced payload of {len} bytes exceeds the {max}-byte limit"
            ),
            WireError::Truncated {
                frame,
                offset,
                expected,
                got,
            } => write!(
                f,
                "frame {frame} at byte {offset}: stream truncated ({got} of {expected} bytes)"
            ),
            WireError::Malformed {
                frame,
                offset,
                reason,
            } => write!(f, "frame {frame} at byte {offset}: malformed payload: {reason}"),
            WireError::VersionMismatch { ours, theirs } => write!(
                f,
                "protocol version mismatch: ours {ours}, peer {theirs}"
            ),
            WireError::Protocol { frame, reason } => {
                write!(f, "frame {frame}: protocol violation: {reason}")
            }
            WireError::Remote { reason } => write!(f, "remote SUT error: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience result alias for the wire layer.
pub type WireResult<T> = std::result::Result<T, WireError>;
