//! Protocol messages — the full [`SystemUnderTest`] surface as JSON
//! payloads.
//!
//! Every frame carries one `{id, req}` or `{id, resp}` object. Ids are
//! per-connection, strictly increasing, and echoed verbatim by the
//! server; the client pool uses them to match pipelined responses to
//! in-flight requests. The first exchange on a connection must be
//! [`Request::Hello`] / [`Response::HelloOk`] — anything else is a
//! protocol violation and closes the connection.
//!
//! [`SystemUnderTest`]: lsbench_sut::sut::SystemUnderTest

use super::{WireError, WireResult};
use lsbench_sut::sut::{ExecOutcome, SutMetrics};
use lsbench_workload::ops::Operation;
use serde::{Deserialize, Serialize};

/// Version of the wire protocol. Bump on any incompatible change to the
/// frame format or message shapes; the handshake rejects mismatches
/// explicitly instead of letting decoding fail somewhere downstream.
pub const PROTOCOL_VERSION: u32 = 1;

/// One client→server frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestFrame {
    /// Per-connection request id, echoed in the matching response.
    pub id: u64,
    /// The request proper.
    pub req: Request,
}

/// One server→client frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseFrame {
    /// The id of the request this answers.
    pub id: u64,
    /// The response proper.
    pub resp: Response,
}

/// Client→server messages, mirroring the `SystemUnderTest` surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Version handshake; must be the first request on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
        /// Free-form client identification for server logs.
        client: String,
    },
    /// Parse the rendered scenario spec, build its dataset, and construct
    /// the hosted SUT over it. Idempotent per server: reconnects after a
    /// transport failure see the already-loaded SUT.
    Load {
        /// A rendered scenario spec (`render_scenario` output).
        spec: String,
    },
    /// `SystemUnderTest::train`.
    Train {
        /// Offline training work budget.
        budget: u64,
    },
    /// `SystemUnderTest::execute` for a single operation.
    Execute {
        /// The operation.
        op: Operation,
    },
    /// `SystemUnderTest::execute_many` for a batch; the response carries
    /// one reply per operation, in order.
    ExecuteMany {
        /// The batch, in execution order.
        ops: Vec<Operation>,
    },
    /// `SystemUnderTest::on_phase_change`.
    PhaseChange {
        /// The new phase index.
        phase: usize,
    },
    /// `SystemUnderTest::maintenance`.
    Maintenance,
    /// `SystemUnderTest::crash` (fault-injection hook, not a real crash).
    Crash,
    /// `SystemUnderTest::metrics`.
    Metrics,
    /// Close the connection politely.
    Shutdown,
}

/// Server→client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
        /// Name of the SUT this server hosts.
        sut: String,
    },
    /// Handshake rejected: versions differ. Connection closes after this.
    VersionMismatch {
        /// The server's [`PROTOCOL_VERSION`].
        server: u32,
    },
    /// `Load` succeeded.
    LoadOk {
        /// The constructed SUT's display name.
        sut: String,
    },
    /// Work units spent (`Train`/`PhaseChange`/`Maintenance`/`Crash`).
    Work {
        /// Work units.
        work: u64,
    },
    /// One `Execute` result.
    Exec {
        /// The outcome or failure.
        result: ExecReply,
    },
    /// One `ExecuteMany` result set, in request order.
    ExecMany {
        /// One reply per operation.
        results: Vec<ExecReply>,
    },
    /// A `Metrics` snapshot.
    Metrics {
        /// The SUT's metrics.
        metrics: SutMetrics,
    },
    /// Acknowledges `Shutdown`; the connection closes after this.
    Bye,
    /// The request was understood but could not be served.
    Error {
        /// What went wrong.
        reason: String,
    },
}

/// Wire form of one `Result<ExecOutcome, SutError>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExecReply {
    /// The operation executed (possibly unsupported-but-counted).
    Outcome(ExecOutcome),
    /// The SUT failed internally; the run should abort.
    Failed {
        /// The SUT's error message.
        reason: String,
    },
}

impl ExecReply {
    /// Converts a SUT execution result to its wire form.
    pub fn from_result(r: &lsbench_sut::Result<ExecOutcome>) -> Self {
        match r {
            Ok(o) => ExecReply::Outcome(*o),
            Err(e) => ExecReply::Failed {
                reason: e.to_string(),
            },
        }
    }

    /// Converts the wire form back to a SUT execution result.
    pub fn into_result(self) -> lsbench_sut::Result<ExecOutcome> {
        match self {
            ExecReply::Outcome(o) => Ok(o),
            ExecReply::Failed { reason } => Err(lsbench_sut::SutError::Internal(reason)),
        }
    }
}

/// Encodes a request frame to its JSON payload bytes.
pub fn encode_request(frame: &RequestFrame) -> Vec<u8> {
    serde_json::to_string(frame)
        .expect("request serialization is total")
        .into_bytes()
}

/// Encodes a response frame to its JSON payload bytes.
pub fn encode_response(frame: &ResponseFrame) -> Vec<u8> {
    serde_json::to_string(frame)
        .expect("response serialization is total")
        .into_bytes()
}

/// Decodes a request frame, positioning failures at `(frame, offset)`.
pub fn decode_request(payload: &[u8], frame: u64, offset: u64) -> WireResult<RequestFrame> {
    decode(payload, frame, offset)
}

/// Decodes a response frame, positioning failures at `(frame, offset)`.
pub fn decode_response(payload: &[u8], frame: u64, offset: u64) -> WireResult<ResponseFrame> {
    decode(payload, frame, offset)
}

fn decode<T: Deserialize>(payload: &[u8], frame: u64, offset: u64) -> WireResult<T> {
    let text = std::str::from_utf8(payload).map_err(|e| WireError::Malformed {
        frame,
        offset,
        reason: format!("payload is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| WireError::Malformed {
        frame,
        offset,
        reason: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let frames = vec![
            RequestFrame {
                id: 0,
                req: Request::Hello {
                    version: PROTOCOL_VERSION,
                    client: "lsbench".to_string(),
                },
            },
            RequestFrame {
                id: 1,
                req: Request::ExecuteMany {
                    ops: vec![
                        Operation::Read { key: 7 },
                        Operation::Scan { start: 1, len: 3 },
                        Operation::Insert { key: 9, value: 10 },
                    ],
                },
            },
            RequestFrame {
                id: 2,
                req: Request::Maintenance,
            },
        ];
        for f in frames {
            let bytes = encode_request(&f);
            let back = decode_request(&bytes, 0, 0).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn response_round_trip() {
        let frames = vec![
            ResponseFrame {
                id: 3,
                resp: Response::ExecMany {
                    results: vec![
                        ExecReply::Outcome(ExecOutcome::ok(12)),
                        ExecReply::Failed {
                            reason: "boom".to_string(),
                        },
                    ],
                },
            },
            ResponseFrame {
                id: 4,
                resp: Response::Metrics {
                    metrics: SutMetrics::default(),
                },
            },
            ResponseFrame {
                id: 5,
                resp: Response::VersionMismatch { server: 9 },
            },
        ];
        for f in frames {
            let bytes = encode_response(&f);
            let back = decode_response(&bytes, 0, 0).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn garbage_payloads_are_positioned_malformed() {
        for bad in [&b"not json"[..], &[0xC3, 0x28][..], b"{\"id\":1}"] {
            match decode_request(bad, 7, 99) {
                Err(WireError::Malformed { frame, offset, .. }) => {
                    assert_eq!(frame, 7);
                    assert_eq!(offset, 99);
                }
                other => panic!("expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn exec_reply_preserves_result_semantics() {
        let ok: lsbench_sut::Result<ExecOutcome> = Ok(ExecOutcome::failed(3));
        assert_eq!(ExecReply::from_result(&ok).into_result(), ok);
        let err: lsbench_sut::Result<ExecOutcome> =
            Err(lsbench_sut::SutError::Internal("x".to_string()));
        let back = ExecReply::from_result(&err).into_result();
        assert!(matches!(back, Err(lsbench_sut::SutError::Internal(_))));
    }
}
