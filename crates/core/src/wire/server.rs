//! The `lsbench serve` server loop: hosts one registered SUT behind TCP.
//!
//! One listener, one thread per connection, one shared SUT behind a
//! mutex. The SUT built by a successful [`Request::Load`] survives
//! connection churn — a client that reconnects after a socket timeout
//! resumes against the same state (reconnects re-send only `Hello`),
//! which is what makes client-side retry-with-reconnect safe; each new
//! explicit `Load` rebuilds from scratch so consecutive runs against a
//! long-lived server start fresh. Every malformed frame yields a
//! best-effort [`Response::Error`] and a clean close of *that*
//! connection; the accept loop never dies with a client.

use super::frame::{write_frame, FrameReader};
use super::proto::{
    decode_request, encode_response, Request, RequestFrame, Response, ResponseFrame,
    PROTOCOL_VERSION,
};
use super::{WireError, WireResult};
use crate::runner::BoxedKvSut;
use crate::spec::parse_scenario;
use crate::sut_registry::SutRegistry;
use crate::{BenchError, Result};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// State shared by every connection thread.
struct Shared {
    registry: SutRegistry,
    /// Registry name of the SUT this server hosts.
    sut_name: String,
    /// The hosted SUT, constructed by the first `Load`. `(display name,
    /// sut)` so `HelloOk` can report it without locking the SUT itself.
    state: Mutex<Option<BoxedKvSut>>,
    stop: AtomicBool,
}

/// A TCP server hosting one registered SUT. See the [module docs](self).
pub struct WireServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Handle to a server running on a background thread; used by tests and
/// the CLI's self-checks. Dropping the handle does **not** stop the
/// server — call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    join: std::thread::JoinHandle<()>,
}

impl WireServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// validates that `sut_name` is registered. No connection is accepted
    /// until [`run`](Self::run) or [`spawn`](Self::spawn).
    pub fn bind<A: ToSocketAddrs>(addr: A, registry: SutRegistry, sut_name: &str) -> Result<Self> {
        if !registry.contains(sut_name) {
            return Err(BenchError::InvalidScenario(format!(
                "unknown SUT '{sut_name}' (registered: {})",
                registry.names().join(", ")
            )));
        }
        let listener = TcpListener::bind(addr)
            .map_err(|e| BenchError::Sut(format!("cannot bind wire server: {e}")))?;
        Ok(WireServer {
            listener,
            shared: Arc::new(Shared {
                registry,
                sut_name: sut_name.to_string(),
                state: Mutex::new(None),
                stop: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| BenchError::Sut(format!("cannot read server address: {e}")))
    }

    /// Serves connections until shut down. Each connection gets its own
    /// thread; connection-level protocol errors close that connection
    /// only.
    pub fn run(self) -> Result<()> {
        let shared = self.shared;
        let mut conn_threads = Vec::new();
        for stream in self.listener.incoming() {
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let shared = Arc::clone(&shared);
                    conn_threads.push(std::thread::spawn(move || {
                        // The error has already been reported to the peer
                        // (best effort); the server just moves on.
                        let _ = serve_connection(stream, &shared);
                    }));
                }
                Err(_) => continue,
            }
        }
        for t in conn_threads {
            let _ = t.join();
        }
        Ok(())
    }

    /// Runs the server on a background thread and returns a handle.
    pub fn spawn(self) -> Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let join = std::thread::spawn(move || {
            let _ = self.run();
        });
        Ok(ServerHandle { addr, shared, join })
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Connections
    /// already being served finish their current exchange.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.join.join();
    }
}

/// Serves one connection to completion: handshake, then request loop.
fn serve_connection(stream: TcpStream, shared: &Shared) -> WireResult<()> {
    let write_half = stream.try_clone().map_err(|e| WireError::Io {
        context: format!("cloning connection: {e}"),
    })?;
    let mut reader = FrameReader::new(BufReader::new(stream));
    let mut writer = BufWriter::new(write_half);

    // Handshake first: anything else on the wire is a protocol violation.
    match next_request(&mut reader) {
        Ok(Some(RequestFrame {
            id,
            req: Request::Hello { version, client: _ },
        })) => {
            if version != PROTOCOL_VERSION {
                send(
                    &mut writer,
                    ResponseFrame {
                        id,
                        resp: Response::VersionMismatch {
                            server: PROTOCOL_VERSION,
                        },
                    },
                )?;
                return Err(WireError::VersionMismatch {
                    ours: PROTOCOL_VERSION,
                    theirs: version,
                });
            }
            send(
                &mut writer,
                ResponseFrame {
                    id,
                    resp: Response::HelloOk {
                        version: PROTOCOL_VERSION,
                        sut: shared.sut_name.clone(),
                    },
                },
            )?;
        }
        Ok(Some(RequestFrame { id, .. })) => {
            let err = WireError::Protocol {
                frame: 0,
                reason: "first request must be Hello".to_string(),
            };
            report(&mut writer, id, &err);
            return Err(err);
        }
        Ok(None) => return Ok(()), // connected and left; fine
        Err(err) => {
            report(&mut writer, 0, &err);
            return Err(err);
        }
    }

    loop {
        let frame = match next_request(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()),
            Err(err) => {
                // Best-effort typed error to the peer, then clean close.
                report(&mut writer, 0, &err);
                return Err(err);
            }
        };
        let id = frame.id;
        if matches!(frame.req, Request::Shutdown) {
            send(
                &mut writer,
                ResponseFrame {
                    id,
                    resp: Response::Bye,
                },
            )?;
            return Ok(());
        }
        let resp = dispatch(frame.req, shared);
        send(&mut writer, ResponseFrame { id, resp })?;
    }
}

/// Reads and decodes the next request frame.
fn next_request<R: std::io::Read>(reader: &mut FrameReader<R>) -> WireResult<Option<RequestFrame>> {
    let frame = reader.frame_ordinal();
    match reader.read_frame()? {
        None => Ok(None),
        Some(payload) => {
            let offset = reader.byte_offset() - payload.len() as u64;
            decode_request(&payload, frame, offset).map(Some)
        }
    }
}

fn send<W: Write>(writer: &mut W, frame: ResponseFrame) -> WireResult<()> {
    write_frame(writer, &encode_response(&frame))?;
    writer.flush().map_err(|e| WireError::Io {
        context: format!("flushing response: {e}"),
    })
}

/// Best-effort error report; the connection is closing anyway.
fn report<W: Write>(writer: &mut W, id: u64, err: &WireError) {
    let _ = send(
        writer,
        ResponseFrame {
            id,
            resp: Response::Error {
                reason: err.to_string(),
            },
        },
    );
}

/// Serves one post-handshake request against the shared SUT.
fn dispatch(req: Request, shared: &Shared) -> Response {
    let mut state = match shared.state.lock() {
        Ok(guard) => guard,
        Err(_) => {
            return Response::Error {
                reason: "server SUT mutex poisoned".to_string(),
            }
        }
    };
    if let Request::Load { spec } = &req {
        // An explicit Load always (re)builds, so consecutive benchmark
        // runs against a long-lived server each start from a fresh SUT —
        // exactly like a local run. Reconnecting clients never re-send
        // Load (only Hello), so mid-run retry-with-reconnect still
        // resumes against the surviving state.
        let scenario = match parse_scenario(spec) {
            Ok(s) => s,
            Err(e) => {
                return Response::Error {
                    reason: format!("invalid scenario spec: {e}"),
                }
            }
        };
        let data = match scenario.dataset.build() {
            Ok(d) => d,
            Err(e) => {
                return Response::Error {
                    reason: format!("dataset build failed: {e}"),
                }
            }
        };
        return match shared.registry.build(&shared.sut_name, &data) {
            Ok(sut) => {
                let name = sut.name();
                *state = Some(sut);
                Response::LoadOk { sut: name }
            }
            Err(e) => Response::Error {
                reason: format!("SUT build failed: {e}"),
            },
        };
    }
    let Some(sut) = state.as_mut() else {
        return Response::Error {
            reason: "no SUT loaded (send Load first)".to_string(),
        };
    };
    match req {
        Request::Hello { .. } => Response::Error {
            reason: "duplicate Hello".to_string(),
        },
        Request::Load { .. } | Request::Shutdown => unreachable!("handled above"),
        Request::Train { budget } => Response::Work {
            work: sut.train(budget),
        },
        Request::Execute { op } => Response::Exec {
            result: super::proto::ExecReply::from_result(&sut.execute(&op)),
        },
        Request::ExecuteMany { ops } => Response::ExecMany {
            results: sut
                .execute_many(&ops)
                .iter()
                .map(super::proto::ExecReply::from_result)
                .collect(),
        },
        Request::PhaseChange { phase } => Response::Work {
            work: sut.on_phase_change(phase),
        },
        Request::Maintenance => Response::Work {
            work: sut.maintenance(),
        },
        Request::Crash => Response::Work { work: sut.crash() },
        Request::Metrics => Response::Metrics {
            metrics: sut.metrics(),
        },
    }
}
