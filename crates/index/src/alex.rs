//! An updatable, adaptive learned index in the spirit of ALEX \[33].
//!
//! ALEX ("An updatable adaptive learned index", Ding et al., SIGMOD 2020)
//! keeps data in *gapped arrays*: model-predicted placement leaves gaps so
//! most inserts land in an empty slot near their predicted position. When a
//! leaf grows too dense it **expands and retrains** its model; when it grows
//! too large it **splits**. These structural adaptations are exactly the
//! online-learning behaviour the benchmark's adaptability metrics (Fig. 1b/1c)
//! are designed to expose: a workload shift concentrates inserts in a few
//! leaves, triggering a burst of retraining that temporarily depresses
//! throughput.
//!
//! Simplifications relative to the paper (documented in DESIGN.md): the
//! internal level is a sorted array of leaf boundary keys with binary-search
//! routing (ALEX uses model-based routing internally), and cost-model-driven
//! split policies are replaced by density/size thresholds.

use crate::model::LinearModel;
use crate::{check_sorted, BulkLoad, Index, IndexStats, Result};

/// Target slot occupancy after a (re)build.
const TARGET_DENSITY: f64 = 0.7;
/// A leaf expands + retrains beyond this density.
const MAX_DENSITY: f64 = 0.85;
/// A leaf contracts below this density (if large enough).
const MIN_DENSITY: f64 = 0.25;
/// Preferred number of records per leaf at bulk load.
const TARGET_LEAF_SIZE: usize = 256;
/// A leaf splits beyond this record count.
const MAX_LEAF_SIZE: usize = 1024;
/// Minimum slot capacity of a leaf.
const MIN_CAP: usize = 16;

/// A model-indexed gapped array of `(key, value)` pairs.
#[derive(Debug, Clone)]
struct GappedLeaf {
    slots: Vec<Option<(u64, u64)>>,
    /// Maps key → slot index.
    model: LinearModel,
    count: usize,
}

impl GappedLeaf {
    /// Builds a leaf from sorted pairs with model-based placement.
    fn build(pairs: &[(u64, u64)]) -> (GappedLeaf, u64) {
        let n = pairs.len();
        let cap = ((n as f64 / TARGET_DENSITY).ceil() as usize).max(MIN_CAP);
        let keys: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let base = LinearModel::fit(&keys);
        // Rescale position space 0..n to slot space 0..cap.
        let scale = cap as f64 / n.max(1) as f64;
        let model = LinearModel {
            slope: base.slope * scale,
            intercept: base.intercept * scale,
        };
        let mut slots = vec![None; cap];
        let mut next_free = 0usize;
        for &(k, v) in pairs {
            let mut p = model.predict_clamped(k, slots.len());
            if p < next_free {
                p = next_free;
            }
            if p >= slots.len() {
                slots.push(None);
            }
            slots[p] = Some((k, v));
            next_free = p + 1;
        }
        let work = (n + cap / 8) as u64;
        (
            GappedLeaf {
                slots,
                model,
                count: n,
            },
            work,
        )
    }

    fn density(&self) -> f64 {
        if self.slots.is_empty() {
            0.0
        } else {
            self.count as f64 / self.slots.len() as f64
        }
    }

    /// All pairs in key order.
    fn pairs(&self) -> Vec<(u64, u64)> {
        self.slots.iter().flatten().copied().collect()
    }

    /// Finds `key`: `Ok(slot)` when present, `Err(slot)` = insertion slot
    /// such that every occupied slot before it holds a smaller key and every
    /// occupied slot from it onward holds a larger key.
    fn locate(&self, key: u64) -> std::result::Result<usize, usize> {
        let cap = self.slots.len();
        if cap == 0 || self.count == 0 {
            return Err(0);
        }
        let start = self.model.predict_clamped(key, cap);
        // Anchor on an occupied slot.
        let mut i = start;
        if self.slots[i].is_none() {
            let left = self.slots[..i].iter().rposition(|s| s.is_some());
            let right = self.slots[i + 1..]
                .iter()
                .position(|s| s.is_some())
                .map(|off| i + 1 + off);
            i = match (left, right) {
                (Some(l), Some(r)) => {
                    let kl = self.slots[l].expect("occupied").0;
                    let kr = self.slots[r].expect("occupied").0;
                    if key <= kl {
                        l
                    } else if key >= kr {
                        r
                    } else {
                        // key falls strictly between l and r: any gap between
                        // them is a valid insertion slot; `start` is one.
                        return Err(start.max(l + 1).min(r));
                    }
                }
                (Some(l), None) => l,
                (None, Some(r)) => r,
                (None, None) => return Err(start),
            };
        }
        let ki = self.slots[i].expect("anchored on occupied slot").0;
        use std::cmp::Ordering;
        match key.cmp(&ki) {
            Ordering::Equal => Ok(i),
            Ordering::Greater => {
                // Walk right over occupied slots.
                let mut last_lt = i; // last occupied slot with key < target
                for j in i + 1..cap {
                    if let Some((kj, _)) = self.slots[j] {
                        match key.cmp(&kj) {
                            Ordering::Equal => return Ok(j),
                            Ordering::Less => {
                                // Insert between last_lt and j: prefer a gap.
                                return Err(if j - last_lt > 1 { last_lt + 1 } else { j });
                            }
                            Ordering::Greater => last_lt = j,
                        }
                    }
                }
                Err((last_lt + 1).min(cap))
            }
            Ordering::Less => {
                // Walk left over occupied slots.
                let mut first_gt = i; // first occupied slot with key > target
                for j in (0..i).rev() {
                    if let Some((kj, _)) = self.slots[j] {
                        match key.cmp(&kj) {
                            Ordering::Equal => return Ok(j),
                            Ordering::Greater => {
                                return Err(if first_gt - j > 1 {
                                    first_gt - 1
                                } else {
                                    first_gt
                                });
                            }
                            Ordering::Less => first_gt = j,
                        }
                    }
                }
                Err(first_gt)
            }
        }
    }

    /// Inserts at `slot` (from a failed [`Self::locate`]), shifting toward the
    /// nearest gap when the slot is occupied. Returns false when the leaf has
    /// no gap left (caller must expand first).
    fn insert_at(&mut self, slot: usize, key: u64, value: u64) -> bool {
        let cap = self.slots.len();
        if slot >= cap {
            if self.count == cap {
                return false;
            }
            // Insertion past the end: shift left using the nearest gap.
            let gap = match self.slots.iter().rposition(|s| s.is_none()) {
                Some(g) => g,
                None => return false,
            };
            for j in gap..cap - 1 {
                self.slots[j] = self.slots[j + 1];
            }
            self.slots[cap - 1] = Some((key, value));
            self.count += 1;
            return true;
        }
        if self.slots[slot].is_none() {
            self.slots[slot] = Some((key, value));
            self.count += 1;
            return true;
        }
        // Find nearest gap on either side.
        let right_gap = self.slots[slot..].iter().position(|s| s.is_none());
        let left_gap = self.slots[..slot].iter().rposition(|s| s.is_none());
        match (left_gap, right_gap.map(|off| slot + off)) {
            (_, Some(g)) if right_gap == Some(0) => {
                // slot itself is the gap (can't happen: checked above), keep
                // for completeness.
                self.slots[g] = Some((key, value));
                self.count += 1;
                true
            }
            (Some(l), Some(r)) => {
                if slot - l <= r - slot {
                    self.shift_left_into(l, slot, key, value)
                } else {
                    self.shift_right_into(r, slot, key, value)
                }
            }
            (Some(l), None) => self.shift_left_into(l, slot, key, value),
            (None, Some(r)) => self.shift_right_into(r, slot, key, value),
            (None, None) => false,
        }
    }

    /// Shifts `slots[gap+1..slot]` one left and inserts at `slot - 1`.
    fn shift_left_into(&mut self, gap: usize, slot: usize, key: u64, value: u64) -> bool {
        debug_assert!(gap < slot);
        for j in gap..slot - 1 {
            self.slots[j] = self.slots[j + 1];
        }
        self.slots[slot - 1] = Some((key, value));
        self.count += 1;
        true
    }

    /// Shifts `slots[slot..gap]` one right and inserts at `slot`.
    fn shift_right_into(&mut self, gap: usize, slot: usize, key: u64, value: u64) -> bool {
        debug_assert!(slot < gap || self.slots[gap].is_none());
        for j in (slot..gap).rev() {
            self.slots[j + 1] = self.slots[j];
        }
        self.slots[slot] = Some((key, value));
        self.count += 1;
        true
    }

    #[cfg(test)]
    fn check_sorted_invariant(&self) {
        let keys: Vec<u64> = self.slots.iter().flatten().map(|&(k, _)| k).collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "gapped leaf keys out of order: {keys:?}");
        }
        assert_eq!(keys.len(), self.count);
    }
}

/// Adaptive learned index: gapped-array leaves with retraining and splits.
#[derive(Debug, Clone)]
pub struct AlexIndex {
    /// `boundaries[i]` is the smallest key routed to `leaves[i]`
    /// (`boundaries[0]` is a sentinel `0`).
    boundaries: Vec<u64>,
    leaves: Vec<GappedLeaf>,
    len: usize,
    work: u64,
    /// Structural adaptations performed (expansions, contractions, splits).
    adapt_events: u64,
}

impl AlexIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        let (leaf, work) = GappedLeaf::build(&[]);
        AlexIndex {
            boundaries: vec![0],
            leaves: vec![leaf],
            len: 0,
            work,
            adapt_events: 0,
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Structural adaptations (expansions/contractions/splits) so far.
    ///
    /// The adaptability benches read this to correlate throughput dips with
    /// retraining bursts.
    pub fn adapt_events(&self) -> u64 {
        self.adapt_events
    }

    fn leaf_for(&self, key: u64) -> usize {
        self.boundaries
            .partition_point(|&b| b <= key)
            .saturating_sub(1)
    }

    /// Expands and retrains leaf `i`.
    fn retrain_leaf(&mut self, i: usize) {
        let pairs = self.leaves[i].pairs();
        let (leaf, work) = GappedLeaf::build(&pairs);
        self.leaves[i] = leaf;
        self.work += work;
        self.adapt_events += 1;
    }

    /// Splits leaf `i` into two halves.
    fn split_leaf(&mut self, i: usize) {
        let pairs = self.leaves[i].pairs();
        let mid = pairs.len() / 2;
        let (left_pairs, right_pairs) = pairs.split_at(mid);
        let (left, w1) = GappedLeaf::build(left_pairs);
        let (right, w2) = GappedLeaf::build(right_pairs);
        let right_boundary = right_pairs[0].0;
        self.leaves[i] = left;
        self.leaves.insert(i + 1, right);
        self.boundaries.insert(i + 1, right_boundary);
        self.work += w1 + w2;
        self.adapt_events += 1;
    }
}

impl Default for AlexIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl BulkLoad for AlexIndex {
    fn bulk_load(pairs: &[(u64, u64)]) -> Result<Self> {
        check_sorted(pairs)?;
        if pairs.is_empty() {
            return Ok(AlexIndex::new());
        }
        let mut leaves = Vec::new();
        let mut boundaries = Vec::new();
        let mut work = 0u64;
        let mut i = 0;
        while i < pairs.len() {
            let end = (i + TARGET_LEAF_SIZE).min(pairs.len());
            let (leaf, w) = GappedLeaf::build(&pairs[i..end]);
            work += w;
            boundaries.push(if i == 0 { 0 } else { pairs[i].0 });
            leaves.push(leaf);
            i = end;
        }
        Ok(AlexIndex {
            boundaries,
            leaves,
            len: pairs.len(),
            work,
            adapt_events: 0,
        })
    }
}

impl Index for AlexIndex {
    fn name(&self) -> &'static str {
        "alex"
    }

    fn get(&self, key: u64) -> Option<u64> {
        let leaf = &self.leaves[self.leaf_for(key)];
        match leaf.locate(key) {
            Ok(slot) => leaf.slots[slot].map(|(_, v)| v),
            Err(_) => None,
        }
    }

    fn range(&self, start: u64, limit: usize) -> Result<Vec<(u64, u64)>> {
        let mut out = Vec::with_capacity(limit.min(1024));
        let mut li = self.leaf_for(start);
        while li < self.leaves.len() && out.len() < limit {
            for pair in self.leaves[li].slots.iter().flatten() {
                if pair.0 >= start {
                    out.push(*pair);
                    if out.len() >= limit {
                        break;
                    }
                }
            }
            li += 1;
        }
        Ok(out)
    }

    fn insert(&mut self, key: u64, value: u64) -> Result<Option<u64>> {
        let li = self.leaf_for(key);
        match self.leaves[li].locate(key) {
            Ok(slot) => {
                let old = self.leaves[li].slots[slot].map(|(_, v)| v);
                self.leaves[li].slots[slot] = Some((key, value));
                Ok(old)
            }
            Err(slot) => {
                if !self.leaves[li].insert_at(slot, key, value) {
                    // Leaf completely full: expand + retrain, then retry.
                    self.retrain_leaf(li);
                    let slot = match self.leaves[li].locate(key) {
                        Err(s) => s,
                        Ok(_) => unreachable!("key appeared during retrain"),
                    };
                    let ok = self.leaves[li].insert_at(slot, key, value);
                    debug_assert!(ok, "insert must succeed after expansion");
                }
                self.len += 1;
                self.work += 1;
                // Structural adaptation checks.
                if self.leaves[li].count > MAX_LEAF_SIZE {
                    self.split_leaf(li);
                } else if self.leaves[li].density() > MAX_DENSITY {
                    self.retrain_leaf(li);
                }
                Ok(None)
            }
        }
    }

    fn delete(&mut self, key: u64) -> Result<Option<u64>> {
        let li = self.leaf_for(key);
        match self.leaves[li].locate(key) {
            Ok(slot) => {
                let old = self.leaves[li].slots[slot].take().map(|(_, v)| v);
                self.leaves[li].count -= 1;
                self.len -= 1;
                if self.leaves[li].density() < MIN_DENSITY
                    && self.leaves[li].slots.len() > MIN_CAP * 2
                {
                    self.retrain_leaf(li);
                }
                Ok(old)
            }
            Err(_) => Ok(None),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> IndexStats {
        let slots: usize = self.leaves.iter().map(|l| l.slots.len()).sum();
        IndexStats {
            size_bytes: slots * 24 + self.boundaries.len() * 8 + self.leaves.len() * 48,
            build_work: self.work,
            model_count: self.leaves.len(),
        }
    }

    fn probe_cost(&self, key: u64) -> u64 {
        // Leaf routing + model evaluation + distance between the predicted
        // slot and the slot the scan actually lands on.
        let routing = (self.boundaries.len() as u64 + 2).ilog2() as u64 + 1;
        let leaf = &self.leaves[self.leaf_for(key)];
        if leaf.slots.is_empty() {
            return routing + 1;
        }
        let predicted = leaf.model.predict_clamped(key, leaf.slots.len());
        let actual = match leaf.locate(key) {
            Ok(slot) | Err(slot) => slot.min(leaf.slots.len() - 1),
        };
        routing + 1 + predicted.abs_diff(actual) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{check_point_lookups, check_ranges, test_pairs};

    #[test]
    fn bulk_load_conformance() {
        for n in [0, 1, 100, 1000, 5000] {
            let pairs = test_pairs(n);
            let idx = AlexIndex::bulk_load(&pairs).unwrap();
            assert_eq!(idx.len(), pairs.len(), "n = {n}");
            check_point_lookups(&idx, &pairs);
            check_ranges(&idx, &pairs);
            for leaf in &idx.leaves {
                leaf.check_sorted_invariant();
            }
        }
    }

    #[test]
    fn incremental_inserts() {
        let pairs = test_pairs(3000);
        let mut idx = AlexIndex::new();
        let mut scrambled = pairs.clone();
        scrambled.reverse();
        for &(k, v) in &scrambled {
            idx.insert(k, v).unwrap();
        }
        assert_eq!(idx.len(), pairs.len());
        for leaf in &idx.leaves {
            leaf.check_sorted_invariant();
        }
        check_point_lookups(&idx, &pairs);
        check_ranges(&idx, &pairs);
    }

    #[test]
    fn skewed_inserts_trigger_adaptation() {
        // Bulk-load uniform, then hammer one region: splits/retrains follow.
        let pairs: Vec<(u64, u64)> = (0..4000u64).map(|i| (i * 1000, i)).collect();
        let mut idx = AlexIndex::bulk_load(&pairs).unwrap();
        let before = idx.adapt_events();
        // Odd keys never collide with the loaded multiples of 1000.
        for i in 0..3000u64 {
            idx.insert(500_001 + 2 * i, i).unwrap();
        }
        assert!(
            idx.adapt_events() > before,
            "no adaptation under skewed inserts"
        );
        assert_eq!(idx.len(), 7000);
        for leaf in &idx.leaves {
            leaf.check_sorted_invariant();
        }
        // Spot-check lookups across both regions.
        assert_eq!(idx.get(0), Some(0));
        assert_eq!(idx.get(500_001 + 2 * 100), Some(100));
        assert_eq!(idx.get(3_999_000), Some(3999));
    }

    #[test]
    fn overwrite_returns_old() {
        let mut idx = AlexIndex::new();
        assert_eq!(idx.insert(5, 50).unwrap(), None);
        assert_eq!(idx.insert(5, 51).unwrap(), Some(50));
        assert_eq!(idx.get(5), Some(51));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn delete_and_contract() {
        let pairs = test_pairs(2000);
        let mut idx = AlexIndex::bulk_load(&pairs).unwrap();
        for &(k, _) in &pairs {
            assert!(idx.delete(k).unwrap().is_some(), "missing {k}");
        }
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.delete(12345).unwrap(), None);
        // Still usable after total deletion.
        idx.insert(1, 10).unwrap();
        assert_eq!(idx.get(1), Some(10));
    }

    #[test]
    fn mixed_random_against_model() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut idx = AlexIndex::new();
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..8000 {
            let key = rng.gen_range(0u64..2000);
            match rng.gen_range(0..4u8) {
                0..=1 => {
                    let v = rng.gen::<u64>();
                    assert_eq!(idx.insert(key, v).unwrap(), model.insert(key, v));
                }
                2 => {
                    assert_eq!(idx.delete(key).unwrap(), model.remove(&key));
                }
                _ => {
                    assert_eq!(idx.get(key), model.get(&key).copied());
                }
            }
        }
        assert_eq!(idx.len(), model.len());
        for leaf in &idx.leaves {
            leaf.check_sorted_invariant();
        }
        // Final range comparison.
        let expected: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(idx.range(0, usize::MAX >> 1).unwrap(), expected);
    }

    #[test]
    fn sequential_append_pattern() {
        let mut idx = AlexIndex::new();
        for i in 0..5000u64 {
            idx.insert(i, i * 2).unwrap();
        }
        assert_eq!(idx.len(), 5000);
        assert_eq!(idx.get(4999), Some(9998));
        let scan = idx.range(4990, 20).unwrap();
        assert_eq!(scan.len(), 10);
    }

    #[test]
    fn stats_track_models_and_work() {
        let idx = AlexIndex::bulk_load(&test_pairs(3000)).unwrap();
        let s = idx.stats();
        assert_eq!(s.model_count, idx.leaf_count());
        assert!(s.build_work >= 3000);
        assert!(s.size_bytes > 0);
    }
}
