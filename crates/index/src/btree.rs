//! A from-scratch B+-tree with linked leaves.
//!
//! This is the *traditional* baseline of the benchmark: the structure the
//! learned-index papers (\[8], \[33]–\[35]) compare against. It supports bulk
//! loading, point lookups, range scans over a linked leaf chain, inserts
//! with node splits, and deletes with borrow/merge rebalancing.
//!
//! Nodes live in an arena (`Vec<Node>`) with an internal free list, so the
//! implementation is entirely safe Rust with index-based links.

use crate::{check_sorted, BulkLoad, Index, IndexStats, Result};

/// Default maximum keys per node.
const DEFAULT_FANOUT: usize = 64;

/// Fill factor used during bulk load (leaves are left with head-room).
const BULK_FILL: f64 = 0.9;

#[derive(Debug, Clone)]
enum Node {
    Internal {
        /// Separator keys; `children[i]` holds keys `< keys[i]`,
        /// `children[keys.len()]` holds the rest. Separators equal the first
        /// key of the right subtree, so routing uses `partition_point(k <= key)`.
        keys: Vec<u64>,
        children: Vec<usize>,
    },
    Leaf {
        keys: Vec<u64>,
        values: Vec<u64>,
        /// Next leaf in key order, for range scans.
        next: Option<usize>,
    },
    /// Arena slot on the free list.
    Free,
}

/// Splits `m` items into balanced chunks of roughly `pref` items, with every
/// chunk at least `min_size` items when `m >= 2 * min_size` (otherwise one
/// chunk holds everything).
fn chunk_sizes(m: usize, pref: usize, min_size: usize) -> Vec<usize> {
    if m == 0 {
        return Vec::new();
    }
    let by_pref = m.div_ceil(pref);
    let by_min = (m / min_size).max(1);
    let k = by_pref.min(by_min).max(1);
    let base = m / k;
    let rem = m % k;
    (0..k).map(|i| base + usize::from(i < rem)).collect()
}

/// B+-tree index over `u64` keys and values.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    free: Vec<usize>,
    root: usize,
    len: usize,
    /// Maximum keys per node; splits occur beyond this.
    cap: usize,
    /// Work units spent on structural modifications (node writes).
    work: u64,
}

impl BPlusTree {
    /// Creates an empty tree with the default fanout.
    pub fn new() -> Self {
        Self::with_fanout(DEFAULT_FANOUT)
    }

    /// Creates an empty tree with `fanout` max keys per node (min 4).
    pub fn with_fanout(fanout: usize) -> Self {
        let cap = fanout.max(4);
        let nodes = vec![Node::Leaf {
            keys: Vec::new(),
            values: Vec::new(),
            next: None,
        }];
        BPlusTree {
            nodes,
            free: Vec::new(),
            root: 0,
            len: 0,
            cap,
            work: 1,
        }
    }

    fn min_keys(&self) -> usize {
        self.cap / 2
    }

    fn alloc(&mut self, node: Node) -> usize {
        self.work += 1;
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn release(&mut self, idx: usize) {
        self.nodes[idx] = Node::Free;
        self.free.push(idx);
    }

    /// Descends to the leaf that should contain `key`.
    fn find_leaf(&self, key: u64) -> usize {
        let mut cur = self.root;
        loop {
            match &self.nodes[cur] {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= key);
                    cur = children[idx];
                    // Start pulling the child node header while the loop
                    // bookkeeping retires; the next iteration's match needs
                    // it immediately.
                    // SAFETY: `cur` is a live child index, so it is within
                    // the arena (`cur < self.nodes.len()`).
                    crate::prefetch_read(unsafe { self.nodes.as_ptr().add(cur) });
                }
                Node::Leaf { .. } => return cur,
                Node::Free => unreachable!("descended into freed node"),
            }
        }
    }

    /// Recursive insert; returns `(promoted_separator, new_right_node)` when
    /// the child split, plus the previous value on overwrite.
    fn insert_rec(
        &mut self,
        node: usize,
        key: u64,
        value: u64,
    ) -> (Option<(u64, usize)>, Option<u64>) {
        match &mut self.nodes[node] {
            Node::Leaf { keys, values, .. } => {
                match keys.binary_search(&key) {
                    Ok(pos) => {
                        let old = std::mem::replace(&mut values[pos], value);
                        return (None, Some(old));
                    }
                    Err(pos) => {
                        keys.insert(pos, key);
                        values.insert(pos, value);
                        self.len += 1;
                    }
                }
                if self.node_len(node) > self.cap {
                    (Some(self.split_leaf(node)), None)
                } else {
                    (None, None)
                }
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|&k| k <= key);
                let child = children[idx];
                let (split, old) = self.insert_rec(child, key, value);
                if let Some((sep, right)) = split {
                    if let Node::Internal { keys, children } = &mut self.nodes[node] {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                    }
                    if self.node_len(node) > self.cap {
                        return (Some(self.split_internal(node)), old);
                    }
                }
                (None, old)
            }
            Node::Free => unreachable!("insert into freed node"),
        }
    }

    fn node_len(&self, node: usize) -> usize {
        match &self.nodes[node] {
            Node::Internal { keys, .. } | Node::Leaf { keys, .. } => keys.len(),
            Node::Free => 0,
        }
    }

    fn split_leaf(&mut self, node: usize) -> (u64, usize) {
        let (right_keys, right_values, old_next) = match &mut self.nodes[node] {
            Node::Leaf { keys, values, next } => {
                let mid = keys.len() / 2;
                (keys.split_off(mid), values.split_off(mid), *next)
            }
            _ => unreachable!("split_leaf on non-leaf"),
        };
        let sep = right_keys[0];
        let right = self.alloc(Node::Leaf {
            keys: right_keys,
            values: right_values,
            next: old_next,
        });
        if let Node::Leaf { next, .. } = &mut self.nodes[node] {
            *next = Some(right);
        }
        (sep, right)
    }

    fn split_internal(&mut self, node: usize) -> (u64, usize) {
        let (sep, right_keys, right_children) = match &mut self.nodes[node] {
            Node::Internal { keys, children } => {
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid + 1);
                let sep = keys.pop().expect("mid < len");
                let right_children = children.split_off(mid + 1);
                (sep, right_keys, right_children)
            }
            _ => unreachable!("split_internal on non-internal"),
        };
        let right = self.alloc(Node::Internal {
            keys: right_keys,
            children: right_children,
        });
        (sep, right)
    }

    /// Recursive delete; after the call the caller rebalances `node`'s child.
    fn delete_rec(&mut self, node: usize, key: u64) -> Option<u64> {
        match &mut self.nodes[node] {
            Node::Leaf { keys, values, .. } => match keys.binary_search(&key) {
                Ok(pos) => {
                    keys.remove(pos);
                    let v = values.remove(pos);
                    self.len -= 1;
                    Some(v)
                }
                Err(_) => None,
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|&k| k <= key);
                let child = children[idx];
                let removed = self.delete_rec(child, key);
                if removed.is_some() {
                    self.rebalance_child(node, idx);
                }
                removed
            }
            Node::Free => unreachable!("delete from freed node"),
        }
    }

    /// Fixes an underflowing child of `parent` at child position `idx` by
    /// borrowing from a sibling or merging.
    fn rebalance_child(&mut self, parent: usize, idx: usize) {
        let child = match &self.nodes[parent] {
            Node::Internal { children, .. } => children[idx],
            _ => unreachable!("rebalance_child on non-internal parent"),
        };
        if self.node_len(child) >= self.min_keys() {
            return;
        }
        let sibling_count = match &self.nodes[parent] {
            Node::Internal { children, .. } => children.len(),
            _ => unreachable!(),
        };
        // Prefer borrowing from the right sibling, then the left; merge
        // whichever direction is available otherwise.
        if idx + 1 < sibling_count {
            let right = self.child_at(parent, idx + 1);
            if self.node_len(right) > self.min_keys() {
                self.borrow_from_right(parent, idx);
                return;
            }
        }
        if idx > 0 {
            let left = self.child_at(parent, idx - 1);
            if self.node_len(left) > self.min_keys() {
                self.borrow_from_left(parent, idx);
                return;
            }
        }
        if idx + 1 < sibling_count {
            self.merge_children(parent, idx);
        } else if idx > 0 {
            self.merge_children(parent, idx - 1);
        }
    }

    fn child_at(&self, parent: usize, idx: usize) -> usize {
        match &self.nodes[parent] {
            Node::Internal { children, .. } => children[idx],
            _ => unreachable!("child_at on non-internal"),
        }
    }

    fn parent_key(&self, parent: usize, key_idx: usize) -> u64 {
        match &self.nodes[parent] {
            Node::Internal { keys, .. } => keys[key_idx],
            _ => unreachable!(),
        }
    }

    fn set_parent_key(&mut self, parent: usize, key_idx: usize, key: u64) {
        if let Node::Internal { keys, .. } = &mut self.nodes[parent] {
            keys[key_idx] = key;
        }
    }

    fn borrow_from_right(&mut self, parent: usize, idx: usize) {
        self.work += 1;
        let left = self.child_at(parent, idx);
        let right = self.child_at(parent, idx + 1);
        match (left, right) {
            _ if matches!(self.nodes[left], Node::Leaf { .. }) => {
                // Move the right leaf's first entry to the left leaf.
                let (k, v) = match &mut self.nodes[right] {
                    Node::Leaf { keys, values, .. } => (keys.remove(0), values.remove(0)),
                    _ => unreachable!(),
                };
                if let Node::Leaf { keys, values, .. } = &mut self.nodes[left] {
                    keys.push(k);
                    values.push(v);
                }
                let new_sep = match &self.nodes[right] {
                    Node::Leaf { keys, .. } => keys[0],
                    _ => unreachable!(),
                };
                self.set_parent_key(parent, idx, new_sep);
            }
            _ => {
                // Internal: rotate through the parent separator.
                let sep = self.parent_key(parent, idx);
                let (k, c) = match &mut self.nodes[right] {
                    Node::Internal { keys, children } => (keys.remove(0), children.remove(0)),
                    _ => unreachable!(),
                };
                if let Node::Internal { keys, children } = &mut self.nodes[left] {
                    keys.push(sep);
                    children.push(c);
                }
                self.set_parent_key(parent, idx, k);
            }
        }
    }

    fn borrow_from_left(&mut self, parent: usize, idx: usize) {
        self.work += 1;
        let left = self.child_at(parent, idx - 1);
        let right = self.child_at(parent, idx);
        match left {
            _ if matches!(self.nodes[left], Node::Leaf { .. }) => {
                let (k, v) = match &mut self.nodes[left] {
                    Node::Leaf { keys, values, .. } => (
                        keys.pop().expect("donor non-empty"),
                        values.pop().expect("donor non-empty"),
                    ),
                    _ => unreachable!(),
                };
                if let Node::Leaf { keys, values, .. } = &mut self.nodes[right] {
                    keys.insert(0, k);
                    values.insert(0, v);
                }
                self.set_parent_key(parent, idx - 1, k);
            }
            _ => {
                let sep = self.parent_key(parent, idx - 1);
                let (k, c) = match &mut self.nodes[left] {
                    Node::Internal { keys, children } => (
                        keys.pop().expect("donor non-empty"),
                        children.pop().expect("donor non-empty"),
                    ),
                    _ => unreachable!(),
                };
                if let Node::Internal { keys, children } = &mut self.nodes[right] {
                    keys.insert(0, sep);
                    children.insert(0, c);
                }
                self.set_parent_key(parent, idx - 1, k);
            }
        }
    }

    /// Merges child `idx + 1` into child `idx` of `parent`.
    fn merge_children(&mut self, parent: usize, idx: usize) {
        self.work += 1;
        let left = self.child_at(parent, idx);
        let right = self.child_at(parent, idx + 1);
        let sep = self.parent_key(parent, idx);
        // Take the right node's contents.
        let right_node = std::mem::replace(&mut self.nodes[right], Node::Free);
        match right_node {
            Node::Leaf {
                mut keys,
                mut values,
                next,
            } => {
                if let Node::Leaf {
                    keys: lk,
                    values: lv,
                    next: ln,
                } = &mut self.nodes[left]
                {
                    lk.append(&mut keys);
                    lv.append(&mut values);
                    *ln = next;
                }
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                if let Node::Internal {
                    keys: lk,
                    children: lc,
                } = &mut self.nodes[left]
                {
                    lk.push(sep);
                    lk.append(&mut keys);
                    lc.append(&mut children);
                }
            }
            Node::Free => unreachable!("merging freed node"),
        }
        self.free.push(right);
        if let Node::Internal { keys, children } = &mut self.nodes[parent] {
            keys.remove(idx);
            children.remove(idx + 1);
        }
    }

    /// Tree height (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut cur = self.root;
        while let Node::Internal { children, .. } = &self.nodes[cur] {
            cur = children[0];
            h += 1;
        }
        h
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        let mut leaf_keys = Vec::new();
        self.check_node(self.root, None, None, &mut leaf_keys, true);
        for w in leaf_keys.windows(2) {
            assert!(w[0] < w[1], "leaf keys not strictly ascending");
        }
        assert_eq!(leaf_keys.len(), self.len, "len mismatch");
        // Leaf chain visits exactly the same keys in order.
        let mut cur = self.root;
        while let Node::Internal { children, .. } = &self.nodes[cur] {
            cur = children[0];
        }
        let mut chain_keys = Vec::new();
        let mut leaf = Some(cur);
        while let Some(l) = leaf {
            match &self.nodes[l] {
                Node::Leaf { keys, next, .. } => {
                    chain_keys.extend_from_slice(keys);
                    leaf = *next;
                }
                _ => panic!("leaf chain hit non-leaf"),
            }
        }
        assert_eq!(chain_keys, leaf_keys, "leaf chain disagrees with tree");
    }

    #[cfg(test)]
    fn check_node(
        &self,
        node: usize,
        lo: Option<u64>,
        hi: Option<u64>,
        leaf_keys: &mut Vec<u64>,
        is_root: bool,
    ) {
        match &self.nodes[node] {
            Node::Leaf { keys, .. } => {
                if !is_root {
                    assert!(
                        keys.len() >= self.min_keys(),
                        "leaf underflow: {} < {}",
                        keys.len(),
                        self.min_keys()
                    );
                }
                assert!(keys.len() <= self.cap + 1, "leaf overflow");
                for &k in keys {
                    if let Some(lo) = lo {
                        assert!(k >= lo, "key {k} below bound {lo}");
                    }
                    if let Some(hi) = hi {
                        assert!(k < hi, "key {k} above bound {hi}");
                    }
                }
                leaf_keys.extend_from_slice(keys);
            }
            Node::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1);
                if !is_root {
                    assert!(keys.len() >= self.min_keys(), "internal underflow");
                }
                for (i, &child) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                    self.check_node(child, clo, chi, leaf_keys, false);
                }
            }
            Node::Free => panic!("reachable free node"),
        }
    }
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BulkLoad for BPlusTree {
    fn bulk_load(pairs: &[(u64, u64)]) -> Result<Self> {
        check_sorted(pairs)?;
        let mut tree = BPlusTree::new();
        if pairs.is_empty() {
            return Ok(tree);
        }
        tree.nodes.clear();
        tree.free.clear();
        let per_leaf = ((tree.cap as f64 * BULK_FILL) as usize).max(tree.min_keys().max(1));
        // Build leaves left to right using balanced chunk sizes so no leaf
        // ever underflows (chunk_sizes guarantees every chunk is >= min_keys
        // unless the whole input fits in one node).
        let mut level: Vec<(u64, usize)> = Vec::new(); // (first key, node)
        let mut i = 0;
        for size in chunk_sizes(pairs.len(), per_leaf, tree.min_keys().max(1)) {
            let end = i + size;
            let node = tree.alloc(Node::Leaf {
                keys: pairs[i..end].iter().map(|p| p.0).collect(),
                values: pairs[i..end].iter().map(|p| p.1).collect(),
                next: None,
            });
            level.push((pairs[i].0, node));
            i = end;
        }
        // Wire the leaf chain.
        for w in 0..level.len().saturating_sub(1) {
            let next = level[w + 1].1;
            if let Node::Leaf { next: n, .. } = &mut tree.nodes[level[w].1] {
                *n = Some(next);
            }
        }
        // Build internal levels until a single root remains. Internal nodes
        // need between min_keys + 1 and cap + 1 children.
        let per_node = per_leaf.max(2);
        while level.len() > 1 {
            let mut upper = Vec::new();
            let mut j = 0;
            for size in chunk_sizes(level.len(), per_node + 1, tree.min_keys() + 1) {
                let group = &level[j..j + size];
                let keys: Vec<u64> = group[1..].iter().map(|&(k, _)| k).collect();
                let children: Vec<usize> = group.iter().map(|&(_, n)| n).collect();
                let node = tree.alloc(Node::Internal { keys, children });
                upper.push((group[0].0, node));
                j += size;
            }
            level = upper;
        }
        tree.root = level[0].1;
        tree.len = pairs.len();
        Ok(tree)
    }
}

impl Index for BPlusTree {
    fn name(&self) -> &'static str {
        "btree"
    }

    fn get(&self, key: u64) -> Option<u64> {
        let leaf = self.find_leaf(key);
        match &self.nodes[leaf] {
            Node::Leaf { keys, values, .. } => keys.binary_search(&key).ok().map(|idx| values[idx]),
            _ => unreachable!("find_leaf returned non-leaf"),
        }
    }

    fn range(&self, start: u64, limit: usize) -> Result<Vec<(u64, u64)>> {
        let mut out = Vec::with_capacity(limit.min(1024));
        let mut leaf = Some(self.find_leaf(start));
        while let Some(l) = leaf {
            match &self.nodes[l] {
                Node::Leaf { keys, values, next } => {
                    let from = keys.partition_point(|&k| k < start);
                    for i in from..keys.len() {
                        if out.len() >= limit {
                            return Ok(out);
                        }
                        out.push((keys[i], values[i]));
                    }
                    leaf = *next;
                }
                _ => unreachable!("leaf chain hit non-leaf"),
            }
        }
        Ok(out)
    }

    fn insert(&mut self, key: u64, value: u64) -> Result<Option<u64>> {
        let root = self.root;
        let (split, old) = self.insert_rec(root, key, value);
        if let Some((sep, right)) = split {
            let new_root = self.alloc(Node::Internal {
                keys: vec![sep],
                children: vec![root, right],
            });
            self.root = new_root;
        }
        Ok(old)
    }

    fn delete(&mut self, key: u64) -> Result<Option<u64>> {
        let root = self.root;
        let removed = self.delete_rec(root, key);
        // Collapse a root with a single child.
        if let Node::Internal { children, .. } = &self.nodes[self.root] {
            if children.len() == 1 {
                let only = children[0];
                let old_root = self.root;
                self.root = only;
                self.release(old_root);
            }
        }
        Ok(removed)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> IndexStats {
        let mut bytes = 0usize;
        for n in &self.nodes {
            bytes += match n {
                Node::Internal { keys, children } => keys.len() * 8 + children.len() * 8 + 48,
                Node::Leaf { keys, values, .. } => keys.len() * 8 + values.len() * 8 + 56,
                Node::Free => 8,
            };
        }
        IndexStats {
            size_bytes: bytes,
            build_work: self.work,
            model_count: 0,
        }
    }

    fn probe_cost(&self, _key: u64) -> u64 {
        // One node binary search per level.
        self.height() as u64 * crate::bsearch_cost(self.cap as u64)
    }

    /// Level-synchronous group descent: all probes in a group walk the
    /// tree one level per round, prefetching each probe's next node before
    /// any of them is searched. A lone [`Index::get`] must serialize its
    /// cache misses (each node address depends on the previous search);
    /// across a group the probes are independent, so the misses of a whole
    /// round overlap (memory-level parallelism).
    fn get_many(&self, keys: &[u64], out: &mut Vec<Option<u64>>) {
        /// Probes descended per round. Big enough to cover the memory
        /// parallelism a core can sustain, small enough to stay in
        /// registers/L1.
        const GROUP: usize = 16;
        out.reserve(keys.len());
        let mut cur = [0usize; GROUP];
        for chunk in keys.chunks(GROUP) {
            let g = chunk.len();
            cur[..g].fill(self.root);
            // Descend all probes in lockstep until every one is at a leaf.
            // Heights are uniform in a B+-tree, so the group stays in step.
            let mut done = false;
            while !done {
                // Pass 1: the separator arrays live in their own heap
                // allocations — start their loads before any search needs
                // them.
                for &c in &cur[..g] {
                    match &self.nodes[c] {
                        Node::Internal { keys, .. } | Node::Leaf { keys, .. } => {
                            crate::prefetch_read(keys.as_ptr());
                        }
                        Node::Free => unreachable!("descended into freed node"),
                    }
                }
                // Pass 2: route each probe one level down.
                done = true;
                for (c, &key) in cur[..g].iter_mut().zip(chunk) {
                    if let Node::Internal { keys, children } = &self.nodes[*c] {
                        let idx = keys.partition_point(|&k| k <= key);
                        *c = children[idx];
                        // SAFETY: `*c` is a live child index within the arena.
                        crate::prefetch_read(unsafe { self.nodes.as_ptr().add(*c) });
                        done = false;
                    }
                }
            }
            for (&c, &key) in cur[..g].iter().zip(chunk) {
                match &self.nodes[c] {
                    Node::Leaf { keys, values, .. } => {
                        out.push(keys.binary_search(&key).ok().map(|idx| values[idx]));
                    }
                    _ => unreachable!("group descent ended off-leaf"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{check_point_lookups, check_ranges, test_pairs};

    #[test]
    fn bulk_load_conformance() {
        for n in [0, 1, 5, 63, 64, 65, 1000, 5000] {
            let pairs = test_pairs(n);
            let idx = BPlusTree::bulk_load(&pairs).unwrap();
            assert_eq!(idx.len(), pairs.len(), "n = {n}");
            idx.check_invariants();
            check_point_lookups(&idx, &pairs);
            check_ranges(&idx, &pairs);
        }
    }

    #[test]
    fn incremental_insert_conformance() {
        let pairs = test_pairs(2000);
        let mut idx = BPlusTree::with_fanout(8);
        // Insert in a scrambled order.
        let mut scrambled = pairs.clone();
        scrambled.reverse();
        for &(k, v) in &scrambled {
            idx.insert(k, v).unwrap();
        }
        idx.check_invariants();
        check_point_lookups(&idx, &pairs);
        check_ranges(&idx, &pairs);
        assert!(idx.height() > 1);
    }

    #[test]
    fn overwrite_returns_old() {
        let mut idx = BPlusTree::new();
        assert_eq!(idx.insert(1, 10).unwrap(), None);
        assert_eq!(idx.insert(1, 11).unwrap(), Some(10));
        assert_eq!(idx.get(1), Some(11));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn delete_with_rebalancing() {
        let pairs = test_pairs(3000);
        let mut idx = BPlusTree::with_fanout(6);
        for &(k, v) in &pairs {
            idx.insert(k, v).unwrap();
        }
        // Delete every other key.
        for (i, &(k, _)) in pairs.iter().enumerate() {
            if i % 2 == 0 {
                assert!(idx.delete(k).unwrap().is_some(), "missing {k}");
                if i % 64 == 0 {
                    idx.check_invariants();
                }
            }
        }
        idx.check_invariants();
        let remaining: Vec<(u64, u64)> = pairs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 1)
            .map(|(_, &p)| p)
            .collect();
        assert_eq!(idx.len(), remaining.len());
        check_point_lookups(&idx, &remaining);
        check_ranges(&idx, &remaining);
    }

    #[test]
    fn delete_everything_collapses() {
        let pairs = test_pairs(500);
        let mut idx = BPlusTree::with_fanout(4);
        for &(k, v) in &pairs {
            idx.insert(k, v).unwrap();
        }
        for &(k, _) in &pairs {
            assert!(idx.delete(k).unwrap().is_some());
        }
        idx.check_invariants();
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.height(), 1);
        assert_eq!(idx.get(pairs[0].0), None);
        // Tree remains usable.
        idx.insert(7, 70).unwrap();
        assert_eq!(idx.get(7), Some(70));
    }

    #[test]
    fn delete_missing_key() {
        let mut idx = BPlusTree::bulk_load(&[(1, 10), (5, 50)]).unwrap();
        assert_eq!(idx.delete(3).unwrap(), None);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn range_spans_leaves() {
        let pairs: Vec<(u64, u64)> = (0..1000u64).map(|k| (k * 2, k)).collect();
        let idx = BPlusTree::with_fanout(8);
        let mut idx = idx;
        for &(k, v) in &pairs {
            idx.insert(k, v).unwrap();
        }
        let got = idx.range(100, 300).unwrap();
        assert_eq!(got.len(), 300);
        assert_eq!(got[0].0, 100);
        assert_eq!(got[299].0, 100 + 299 * 2);
    }

    #[test]
    fn bulk_load_rejects_unsorted() {
        assert!(BPlusTree::bulk_load(&[(2, 0), (1, 0)]).is_err());
    }

    #[test]
    fn mixed_workload_random() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut idx = BPlusTree::with_fanout(5);
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..5000 {
            let key = rng.gen_range(0u64..500);
            match rng.gen_range(0..3u8) {
                0 | 1 => {
                    let v = rng.gen::<u64>();
                    assert_eq!(
                        idx.insert(key, v).unwrap(),
                        model.insert(key, v),
                        "insert {key}"
                    );
                }
                _ => {
                    assert_eq!(idx.delete(key).unwrap(), model.remove(&key), "delete {key}");
                }
            }
        }
        idx.check_invariants();
        assert_eq!(idx.len(), model.len());
        for (&k, &v) in &model {
            assert_eq!(idx.get(k), Some(v));
        }
    }

    #[test]
    fn stats_grow_with_size() {
        let small = BPlusTree::bulk_load(&test_pairs(100)).unwrap();
        let large = BPlusTree::bulk_load(&test_pairs(10_000)).unwrap();
        assert!(large.stats().size_bytes > small.stats().size_bytes);
        assert_eq!(small.stats().model_count, 0);
    }
}
