//! Caches: LRU baseline and a learned (frequency-predicting) cache.
//!
//! §II lists "learning-based caches" among the learned components under
//! active exploration. This module provides the two SUT-pluggable policies
//! the benchmark compares:
//!
//! * [`LruCache`] — the classic recency baseline.
//! * [`LearnedCache`] — an admission/eviction policy driven by a *learned
//!   per-key access-frequency model*: exponentially decayed counts predict
//!   each key's re-access probability, evictions remove the key with the
//!   lowest prediction (sampled, as production systems do). The decay rate
//!   is its adaptability knob: slow decay specializes hard to the observed
//!   distribution (and overfits it, which the hold-out metric exposes),
//!   fast decay adapts quickly after a shift.
//!
//! Both are value-less (they cache key presence; the benchmark charges a
//! reduced probe cost on hits), deterministic, and report hit statistics.

use std::collections::HashMap;

/// Statistics a cache reports to the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Evictions performed.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A key cache the benchmark can put in front of an index.
pub trait KeyCache: Send {
    /// Short name for reports.
    fn name(&self) -> &'static str;
    /// Records an access; returns true on hit. Misses are admitted.
    fn access(&mut self, key: u64) -> bool;
    /// Removes a key (on delete), if present.
    fn invalidate(&mut self, key: u64);
    /// Current statistics.
    fn stats(&self) -> CacheStats;
    /// Number of cached keys.
    fn len(&self) -> usize;
    /// Whether the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Classic LRU cache over `u64` keys.
///
/// Intrusive doubly-linked list over an arena, `O(1)` per operation.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    /// key → slot index.
    map: HashMap<u64, usize>,
    /// Arena of (key, prev, next); `usize::MAX` = none.
    nodes: Vec<(u64, usize, usize)>,
    free: Vec<usize>,
    head: usize, // most recent
    tail: usize, // least recent
    stats: CacheStats,
}

const NONE: usize = usize::MAX;

impl LruCache {
    /// Creates an LRU cache holding up to `capacity` keys.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            stats: CacheStats::default(),
        }
    }

    fn detach(&mut self, idx: usize) {
        let (_, prev, next) = self.nodes[idx];
        if prev != NONE {
            self.nodes[prev].2 = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.nodes[next].1 = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].1 = NONE;
        self.nodes[idx].2 = self.head;
        if self.head != NONE {
            self.nodes[self.head].1 = idx;
        }
        self.head = idx;
        if self.tail == NONE {
            self.tail = idx;
        }
    }

    #[cfg(test)]
    fn keys_in_order(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = self.head;
        while cur != NONE {
            out.push(self.nodes[cur].0);
            cur = self.nodes[cur].2;
        }
        out
    }
}

impl KeyCache for LruCache {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn access(&mut self, key: u64) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.stats.hits += 1;
            self.detach(idx);
            self.push_front(idx);
            return true;
        }
        self.stats.misses += 1;
        // Admit; evict the tail if full.
        if self.map.len() >= self.capacity {
            let tail = self.tail;
            debug_assert_ne!(tail, NONE);
            let victim = self.nodes[tail].0;
            self.detach(tail);
            self.map.remove(&victim);
            self.free.push(tail);
            self.stats.evictions += 1;
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx] = (key, NONE, NONE);
            idx
        } else {
            self.nodes.push((key, NONE, NONE));
            self.nodes.len() - 1
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        false
    }

    fn invalidate(&mut self, key: u64) {
        if let Some(idx) = self.map.remove(&key) {
            self.detach(idx);
            self.free.push(idx);
        }
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Learned cache: per-key exponentially decayed frequency predictions.
///
/// Every access trains the model (`score ← score·decay^Δt + 1` in virtual
/// access-count time); eviction removes the lowest-scoring of `SAMPLE`
/// deterministically chosen candidates. Cold keys with low predicted
/// re-access probability are evicted even if recently touched — the
/// frequency signal the LRU baseline ignores.
#[derive(Debug)]
pub struct LearnedCache {
    capacity: usize,
    /// key → (decayed score, last-access tick).
    entries: HashMap<u64, (f64, u64)>,
    /// Per-access decay factor applied per elapsed tick.
    decay: f64,
    tick: u64,
    stats: CacheStats,
}

/// Eviction candidates sampled per eviction.
const SAMPLE: usize = 8;

impl LearnedCache {
    /// Creates a learned cache with the given capacity and a default decay
    /// half-life of 16× the capacity: long enough that a genuinely hot
    /// key's accumulated score dominates a one-shot scan key's score of 1,
    /// short enough to adapt to shifts within a few cache-lifetimes.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_half_life(capacity, (capacity as f64) * 16.0)
    }

    /// Creates a learned cache whose frequency scores halve every
    /// `half_life_accesses` accesses. Short half-lives adapt fast after a
    /// shift; long ones specialize harder in steady state.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or `half_life_accesses` is not positive.
    pub fn with_half_life(capacity: usize, half_life_accesses: f64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(half_life_accesses > 0.0, "half life must be positive");
        LearnedCache {
            capacity,
            entries: HashMap::with_capacity(capacity),
            decay: 0.5f64.powf(1.0 / half_life_accesses),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The decayed score of `key` as of the current tick.
    fn score_now(&self, score: f64, last: u64) -> f64 {
        score * self.decay.powf((self.tick - last) as f64)
    }

    fn evict_one(&mut self) {
        // Deterministic sampling: take the SAMPLE keys with the smallest
        // mixed hash (key, tick) to avoid scanning everything, then evict
        // the lowest score among them. The murmur3 finalizer is needed
        // here — a bare multiply leaves consecutive keys ordered, which
        // would bias the sample toward whole key clusters.
        fn mix(mut x: u64) -> u64 {
            x ^= x >> 33;
            x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            x ^= x >> 33;
            x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
            x ^= x >> 33;
            x
        }
        let mut candidates: Vec<(u64, f64)> = Vec::with_capacity(SAMPLE);
        let salt = self.tick.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut sampled: Vec<(u64, u64)> =
            self.entries.keys().map(|&k| (mix(k ^ salt), k)).collect();
        sampled.sort_unstable();
        for &(_, k) in sampled.iter().take(SAMPLE) {
            let (score, last) = self.entries[&k];
            candidates.push((k, self.score_now(score, last)));
        }
        if let Some(&(victim, _)) = candidates
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are finite"))
        {
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }
    }
}

impl KeyCache for LearnedCache {
    fn name(&self) -> &'static str {
        "learned-freq"
    }

    fn access(&mut self, key: u64) -> bool {
        self.tick += 1;
        let hit = if let Some(&(score, last)) = self.entries.get(&key) {
            let new_score = self.score_now(score, last) + 1.0;
            self.entries.insert(key, (new_score, self.tick));
            true
        } else {
            false
        };
        if hit {
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() >= self.capacity {
            self.evict_one();
        }
        self.entries.insert(key, (1.0, self.tick));
        false
    }

    fn invalidate(&mut self, key: u64) {
        self.entries.remove(&key);
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn lru_basic_semantics() {
        let mut c = LruCache::new(2);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1)); // 1 is now most recent
        assert!(!c.access(3)); // evicts 2
        assert!(!c.access(2)); // miss: was evicted
        assert!(c.access(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn lru_order_maintained() {
        let mut c = LruCache::new(3);
        for k in [1, 2, 3] {
            c.access(k);
        }
        assert_eq!(c.keys_in_order(), vec![3, 2, 1]);
        c.access(1);
        assert_eq!(c.keys_in_order(), vec![1, 3, 2]);
        c.access(4); // evicts 2
        assert_eq!(c.keys_in_order(), vec![4, 1, 3]);
    }

    #[test]
    fn lru_invalidate() {
        let mut c = LruCache::new(3);
        c.access(1);
        c.access(2);
        c.invalidate(1);
        assert_eq!(c.len(), 1);
        assert!(!c.access(1)); // readmitted as miss
        c.invalidate(99); // absent: no-op
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn learned_basic_semantics() {
        let mut c = LearnedCache::new(2);
        assert!(!c.access(1));
        assert!(c.access(1));
        assert!(!c.access(2));
        assert_eq!(c.len(), 2);
        c.invalidate(1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn learned_keeps_hot_keys_under_scan_pollution() {
        // A small hot set plus a long one-shot scan: the learned cache must
        // retain the hot keys (high predicted frequency); LRU flushes them.
        let capacity = 64;
        let mut learned = LearnedCache::new(capacity);
        let mut lru = LruCache::new(capacity);
        let mut rng = StdRng::seed_from_u64(9);
        let hot: Vec<u64> = (0..16).collect();
        // Warm up both caches on the hot set.
        for _ in 0..2000 {
            let k = hot[rng.gen_range(0..hot.len())];
            learned.access(k);
            lru.access(k);
        }
        // One-shot scan of 4000 cold keys interleaved with hot accesses;
        // count hot-access hits *during* the pollution (the moment that
        // separates frequency-aware from recency-only policies).
        let mut learned_hot_hits = 0u64;
        let mut lru_hot_hits = 0u64;
        let mut hot_accesses = 0u64;
        for i in 0..4000u64 {
            learned.access(1_000_000 + i);
            lru.access(1_000_000 + i);
            if i % 10 == 0 {
                let k = hot[rng.gen_range(0..hot.len())];
                hot_accesses += 1;
                learned_hot_hits += u64::from(learned.access(k));
                lru_hot_hits += u64::from(lru.access(k));
            }
        }
        let learned_rate = learned_hot_hits as f64 / hot_accesses as f64;
        let lru_rate = lru_hot_hits as f64 / hot_accesses as f64;
        // The learned cache retains the hot set through the scan; LRU's
        // recency policy lets the scan flush it.
        assert!(
            learned_rate > 0.9,
            "learned cache lost the hot set: {learned_rate}"
        );
        assert!(
            lru_rate < 0.5,
            "scan unexpectedly failed to pollute LRU: {lru_rate}"
        );
    }

    #[test]
    fn learned_adapts_after_distribution_shift() {
        // Hot set A, then hot set B: hit rate on B must recover.
        let mut c = LearnedCache::with_half_life(32, 64.0);
        for i in 0..2000u64 {
            c.access(i % 16);
        }
        let before = c.stats();
        for i in 0..2000u64 {
            c.access(1000 + (i % 16));
        }
        let after = c.stats();
        let b_hits = (after.hits - before.hits) as f64 / 2000.0;
        assert!(b_hits > 0.9, "failed to adapt: {b_hits}");
    }

    #[test]
    fn hit_rate_math() {
        let mut c = LruCache::new(4);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.access(1);
        c.access(1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_respected_under_churn() {
        let mut learned = LearnedCache::new(50);
        let mut lru = LruCache::new(50);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let k = rng.gen_range(0u64..500);
            learned.access(k);
            lru.access(k);
            assert!(learned.len() <= 50);
            assert!(lru.len() <= 50);
        }
        assert_eq!(lru.len(), 50);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::new(0);
    }
}
