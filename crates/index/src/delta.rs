//! Delta buffer + retrain wrapper for read-only learned indexes.
//!
//! Most learned indexes (RMI, PGM, RadixSpline) are built once over a
//! static array. Real systems make them updatable by buffering writes in a
//! small dynamic structure and periodically *retraining* — rebuilding the
//! learned structure over the merged data. That retraining step is
//! precisely the behaviour the paper's adaptability metrics measure: it
//! costs a burst of work (Fig. 1b's slow segment, Fig. 1c's SLA violations)
//! in exchange for restored lookup speed.
//!
//! [`DeltaIndex`] wraps any `Index + BulkLoad` with:
//! * a sorted delta buffer for inserts/updates,
//! * a tombstone set for deletes,
//! * an explicit [`DeltaIndex::retrain`] that merges and rebuilds,
//! * [`DeltaIndex::delta_fraction`] so a policy can decide *when* to retrain.

use crate::sorted_array::SortedArray;
use crate::{BulkLoad, Index, IndexStats, Result};
use std::collections::HashSet;

/// An updatable wrapper around a read-only (bulk-loaded) index.
#[derive(Debug)]
pub struct DeltaIndex<I> {
    base: I,
    delta: SortedArray,
    tombstones: HashSet<u64>,
    /// Work spent on retrains (cumulative build work of rebuilt bases).
    retrain_work: u64,
    retrain_count: u64,
}

impl<I: Index + BulkLoad> DeltaIndex<I> {
    /// Builds the base index from sorted pairs with an empty delta.
    pub fn build(pairs: &[(u64, u64)]) -> Result<Self> {
        Ok(DeltaIndex {
            base: I::bulk_load(pairs)?,
            delta: SortedArray::new(),
            tombstones: HashSet::new(),
            retrain_work: 0,
            retrain_count: 0,
        })
    }

    /// Wraps an already-built base index with an empty delta.
    ///
    /// Used when the base was trained with a custom configuration (e.g. a
    /// specific training budget) rather than the type's default bulk load.
    pub fn from_base(base: I) -> Self {
        DeltaIndex {
            base,
            delta: SortedArray::new(),
            tombstones: HashSet::new(),
            retrain_work: 0,
            retrain_count: 0,
        }
    }

    /// Immutable access to the wrapped base index.
    pub fn base(&self) -> &I {
        &self.base
    }

    /// Pending (unmerged) writes: delta entries plus tombstones.
    pub fn pending(&self) -> usize {
        self.delta.len() + self.tombstones.len()
    }

    /// Pending writes as a fraction of total live keys; retrain policies
    /// trigger when this crosses a threshold.
    pub fn delta_fraction(&self) -> f64 {
        let total = self.len();
        if total == 0 {
            if self.pending() > 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.pending() as f64 / total as f64
        }
    }

    /// Number of retrains performed.
    pub fn retrain_count(&self) -> u64 {
        self.retrain_count
    }

    /// Materializes base ∪ delta − tombstones as sorted pairs.
    fn merged_pairs(&self) -> Vec<(u64, u64)> {
        // The base is read-only, so a full range scan enumerates it.
        let base_pairs = self
            .base
            .range(0, usize::MAX >> 1)
            .expect("ordered base index supports range");
        let mut out = Vec::with_capacity(base_pairs.len() + self.delta.len());
        let dk = self.delta.keys();
        let dv = self.delta.values();
        let (mut i, mut j) = (0usize, 0usize);
        while i < base_pairs.len() || j < dk.len() {
            let take_base = match (base_pairs.get(i), dk.get(j)) {
                (Some(&(bk, _)), Some(&dkj)) => {
                    if bk == dkj {
                        i += 1; // delta overwrites base
                        continue;
                    }
                    bk < dkj
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (k, v) = if take_base {
                let p = base_pairs[i];
                i += 1;
                p
            } else {
                let p = (dk[j], dv[j]);
                j += 1;
                p
            };
            if !self.tombstones.contains(&k) {
                out.push((k, v));
            }
        }
        out
    }

    /// Rebuilds the base over the merged data and clears the delta.
    ///
    /// Returns the build work of the rebuilt base (the cost the benchmark's
    /// training metrics attribute to this adaptation).
    pub fn retrain(&mut self) -> Result<u64> {
        let pairs = self.merged_pairs();
        self.base = I::bulk_load(&pairs)?;
        self.delta = SortedArray::new();
        self.tombstones.clear();
        let work = self.base.stats().build_work;
        self.retrain_work += work;
        self.retrain_count += 1;
        Ok(work)
    }
}

impl<I: Index + BulkLoad> Index for DeltaIndex<I> {
    fn name(&self) -> &'static str {
        // Stable name: callers needing the base name can use `base()`.
        "delta"
    }

    fn get(&self, key: u64) -> Option<u64> {
        if self.tombstones.contains(&key) {
            return None;
        }
        self.delta.get(key).or_else(|| self.base.get(key))
    }

    fn get_many(&self, keys: &[u64], out: &mut Vec<Option<u64>>) {
        // Let the base overlap its probe misses across the batch, then
        // patch the (usually empty) delta and tombstones over the results
        // in the same precedence order as [`DeltaIndex::get`].
        let start = out.len();
        self.base.get_many(keys, out);
        if self.tombstones.is_empty() && self.delta.is_empty() {
            return;
        }
        for (slot, &key) in out[start..].iter_mut().zip(keys) {
            if self.tombstones.contains(&key) {
                *slot = None;
            } else if let Some(v) = self.delta.get(key) {
                *slot = Some(v);
            }
        }
    }

    fn range(&self, start: u64, limit: usize) -> Result<Vec<(u64, u64)>> {
        // Merge base and delta streams, honouring tombstones.
        let base = self.base.range(start, limit + self.tombstones.len())?;
        let delta = self.delta.range(start, limit)?;
        let mut out = Vec::with_capacity(limit.min(1024));
        let (mut i, mut j) = (0usize, 0usize);
        while out.len() < limit && (i < base.len() || j < delta.len()) {
            let take_base = match (base.get(i), delta.get(j)) {
                (Some(&(bk, _)), Some(&(dk, _))) => {
                    if bk == dk {
                        i += 1;
                        continue;
                    }
                    bk < dk
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (k, v) = if take_base {
                let p = base[i];
                i += 1;
                p
            } else {
                let p = delta[j];
                j += 1;
                p
            };
            if !self.tombstones.contains(&k) {
                out.push((k, v));
            }
        }
        // The base range may have been truncated by `limit +
        // tombstones.len()` while tombstones consumed entries; in the common
        // benchmark configurations limits are small, so accept the
        // approximation and top up from the base directly if short.
        if out.len() < limit {
            if let Some(&(last, _)) = out.last() {
                let more = self
                    .base
                    .range(last + 1, limit - out.len() + self.tombstones.len())?;
                for (k, v) in more {
                    if out.len() >= limit {
                        break;
                    }
                    if !self.tombstones.contains(&k) && self.delta.get(k).is_none() {
                        out.push((k, v));
                    }
                }
            }
        }
        Ok(out)
    }

    fn insert(&mut self, key: u64, value: u64) -> Result<Option<u64>> {
        // A tombstoned key is logically absent: reinserting it returns None,
        // not the stale base value.
        let was_tombstoned = self.tombstones.remove(&key);
        let prev_delta = self.delta.insert(key, value)?;
        if was_tombstoned {
            debug_assert!(prev_delta.is_none(), "tombstone and delta entry coexisted");
            return Ok(None);
        }
        Ok(prev_delta.or_else(|| self.base.get(key)))
    }

    fn delete(&mut self, key: u64) -> Result<Option<u64>> {
        let in_delta = self.delta.delete(key)?;
        if self.tombstones.contains(&key) {
            // Already logically deleted.
            debug_assert!(in_delta.is_none(), "tombstone and delta entry coexisted");
            return Ok(None);
        }
        let in_base = self.base.get(key);
        if in_base.is_some() {
            self.tombstones.insert(key);
        }
        Ok(in_delta.or(in_base))
    }

    fn len(&self) -> usize {
        // Base keys minus tombstoned base keys plus delta keys not in base.
        let mut len = self.base.len() + self.delta.len();
        for k in self.delta.keys() {
            if self.base.get(*k).is_some() {
                len -= 1; // counted twice
            }
        }
        len - self.tombstones.len()
    }

    fn stats(&self) -> IndexStats {
        let base = self.base.stats();
        IndexStats {
            size_bytes: base.size_bytes + self.delta.len() * 16 + self.tombstones.len() * 8,
            build_work: base.build_work + self.retrain_work,
            model_count: base.model_count,
        }
    }

    fn probe_cost(&self, key: u64) -> u64 {
        // Base probe plus a binary search of the pending delta: an unmerged
        // delta makes every read slower, which is why retraining pays off.
        self.base.probe_cost(key) + crate::bsearch_cost(self.pending() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmi::Rmi;
    use crate::test_support::test_pairs;

    type DeltaRmi = DeltaIndex<Rmi>;

    #[test]
    fn reads_see_base() {
        let pairs = test_pairs(1000);
        let idx = DeltaRmi::build(&pairs).unwrap();
        for &(k, v) in &pairs {
            assert_eq!(idx.get(k), Some(v));
        }
        assert_eq!(idx.len(), pairs.len());
    }

    #[test]
    fn inserts_buffer_in_delta() {
        let pairs = test_pairs(100);
        let mut idx = DeltaRmi::build(&pairs).unwrap();
        let fresh = pairs.last().unwrap().0 + 10;
        assert_eq!(idx.insert(fresh, 7).unwrap(), None);
        assert_eq!(idx.get(fresh), Some(7));
        assert_eq!(idx.pending(), 1);
        assert_eq!(idx.len(), 101);
    }

    #[test]
    fn update_overwrites_base_value() {
        let pairs = test_pairs(100);
        let (k, v) = pairs[50];
        let mut idx = DeltaRmi::build(&pairs).unwrap();
        assert_eq!(idx.insert(k, v + 1).unwrap(), Some(v));
        assert_eq!(idx.get(k), Some(v + 1));
        assert_eq!(idx.len(), 100);
    }

    #[test]
    fn delete_tombstones_base_key() {
        let pairs = test_pairs(100);
        let (k, v) = pairs[10];
        let mut idx = DeltaRmi::build(&pairs).unwrap();
        assert_eq!(idx.delete(k).unwrap(), Some(v));
        assert_eq!(idx.get(k), None);
        assert_eq!(idx.len(), 99);
        // Reinsert resurrects.
        idx.insert(k, 1).unwrap();
        assert_eq!(idx.get(k), Some(1));
        assert_eq!(idx.len(), 100);
    }

    #[test]
    fn retrain_merges_everything() {
        let pairs = test_pairs(500);
        let mut idx = DeltaRmi::build(&pairs).unwrap();
        let max = pairs.last().unwrap().0;
        // Mix of updates, fresh inserts, deletes.
        idx.insert(pairs[0].0, 999).unwrap();
        idx.insert(max + 5, 5).unwrap();
        idx.delete(pairs[1].0).unwrap();
        let len_before = idx.len();
        let work = idx.retrain().unwrap();
        assert!(work > 0);
        assert_eq!(idx.pending(), 0);
        assert_eq!(idx.retrain_count(), 1);
        assert_eq!(idx.len(), len_before);
        assert_eq!(idx.get(pairs[0].0), Some(999));
        assert_eq!(idx.get(max + 5), Some(5));
        assert_eq!(idx.get(pairs[1].0), None);
    }

    #[test]
    fn range_merges_delta() {
        let pairs: Vec<(u64, u64)> = (0..100u64).map(|i| (i * 10, i)).collect();
        let mut idx = DeltaRmi::build(&pairs).unwrap();
        idx.insert(15, 150).unwrap(); // between base keys
        idx.delete(20).unwrap(); // tombstone a base key
        let got = idx.range(10, 4).unwrap();
        assert_eq!(got, vec![(10, 1), (15, 150), (30, 3), (40, 4)]);
    }

    #[test]
    fn delta_fraction_drives_policy() {
        let pairs = test_pairs(100);
        let mut idx = DeltaRmi::build(&pairs).unwrap();
        assert_eq!(idx.delta_fraction(), 0.0);
        let max = pairs.last().unwrap().0;
        for i in 0..50u64 {
            idx.insert(max + 1 + i, i).unwrap();
        }
        assert!(idx.delta_fraction() > 0.3);
        idx.retrain().unwrap();
        assert_eq!(idx.delta_fraction(), 0.0);
    }

    #[test]
    fn empty_base_works() {
        let mut idx = DeltaRmi::build(&[]).unwrap();
        assert_eq!(idx.len(), 0);
        idx.insert(1, 10).unwrap();
        assert_eq!(idx.get(1), Some(10));
        idx.retrain().unwrap();
        assert_eq!(idx.base().len(), 1);
    }
}
