//! Chained hash index.
//!
//! The point-lookup specialist among the traditional baselines: `O(1)`
//! expected gets, but no order — range scans return
//! [`IndexError::Unsupported`], which is exactly the trade-off the
//! benchmark's specialization metric should surface when the workload mix
//! shifts from point reads to scans.

use crate::{check_sorted, BulkLoad, Index, IndexError, IndexStats, Result};

/// Multiplicative Fibonacci hashing constant.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Maximum load factor before the table doubles.
const MAX_LOAD: f64 = 0.75;

/// A chained hash table from `u64` keys to `u64` values.
#[derive(Debug, Clone)]
pub struct HashIndex {
    buckets: Vec<Vec<(u64, u64)>>,
    len: usize,
    work: u64,
}

impl HashIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    /// Creates an index pre-sized for about `n` keys.
    pub fn with_capacity(n: usize) -> Self {
        let buckets = (n.max(4) * 2).next_power_of_two();
        HashIndex {
            buckets: vec![Vec::new(); buckets],
            len: 0,
            work: buckets as u64,
        }
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        let h = key.wrapping_mul(HASH_MUL);
        (h >> (64 - self.buckets.len().trailing_zeros())) as usize
    }

    fn maybe_grow(&mut self) {
        if (self.len as f64) < self.buckets.len() as f64 * MAX_LOAD {
            return;
        }
        let new_size = self.buckets.len() * 2;
        let old = std::mem::replace(&mut self.buckets, vec![Vec::new(); new_size]);
        self.work += new_size as u64;
        for chain in old {
            for (k, v) in chain {
                let b = self.bucket_of(k);
                self.buckets[b].push((k, v));
            }
        }
    }

    /// Longest chain length (diagnostic).
    pub fn max_chain(&self) -> usize {
        self.buckets.iter().map(|c| c.len()).max().unwrap_or(0)
    }
}

impl Default for HashIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl BulkLoad for HashIndex {
    fn bulk_load(pairs: &[(u64, u64)]) -> Result<Self> {
        check_sorted(pairs)?;
        let mut idx = HashIndex::with_capacity(pairs.len());
        for &(k, v) in pairs {
            let b = idx.bucket_of(k);
            idx.buckets[b].push((k, v));
            idx.len += 1;
            idx.work += 1;
        }
        Ok(idx)
    }
}

impl Index for HashIndex {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn get(&self, key: u64) -> Option<u64> {
        let b = self.bucket_of(key);
        self.buckets[b]
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    fn range(&self, _start: u64, _limit: usize) -> Result<Vec<(u64, u64)>> {
        Err(IndexError::Unsupported("range scan on hash index"))
    }

    fn insert(&mut self, key: u64, value: u64) -> Result<Option<u64>> {
        self.maybe_grow();
        let b = self.bucket_of(key);
        for entry in &mut self.buckets[b] {
            if entry.0 == key {
                return Ok(Some(std::mem::replace(&mut entry.1, value)));
            }
        }
        self.buckets[b].push((key, value));
        self.len += 1;
        self.work += 1;
        Ok(None)
    }

    fn delete(&mut self, key: u64) -> Result<Option<u64>> {
        let b = self.bucket_of(key);
        let chain = &mut self.buckets[b];
        if let Some(pos) = chain.iter().position(|&(k, _)| k == key) {
            let (_, v) = chain.swap_remove(pos);
            self.len -= 1;
            Ok(Some(v))
        } else {
            Ok(None)
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> IndexStats {
        let entries: usize = self.buckets.iter().map(|c| c.len()).sum();
        IndexStats {
            size_bytes: self.buckets.len() * 24 + entries * 16,
            build_work: self.work,
            model_count: 0,
        }
    }

    fn probe_cost(&self, key: u64) -> u64 {
        // Hash + walk of this key's chain.
        1 + self.buckets[self.bucket_of(key)].len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{check_point_lookups, test_pairs};

    #[test]
    fn bulk_load_conformance() {
        let pairs = test_pairs(2000);
        let idx = HashIndex::bulk_load(&pairs).unwrap();
        assert_eq!(idx.len(), pairs.len());
        check_point_lookups(&idx, &pairs);
    }

    #[test]
    fn range_unsupported() {
        let idx = HashIndex::bulk_load(&[(1, 10)]).unwrap();
        assert!(matches!(idx.range(0, 10), Err(IndexError::Unsupported(_))));
    }

    #[test]
    fn insert_overwrite_delete() {
        let mut idx = HashIndex::new();
        assert_eq!(idx.insert(7, 70).unwrap(), None);
        assert_eq!(idx.insert(7, 71).unwrap(), Some(70));
        assert_eq!(idx.delete(7).unwrap(), Some(71));
        assert_eq!(idx.delete(7).unwrap(), None);
        assert!(idx.is_empty());
    }

    #[test]
    fn grows_under_load() {
        let mut idx = HashIndex::with_capacity(4);
        for k in 0..10_000u64 {
            idx.insert(k, k).unwrap();
        }
        assert_eq!(idx.len(), 10_000);
        // Expected chain length stays short after growth.
        assert!(idx.max_chain() < 16, "max_chain = {}", idx.max_chain());
        for k in 0..10_000u64 {
            assert_eq!(idx.get(k), Some(k));
        }
    }

    #[test]
    fn colliding_patterns_still_work() {
        // Keys that share low bits (power-of-two strides) stress the hash.
        let mut idx = HashIndex::new();
        for i in 0..2000u64 {
            idx.insert(i << 32, i).unwrap();
        }
        for i in 0..2000u64 {
            assert_eq!(idx.get(i << 32), Some(i));
        }
    }

    #[test]
    fn stats_reflect_entries() {
        let idx = HashIndex::bulk_load(&test_pairs(1000)).unwrap();
        assert!(idx.stats().size_bytes > 1000 * 16);
        assert_eq!(idx.stats().model_count, 0);
    }
}
