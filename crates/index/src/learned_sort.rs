//! Learned sort: CDF-model bucketing plus a touch-up pass.
//!
//! §II of the paper cites learned sorting \[31] as a query-execution use of
//! models: "a cumulative distribution function (CDF) model allows fast
//! sorting by placing the data records in roughly sorted order and then
//! running a quick touch-up pass to get the final correct order". This
//! module implements that algorithm: sample → fit an equi-depth CDF model →
//! scatter into buckets → sort buckets → concatenate (the concatenation is
//! already globally ordered because bucket boundaries partition the key
//! space).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of samples used to fit the CDF model.
const SAMPLE_SIZE: usize = 1024;

/// Target elements per bucket.
const BUCKET_TARGET: usize = 64;

/// Statistics about a learned-sort run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortStats {
    /// Number of buckets used.
    pub buckets: usize,
    /// Elements that landed outside their model-predicted bucket's ideal
    /// position and were fixed by the per-bucket sort (diagnostic; equals
    /// `n` minus already-sorted runs).
    pub sampled: usize,
}

/// Sorts `data` in place using a learned CDF model; returns run statistics.
///
/// Deterministic for a given `seed`. Falls back to `sort_unstable` for tiny
/// inputs where model fitting cannot pay off.
pub fn learned_sort(data: &mut [u64], seed: u64) -> SortStats {
    let n = data.len();
    if n <= 2 * BUCKET_TARGET {
        data.sort_unstable();
        return SortStats {
            buckets: 1,
            sampled: 0,
        };
    }
    // 1. Sample and build an equi-depth CDF over the sample.
    let mut rng = StdRng::seed_from_u64(seed);
    let sample_size = SAMPLE_SIZE.min(n);
    let mut sample: Vec<u64> = (0..sample_size)
        .map(|_| data[rng.gen_range(0..n)])
        .collect();
    sample.sort_unstable();

    let bucket_count = (n / BUCKET_TARGET).clamp(2, 64 * 1024);
    // Bucket boundaries from sample quantiles (equi-depth: each bucket gets
    // an equal share of the sampled CDF).
    let mut bounds = Vec::with_capacity(bucket_count - 1);
    for b in 1..bucket_count {
        let idx = b * sample.len() / bucket_count;
        bounds.push(sample[idx.min(sample.len() - 1)]);
    }

    // 2. Scatter into buckets via binary search on the boundaries (this is
    // the CDF model application).
    let mut buckets: Vec<Vec<u64>> = vec![Vec::with_capacity(BUCKET_TARGET * 2); bucket_count];
    for &v in data.iter() {
        let b = bounds.partition_point(|&bound| bound <= v);
        buckets[b].push(v);
    }

    // 3. Touch-up: sort each bucket and write back.
    let mut out = 0usize;
    for bucket in &mut buckets {
        bucket.sort_unstable();
        data[out..out + bucket.len()].copy_from_slice(bucket);
        out += bucket.len();
    }
    debug_assert_eq!(out, n);
    SortStats {
        buckets: bucket_count,
        sampled: sample_size,
    }
}

/// Checks whether a slice is sorted ascending (test/bench helper).
pub fn is_sorted(data: &[u64]) -> bool {
    data.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_random_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut data: Vec<u64> = (0..50_000).map(|_| rng.gen()).collect();
        let mut expected = data.clone();
        expected.sort_unstable();
        let stats = learned_sort(&mut data, 2);
        assert_eq!(data, expected);
        assert!(stats.buckets > 1);
    }

    #[test]
    fn sorts_skewed_data() {
        // Heavy duplication + skew: many equal keys in few buckets.
        let mut rng = StdRng::seed_from_u64(3);
        let mut data: Vec<u64> = (0..20_000)
            .map(|_| {
                if rng.gen::<f64>() < 0.8 {
                    rng.gen_range(0..100)
                } else {
                    rng.gen()
                }
            })
            .collect();
        let mut expected = data.clone();
        expected.sort_unstable();
        learned_sort(&mut data, 4);
        assert_eq!(data, expected);
    }

    #[test]
    fn sorts_already_sorted() {
        let mut data: Vec<u64> = (0..10_000).collect();
        let expected = data.clone();
        learned_sort(&mut data, 5);
        assert_eq!(data, expected);
    }

    #[test]
    fn sorts_reverse_sorted() {
        let mut data: Vec<u64> = (0..10_000).rev().collect();
        learned_sort(&mut data, 6);
        assert!(is_sorted(&data));
        assert_eq!(data[0], 0);
        assert_eq!(data[9999], 9999);
    }

    #[test]
    fn small_input_falls_back() {
        let mut data = vec![3, 1, 2];
        let stats = learned_sort(&mut data, 7);
        assert_eq!(data, vec![1, 2, 3]);
        assert_eq!(stats.buckets, 1);
    }

    #[test]
    fn empty_and_single() {
        let mut empty: Vec<u64> = vec![];
        learned_sort(&mut empty, 8);
        assert!(empty.is_empty());
        let mut one = vec![42];
        learned_sort(&mut one, 9);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn all_equal() {
        let mut data = vec![7u64; 10_000];
        learned_sort(&mut data, 10);
        assert!(data.iter().all(|&v| v == 7));
        assert_eq!(data.len(), 10_000);
    }

    #[test]
    fn deterministic() {
        let mut rng = StdRng::seed_from_u64(11);
        let original: Vec<u64> = (0..5000).map(|_| rng.gen()).collect();
        let mut a = original.clone();
        let mut b = original;
        let sa = learned_sort(&mut a, 12);
        let sb = learned_sort(&mut b, 12);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }
}
